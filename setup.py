"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that fully offline environments without the ``wheel`` package can still do
an editable install via ``python setup.py develop`` (PEP 660 editable
installs need ``wheel``, which may be absent on air-gapped machines).
"""

from setuptools import setup

setup()
