"""Tests for the trace replayer."""

import pytest

from repro.metadata.file_metadata import FileMetadata
from repro.traces.base import Trace, TraceRecord
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace
from repro.workloads.replay import ACCESS_OPS, TraceReplayer


def _file(path, project=None, **attrs):
    defaults = {
        "size": 100.0, "ctime": 1.0, "mtime": 2.0, "atime": 3.0,
        "read_bytes": 10.0, "write_bytes": 5.0, "access_count": 1.0, "owner": 0.0,
    }
    defaults.update(attrs)
    extra = {"project": project} if project is not None else {}
    return FileMetadata(path=path, attributes=defaults, extra=extra)


@pytest.fixture()
def tiny_trace():
    files = [
        _file("/p0/a.dat", project=0),
        _file("/p0/b.dat", project=0),
        _file("/p1/c.dat", project=1),
    ]
    records = [
        TraceRecord(0.0, "read", "/p0/a.dat", 10.0, user_id=1, process_id=100),
        TraceRecord(1.0, "write", "/p0/b.dat", 20.0, user_id=1, process_id=100),
        TraceRecord(2.0, "read", "/p1/c.dat", 5.0, user_id=2, process_id=200),
        TraceRecord(3.0, "stat", "/p0/a.dat", 0.0, user_id=2, process_id=200),
        TraceRecord(4.0, "create", "/p9/new.dat", 0.0, user_id=1, process_id=100),
        TraceRecord(5.0, "read", "/does/not/exist.dat", 1.0, user_id=1, process_id=100),
    ]
    return Trace(name="tiny", records=records, files=files)


class TestResolution:
    def test_access_stream_order_and_filtering(self, tiny_trace):
        replayer = TraceReplayer(tiny_trace)
        stream = replayer.access_stream()
        # create and unknown-path records are dropped; order follows timestamps.
        assert [f.path for f in stream] == [
            "/p0/a.dat", "/p0/b.dat", "/p1/c.dat", "/p0/a.dat",
        ]

    def test_resolve_respects_include_ops(self, tiny_trace):
        replayer = TraceReplayer(tiny_trace, include_ops=("read",))
        stream = replayer.access_stream()
        assert [f.path for f in stream] == ["/p0/a.dat", "/p1/c.dat"]
        assert replayer.resolve(tiny_trace.records[1]) is None  # a write

    def test_per_user_and_per_process_streams(self, tiny_trace):
        replayer = TraceReplayer(tiny_trace)
        by_user = replayer.per_user_streams()
        assert {u: [f.path for f in s] for u, s in by_user.items()} == {
            1: ["/p0/a.dat", "/p0/b.dat"],
            2: ["/p1/c.dat", "/p0/a.dat"],
        }
        by_process = replayer.per_process_streams()
        assert set(by_process) == {100, 200}

    def test_repr(self, tiny_trace):
        assert "tiny" in repr(TraceReplayer(tiny_trace))


class TestStatistics:
    def test_popular_files(self, tiny_trace):
        replayer = TraceReplayer(tiny_trace)
        popular = replayer.popular_files(2)
        assert popular[0][0].path == "/p0/a.dat"
        assert popular[0][1] == 2

    def test_statistics_contents(self, tiny_trace):
        stats = TraceReplayer(tiny_trace).statistics(top_fraction=0.5)
        assert stats.total_accesses == 4
        assert stats.unique_files == 3
        # consecutive pairs: (a,b) same project, (b,c) different, (c,a) different.
        assert stats.consecutive_correlation == pytest.approx(1 / 3)
        assert abs(sum(stats.operation_mix.values()) - 1.0) < 1e-9
        assert 0.0 < stats.top_file_share <= 1.0
        assert stats.as_dict()["unique_files"] == 3

    def test_statistics_empty_stream(self):
        trace = Trace(name="empty", records=[], files=[_file("/a.dat")])
        stats = TraceReplayer(trace).statistics()
        assert stats.total_accesses == 0
        assert stats.top_file_share == 0.0

    def test_top_fraction_validation(self, tiny_trace):
        with pytest.raises(ValueError):
            TraceReplayer(tiny_trace).statistics(top_fraction=0.0)

    def test_directory_fallback_for_correlation(self):
        files = [_file("/d/x.dat"), _file("/d/y.dat"), _file("/e/z.dat")]
        records = [
            TraceRecord(0.0, "read", "/d/x.dat"),
            TraceRecord(1.0, "read", "/d/y.dat"),
            TraceRecord(2.0, "read", "/e/z.dat"),
        ]
        stats = TraceReplayer(Trace(name="dirs", records=records, files=files)).statistics()
        assert stats.consecutive_correlation == pytest.approx(0.5)


class TestOnSyntheticTraces:
    def test_synthetic_trace_shows_skew_and_correlation(self):
        trace = generate_trace(
            SyntheticTraceConfig(n_files=300, n_requests=3000, n_projects=10, seed=11)
        )
        replayer = TraceReplayer(trace)
        stats = replayer.statistics()
        assert stats.total_accesses > 2000
        # Zipf popularity: the hottest 10% of touched files absorb well over
        # their proportional share of requests (Filecules-style skew).
        assert stats.top_file_share > 0.2
        # Requests are Zipf over files, so consecutive accesses frequently hit
        # popular (and hence often same-project) files.
        assert 0.0 <= stats.consecutive_correlation <= 1.0
        assert set(stats.operation_mix) <= set(ACCESS_OPS)

    def test_access_stream_feeds_caches(self):
        from repro.apps.caching import LRUCache

        trace = generate_trace(
            SyntheticTraceConfig(n_files=100, n_requests=800, n_projects=5, seed=13)
        )
        stream = TraceReplayer(trace).access_stream()
        cache = LRUCache(32)
        for f in stream:
            cache.access(f.file_id)
        assert len(cache) <= 32
