"""Tests for branch-and-bound k-NN search over the R-tree."""

import numpy as np
import pytest

from repro.rtree.knn import knn_search
from repro.rtree.rtree import RTree


def build(points, max_entries=4):
    tree = RTree(dimension=points.shape[1], max_entries=max_entries)
    for i, p in enumerate(points):
        tree.insert(p, i)
    return tree


def brute_force_knn(points, q, k):
    d = np.linalg.norm(points - np.asarray(q)[None, :], axis=1)
    order = np.argsort(d, kind="stable")
    return [int(i) for i in order[:k]], d


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(13).random((150, 2)) * 50


class TestKNN:
    def test_matches_brute_force_distances(self, points):
        tree = build(points)
        rng = np.random.default_rng(5)
        for _ in range(15):
            q = rng.random(2) * 50
            k = int(rng.integers(1, 10))
            result = knn_search(tree, q, k)
            ideal_idx, dists = brute_force_knn(points, q, k)
            got_d = [d for d, _ in result]
            ideal_d = sorted(dists[ideal_idx])
            assert np.allclose(got_d, ideal_d, atol=1e-9)

    def test_results_sorted_ascending(self, points):
        tree = build(points)
        result = knn_search(tree, [25, 25], 10)
        d = [x for x, _ in result]
        assert d == sorted(d)

    def test_k_larger_than_population(self):
        pts = np.random.default_rng(1).random((5, 2))
        tree = build(pts)
        result = knn_search(tree, [0.5, 0.5], 20)
        assert len(result) == 5

    def test_k_one_returns_nearest(self, points):
        tree = build(points)
        q = points[42] + 1e-6
        result = knn_search(tree, q, 1)
        assert result[0][1].payload == 42

    def test_empty_tree(self):
        tree = RTree(dimension=2)
        assert knn_search(tree, [0, 0], 3) == []

    def test_invalid_k(self, points):
        tree = build(points)
        with pytest.raises(ValueError):
            knn_search(tree, [0, 0], 0)

    def test_wrong_dimension_query(self, points):
        tree = build(points)
        with pytest.raises(ValueError):
            knn_search(tree, [0, 0, 0], 2)

    def test_exact_point_distance_zero(self, points):
        tree = build(points)
        result = knn_search(tree, points[7], 1)
        assert result[0][0] == pytest.approx(0.0, abs=1e-12)
