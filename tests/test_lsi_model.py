"""Tests for the LSI model."""

import numpy as np
import pytest

from repro.lsi.model import LSIModel


def clustered_items(n_per=10, seed=0):
    """Two well-separated clusters of items in a 4-attribute space."""
    rng = np.random.default_rng(seed)
    a = rng.normal([1, 1, 0, 0], 0.05, size=(n_per, 4))
    b = rng.normal([0, 0, 1, 1], 0.05, size=(n_per, 4))
    return np.vstack([a, b])


class TestFitting:
    def test_fit_items_shapes(self):
        items = clustered_items()
        model = LSIModel.fit_items(items, rank=2)
        assert model.rank == 2
        assert model.n_items == items.shape[0]
        assert model.n_attributes == items.shape[1]
        assert model.item_vectors().shape == (items.shape[0], 2)

    def test_fit_matches_paper_convention(self):
        # fit() takes attributes-as-rows; fit_items() the transpose.
        items = clustered_items()
        m1 = LSIModel.fit(items.T, rank=2)
        m2 = LSIModel.fit_items(items, rank=2)
        assert np.allclose(np.abs(m1.singular_values), np.abs(m2.singular_values))

    def test_rank_clamped(self):
        items = clustered_items(n_per=3)
        model = LSIModel.fit_items(items, rank=100)
        assert model.rank <= min(items.shape)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            LSIModel.fit_items(clustered_items(), rank=0)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            LSIModel.fit_items(np.ones(5), rank=1)


class TestProjection:
    def test_fold_in_single_vector(self):
        items = clustered_items()
        model = LSIModel.fit_items(items, rank=2)
        q = model.fold_in(items[0])
        assert q.shape == (2,)

    def test_fold_in_batch(self):
        items = clustered_items()
        model = LSIModel.fit_items(items, rank=2)
        q = model.fold_in(items[:5])
        assert q.shape == (5, 2)

    def test_fold_in_dimension_mismatch(self):
        model = LSIModel.fit_items(clustered_items(), rank=2)
        with pytest.raises(ValueError):
            model.fold_in(np.ones(7))

    def test_fold_in_unscaled(self):
        items = clustered_items()
        model = LSIModel.fit_items(items, rank=2)
        scaled = model.fold_in(items[0], scale=True)
        unscaled = model.fold_in(items[0], scale=False)
        assert not np.allclose(scaled, unscaled)


class TestSimilarity:
    def test_similarity_bounds(self):
        model = LSIModel.fit_items(clustered_items(), rank=2)
        vecs = model.item_vectors()
        sim = model.similarity(vecs[0], vecs[1])
        assert -1.0 - 1e-9 <= sim <= 1.0 + 1e-9

    def test_zero_vector_similarity_is_zero(self):
        model = LSIModel.fit_items(clustered_items(), rank=2)
        assert model.similarity(np.zeros(2), np.ones(2)) == 0.0

    def test_within_cluster_more_similar_than_across(self):
        items = clustered_items()
        # Centre the data so cosine similarity reflects cluster structure.
        centred = items - items.mean(axis=0)
        model = LSIModel.fit_items(centred, rank=2)
        vecs = model.item_vectors()
        within = model.similarity(vecs[0], vecs[1])      # both in cluster A
        across = model.similarity(vecs[0], vecs[-1])     # A vs B
        assert within > across

    def test_correlation_matrix_properties(self):
        model = LSIModel.fit_items(clustered_items(), rank=2)
        corr = model.correlation_matrix()
        n = model.n_items
        assert corr.shape == (n, n)
        assert np.allclose(corr, corr.T, atol=1e-10)
        assert np.allclose(np.diag(corr), 1.0, atol=1e-9)
        assert corr.min() >= -1.0 and corr.max() <= 1.0

    def test_correlation_matrix_of_custom_vectors(self):
        model = LSIModel.fit_items(clustered_items(), rank=2)
        custom = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        corr = model.correlation_matrix(custom)
        assert corr.shape == (3, 3)
        assert corr[0, 2] == pytest.approx(1.0)
        assert corr[0, 1] == pytest.approx(0.0, abs=1e-9)

    def test_similarities_to_items(self):
        items = clustered_items()
        model = LSIModel.fit_items(items, rank=2)
        sims = model.similarities_to_items(items[0])
        assert sims.shape == (items.shape[0],)
        # The item itself should be among the most similar items.
        assert sims[0] >= np.percentile(sims, 75)


class TestQuality:
    def test_explained_variance_sums_to_one_at_full_rank(self):
        items = clustered_items(n_per=4)
        model = LSIModel.fit_items(items, rank=4)
        assert np.isclose(model.explained_variance_ratio().sum(), 1.0)

    def test_reconstruction_error_decreases_with_rank(self):
        items = clustered_items()
        errors = []
        for rank in (1, 2, 4):
            model = LSIModel.fit_items(items, rank=rank)
            errors.append(np.linalg.norm(model.reconstruct() - items.T))
        assert errors[0] >= errors[1] >= errors[2]
