"""Tests for the DBMS (per-attribute B+-tree) baseline."""

import pytest

from repro.baselines.dbms import DBMSBaseline
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

from helpers import make_files


@pytest.fixture(scope="module")
def files():
    return make_files(150, clusters=5)


@pytest.fixture(scope="module")
def dbms(files):
    return DBMSBaseline(files, DEFAULT_SCHEMA)


class TestConstruction:
    def test_one_tree_per_attribute(self, dbms):
        assert set(dbms.attribute_trees.keys()) == set(DEFAULT_SCHEMA.names)
        for tree in dbms.attribute_trees.values():
            assert len(tree) == 150

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            DBMSBaseline([], DEFAULT_SCHEMA)


class TestPointQuery:
    def test_existing_file_found(self, dbms, files):
        result = dbms.point_query(PointQuery(files[0].filename))
        assert result.found
        assert files[0] in result.files

    def test_missing_file(self, dbms):
        assert not dbms.point_query(PointQuery("missing.bin")).found

    def test_charged_to_disk(self, dbms, files):
        result = dbms.point_query(PointQuery(files[0].filename))
        assert result.metrics.disk_index_accesses > 0
        assert result.metrics.messages == 2


class TestRangeQuery:
    def test_exact_results(self, dbms, files):
        q = RangeQuery(("mtime", "owner"), (2000.0, 1.0), (2300.0, 1.0))
        result = dbms.range_query(q)
        expected = {f.file_id for f in files if f.matches_ranges(q.attributes, q.lower, q.upper)}
        assert {f.file_id for f in result.files} == expected

    def test_full_range_returns_everything(self, dbms, files):
        q = RangeQuery(("size",), (0.0,), (1e15,))
        assert len(dbms.range_query(q).files) == len(files)

    def test_scans_charged_per_attribute(self, dbms):
        one = dbms.range_query(RangeQuery(("size",), (0.0,), (1e15,)))
        three = dbms.range_query(
            RangeQuery(("size", "mtime", "owner"), (0.0, 0.0, 0.0), (1e15, 1e9, 1e9))
        )
        assert three.metrics.disk_records_scanned > one.metrics.disk_records_scanned

    def test_latency_dominated_by_disk(self, dbms):
        result = dbms.range_query(RangeQuery(("size",), (0.0,), (1e15,)))
        assert result.latency > 0.01  # hundreds of disk accesses at 5 ms each


class TestTopKQuery:
    def test_results_sorted_and_k_bounded(self, dbms):
        q = TopKQuery(("size", "mtime"), (4096.0, 2100.0), k=7)
        result = dbms.topk_query(q)
        assert len(result.files) == 7
        assert result.distances == sorted(result.distances)

    def test_brute_force_scan_charged(self, dbms, files):
        result = dbms.topk_query(TopKQuery(("size",), (1000.0,), k=3))
        assert result.metrics.disk_records_scanned >= len(files)

    def test_k_larger_than_population(self, dbms, files):
        result = dbms.topk_query(TopKQuery(("size",), (1000.0,), k=10_000))
        assert len(result.files) == len(files)


class TestDispatchAndSpace:
    def test_execute_dispatch(self, dbms, files):
        assert dbms.execute(PointQuery(files[1].filename)).found
        assert dbms.execute(RangeQuery(("size",), (0.0,), (1e15,))).found
        assert dbms.execute(TopKQuery(("size",), (1.0,), k=1)).found
        with pytest.raises(TypeError):
            dbms.execute(42)

    def test_index_space_larger_than_single_tree(self, dbms):
        assert dbms.index_space_bytes() == dbms.index_space_bytes_per_node()
        assert dbms.index_space_bytes() > 0

    def test_lifetime_metrics_accumulate(self, files):
        db = DBMSBaseline(files, DEFAULT_SCHEMA)
        db.point_query(PointQuery(files[0].filename))
        db.range_query(RangeQuery(("size",), (0.0,), (1e15,)))
        assert db.metrics.messages >= 4
