"""Concurrency stress: no stale cached read may cross an epoch bump.

The service's correctness story under mixed read/write load is built on
cache epochs: a mutation bumps the versioning change clock, which flushes
the result cache, and any in-flight batch that snapshotted an older epoch
has its ``store()`` dropped as stale.  These tests hammer that contract
from many threads: once a mutation's future resolves, *every* subsequent
read — cached or not — must observe at least that mutation's state.

The victim record's ``size`` attribute increases monotonically across the
mutation stream, so staleness is detectable from any thread without
coordination: a reader samples the acked-mutation level *before* issuing
its read and asserts the size it got back is at least the level's size.
"""

import threading

import pytest

from repro.analysis.lockorder import witness_locks
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.service import QueryService, ServiceConfig
from repro.workloads.types import PointQuery, RangeQuery

from helpers import make_files


@pytest.fixture(autouse=True)
def _lock_order_witness():
    """Every stress run doubles as a deadlock/blocking hunt: all locks the
    service stack creates during the test are witnessed, and any
    acquisition-order cycle or blocking-I/O-under-a-fine-grained-lock
    fails the test."""
    with witness_locks() as witness:
        yield witness
    witness.assert_clean()

CONFIG = SmartStoreConfig(num_units=6, seed=3, search_breadth=64)

N_MUTATIONS = 30
N_READERS = 4


@pytest.fixture()
def files():
    return make_files(60, clusters=3)


def _run_stress(service, victim, base_size, step):
    """Writer bumps the victim's size; readers assert monotonic visibility."""
    sizes = [base_size]  # sizes[level] = size acked by mutation `level`
    acked_level = [0]
    stop = threading.Event()
    errors = []

    def reader():
        while not stop.is_set():
            level = acked_level[0]  # sampled BEFORE the read is issued
            try:
                result = service.execute(PointQuery(victim.filename))
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(("raised", repr(exc)))
                return
            if not result.files:
                errors.append(("missing", level))
                continue
            got = result.files[0].attributes["size"]
            expected = sizes[level]
            if got + 1e-9 < expected:
                errors.append(("stale", level, expected, got))

    threads = [threading.Thread(target=reader) for _ in range(N_READERS)]
    for t in threads:
        t.start()
    try:
        for i in range(1, N_MUTATIONS + 1):
            new_size = base_size + i * step
            updated = victim.with_updates(size=new_size)
            service.submit_modify(updated).result()
            # Only after the ack: later reads must see >= new_size.  The
            # size is recorded before the level advances so no reader can
            # index past the list.
            sizes.append(new_size)
            acked_level[0] = i
    finally:
        stop.set()
        for t in threads:
            t.join()
    return errors


class TestCacheEpochConcurrency:
    def test_no_stale_read_crosses_epoch_bump(self, files):
        store = SmartStore.build(files, CONFIG)
        victim = files[7]
        config = ServiceConfig(
            max_workers=4, batching_enabled=False, cache_capacity=256, seed=11
        )
        with QueryService(store, config) as service:
            errors = _run_stress(
                service, victim, victim.attributes["size"], step=16.0
            )
            assert not errors, errors[:5]
            # The contract was exercised, not vacuous: reads were served
            # from cache between mutations, and mutations both cleared
            # populated cache entries and dropped stale store-backs
            # (invalidations only count flushes that found entries).
            assert service.cache.stats.hits > 0
            assert service.cache.stats.invalidations > 0

    def test_no_stale_read_with_batching_enabled(self, files):
        # submit() path: the partial window is flushed before a mutation
        # executes, so batched reads admitted after the ack see the new
        # state too.
        store = SmartStore.build(files, CONFIG)
        victim = files[11]
        config = ServiceConfig(
            max_workers=4, batch_window=4, cache_capacity=256, seed=13
        )
        with QueryService(store, config) as service:
            base = victim.attributes["size"]
            for i in range(1, 9):
                updated = victim.with_updates(size=base + i * 8.0)
                futures = [
                    service.submit(PointQuery(victim.filename)) for _ in range(3)
                ]
                service.submit_modify(updated).result()
                after = service.submit(PointQuery(victim.filename))
                service.drain()
                # Pre-mutation submissions may see either side of the
                # mutation is NOT allowed here: the flush-before-mutation
                # ordering pins them to the pre-mutation state...
                for f in futures:
                    assert f.result().files[0].attributes["size"] <= base + i * 8.0
                # ...while anything submitted after the ack must see it.
                assert after.result().files[0].attributes["size"] == base + i * 8.0

    def test_concurrent_mixed_queries_stay_internally_consistent(self, files):
        # Readers running range scans while the victim mutates must never
        # observe a half-applied record (a size that was never acked).
        store = SmartStore.build(files, CONFIG)
        victim = files[3]
        base = victim.attributes["size"]
        valid_sizes = {base} | {base + i * 4.0 for i in range(1, 13)}
        errors = []
        stop = threading.Event()
        window = RangeQuery(("size",), (base - 1.0,), (base + 100.0,))

        config = ServiceConfig(max_workers=4, batching_enabled=False, seed=17)
        with QueryService(store, config) as service:

            def reader():
                while not stop.is_set():
                    result = service.execute(window)
                    for f in result.files:
                        if f.file_id == victim.file_id:
                            if f.attributes["size"] not in valid_sizes:
                                errors.append(f.attributes["size"])

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for t in threads:
                t.start()
            try:
                for i in range(1, 13):
                    service.submit_modify(
                        victim.with_updates(size=base + i * 4.0)
                    ).result()
            finally:
                stop.set()
                for t in threads:
                    t.join()
            assert not errors, errors[:5]
