"""Tests for the K-means baseline and its balanced variant."""

import numpy as np
import pytest

from repro.lsi.kmeans import balanced_kmeans, kmeans


def blobs(k=3, per=20, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10, 10, size=(k, 2))
    points = np.vstack([rng.normal(c, 0.2, size=(per, 2)) for c in centers])
    return points


class TestKMeans:
    def test_labels_and_centroids_shape(self):
        pts = blobs()
        result = kmeans(pts, 3, seed=0)
        assert result.labels.shape == (pts.shape[0],)
        assert result.centroids.shape == (3, 2)
        assert result.n_clusters == 3

    def test_labels_in_range(self):
        result = kmeans(blobs(), 3, seed=0)
        assert result.labels.min() >= 0
        assert result.labels.max() < 3

    def test_recovers_well_separated_blobs(self):
        pts = blobs(k=3, per=30, seed=1)
        result = kmeans(pts, 3, seed=1)
        # Each true blob should map to a single cluster label.
        for b in range(3):
            labels = result.labels[b * 30:(b + 1) * 30]
            assert len(set(labels.tolist())) == 1

    def test_inertia_nonnegative_and_decreases_with_k(self):
        pts = blobs()
        inertias = [kmeans(pts, k, seed=0).inertia for k in (1, 3, 6)]
        assert all(i >= 0 for i in inertias)
        assert inertias[0] >= inertias[1] >= inertias[2]

    def test_k_equals_n(self):
        pts = blobs(k=2, per=3)
        result = kmeans(pts, len(pts), seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_k_one(self):
        pts = blobs()
        result = kmeans(pts, 1, seed=0)
        assert np.allclose(result.centroids[0], pts.mean(axis=0))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmeans(blobs(), 0)
        with pytest.raises(ValueError):
            kmeans(np.ones((3, 2)), 5)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.ones(10), 2)

    def test_deterministic_with_seed(self):
        pts = blobs()
        a = kmeans(pts, 3, seed=42)
        b = kmeans(pts, 3, seed=42)
        assert np.array_equal(a.labels, b.labels)

    def test_duplicate_points(self):
        pts = np.ones((10, 3))
        result = kmeans(pts, 2, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)


class TestBalancedKMeans:
    def test_sizes_within_capacity(self):
        pts = blobs(k=3, per=20, seed=2)
        result = balanced_kmeans(pts, 4, slack=1.2, seed=2)
        counts = np.bincount(result.labels, minlength=4)
        capacity = int(np.ceil(1.2 * len(pts) / 4))
        assert counts.max() <= capacity

    def test_all_points_assigned(self):
        pts = blobs()
        result = balanced_kmeans(pts, 5, seed=0)
        assert result.labels.shape == (len(pts),)
        assert set(result.labels.tolist()) <= set(range(5))

    def test_balanced_no_worse_than_double_inertia_on_balanced_data(self):
        pts = blobs(k=4, per=25, seed=3)
        plain = kmeans(pts, 4, seed=3)
        balanced = balanced_kmeans(pts, 4, seed=3)
        assert balanced.inertia <= 2.0 * plain.inertia + 1e-9

    def test_invalid_slack(self):
        with pytest.raises(ValueError):
            balanced_kmeans(blobs(), 3, slack=0.5)

    def test_exact_balance_with_slack_one(self):
        pts = blobs(k=2, per=10, seed=4)
        result = balanced_kmeans(pts, 4, slack=1.0, seed=4)
        counts = np.bincount(result.labels, minlength=4)
        assert counts.max() <= int(np.ceil(len(pts) / 4))
