"""Tests for the hierarchical Bloom-filter index."""

import pytest

from repro.bloom.hierarchy import HierarchicalBloomIndex


def build_two_level():
    """Four leaves under two internal nodes under a root."""
    index = HierarchicalBloomIndex()
    leaves = {
        "u0": index.add_leaf("u0", ["a.txt", "b.txt"]),
        "u1": index.add_leaf("u1", ["c.txt"]),
        "u2": index.add_leaf("u2", ["d.txt", "e.txt"]),
        "u3": index.add_leaf("u3", ["f.txt"]),
    }
    g0 = index.add_internal([leaves["u0"], leaves["u1"]])
    g1 = index.add_internal([leaves["u2"], leaves["u3"]])
    index.add_internal([g0, g1])
    return index, leaves


class TestConstruction:
    def test_single_leaf_is_root(self):
        index = HierarchicalBloomIndex()
        index.add_leaf("only", ["x"])
        hits, probed = index.lookup("x")
        assert hits == ["only"]
        assert probed == 1

    def test_internal_without_children_rejected(self):
        index = HierarchicalBloomIndex()
        with pytest.raises(ValueError):
            index.add_internal([])

    def test_node_count(self):
        index, _ = build_two_level()
        assert index.node_count() == 7
        assert len(index.leaf_ids()) == 4

    def test_size_bytes_positive(self):
        index, _ = build_two_level()
        assert index.size_bytes() == 7 * 128


class TestLookup:
    def test_existing_filenames_found_in_right_leaf(self):
        index, _ = build_two_level()
        for name, leaf in [("a.txt", "u0"), ("c.txt", "u1"), ("e.txt", "u2"), ("f.txt", "u3")]:
            hits, _ = index.lookup(name)
            assert leaf in hits

    def test_missing_filename_usually_rejected_at_root(self):
        index, _ = build_two_level()
        misses = 0
        for i in range(100):
            hits, _ = index.lookup(f"missing-{i}.bin")
            if not hits:
                misses += 1
        assert misses > 90  # a few false positives are allowed

    def test_lookup_prunes_subtrees(self):
        index, _ = build_two_level()
        _, probed = index.lookup("a.txt")
        # Root + both level-1 nodes is 3; pruning keeps us well below the
        # exhaustive 7 probes in the common case.
        assert probed <= 7

    def test_empty_index(self):
        index = HierarchicalBloomIndex()
        assert index.lookup("x") == ([], 0)


class TestUpdates:
    def test_add_filename_propagates_to_ancestors(self):
        index, leaves = build_two_level()
        index.add_filename(leaves["u3"], "new.txt")
        hits, _ = index.lookup("new.txt")
        assert "u3" in hits

    def test_add_filename_to_internal_rejected(self):
        index, _ = build_two_level()
        with pytest.raises(ValueError):
            index.add_filename(index.root_id, "x")
