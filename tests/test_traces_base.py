"""Tests for the trace data model."""

import pytest

from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.traces.base import Trace, TraceRecord, build_file_metadata


def rec(t, op, path, nbytes=0.0, user=0):
    return TraceRecord(timestamp=t, op=op, path=path, bytes=nbytes, user_id=user)


class TestTraceRecord:
    def test_valid_record(self):
        r = rec(1.0, "read", "/a", 100.0)
        assert r.op == "read"

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            rec(0.0, "chmod", "/a")

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            rec(-1.0, "read", "/a")

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            rec(0.0, "read", "/a", -5.0)


class TestTrace:
    def test_records_sorted_by_time(self):
        t = Trace("t", [rec(5, "read", "/b"), rec(1, "read", "/a")])
        assert [r.timestamp for r in t.records] == [1, 5]

    def test_paths_first_appearance_order(self):
        t = Trace("t", [rec(1, "read", "/a"), rec(2, "read", "/b"), rec(3, "read", "/a")])
        assert t.paths() == ["/a", "/b"]

    def test_duration(self):
        t = Trace("t", [rec(10, "read", "/a"), rec(70, "read", "/a")])
        assert t.duration_seconds() == 60.0
        assert Trace("empty", []).duration_seconds() == 0.0

    def test_summary_counts(self):
        t = Trace(
            "t",
            [
                rec(0, "read", "/a", 100, user=1),
                rec(1, "write", "/b", 200, user=2),
                rec(2, "stat", "/a", 0, user=1),
            ],
            user_accounts=10,
        )
        s = t.summary()
        assert s.total_requests == 3
        assert s.total_reads == 1
        assert s.total_writes == 1
        assert s.read_bytes == 100
        assert s.write_bytes == 200
        assert s.active_files == 2
        assert s.active_users == 2
        assert s.user_accounts == 10
        assert s.total_io == 2

    def test_summary_as_dict(self):
        t = Trace("t", [rec(0, "read", "/a", 1)])
        d = t.summary().as_dict()
        assert d["name"] == "t"
        assert d["total_requests"] == 1


class TestBuildFileMetadata:
    def test_replay_derives_attributes(self):
        records = [
            rec(0, "create", "/f", 1000, user=3),
            rec(10, "read", "/f", 500, user=3),
            rec(20, "write", "/f", 2000, user=4),
            rec(30, "stat", "/f"),
        ]
        files = build_file_metadata(records, DEFAULT_SCHEMA)
        assert len(files) == 1
        f = files[0]
        assert f.attributes["ctime"] == 0
        assert f.attributes["mtime"] == 20
        assert f.attributes["atime"] == 30
        assert f.attributes["read_bytes"] == 500
        assert f.attributes["write_bytes"] == 2000
        assert f.attributes["access_count"] == 4
        assert f.attributes["size"] == 2000
        assert f.attributes["owner"] == 0.0 or f.attributes["owner"] == 4.0

    def test_read_only_file_gets_nominal_size(self):
        files = build_file_metadata([rec(0, "read", "/r", 10)], DEFAULT_SCHEMA)
        assert files[0].attributes["size"] == 4096.0

    def test_one_record_per_distinct_path(self):
        records = [rec(i, "read", f"/f{i % 5}", 1) for i in range(20)]
        files = build_file_metadata(records, DEFAULT_SCHEMA)
        assert len(files) == 5

    def test_trace_file_metadata_caches(self):
        t = Trace("t", [rec(0, "read", "/a", 1)])
        first = t.file_metadata()
        assert t.file_metadata() is first
