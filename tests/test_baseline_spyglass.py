"""Tests for the Spyglass-style namespace-partitioned K-D tree baseline."""

import pytest

from repro.baselines.spyglass import SpyglassBaseline
from repro.eval.recall import ground_truth_range, ground_truth_topk, recall
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

from helpers import make_files


@pytest.fixture(scope="module")
def files():
    return make_files(300, clusters=6)


@pytest.fixture(scope="module")
def spyglass(files):
    return SpyglassBaseline(files, DEFAULT_SCHEMA, partition_size=60)


class TestConstruction:
    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            SpyglassBaseline([], DEFAULT_SCHEMA)

    def test_bad_partition_size_rejected(self, files):
        with pytest.raises(ValueError):
            SpyglassBaseline(files, DEFAULT_SCHEMA, partition_size=0)

    def test_partitions_cover_population_exactly_once(self, spyglass, files):
        seen = [f.file_id for p in spyglass.partitions for f in p.files]
        assert len(seen) == len(files)
        assert set(seen) == {f.file_id for f in files}

    def test_partition_size_respected_for_subtrees(self, spyglass):
        # Partitions formed from whole subtrees respect the budget; residual
        # partitions (a directory's direct files) are tiny by construction.
        for p in spyglass.partitions:
            assert len(p) <= max(spyglass.partition_size, 1)

    def test_partition_count_scales_with_budget(self, files):
        coarse = SpyglassBaseline(files, DEFAULT_SCHEMA, partition_size=300)
        fine = SpyglassBaseline(files, DEFAULT_SCHEMA, partition_size=30)
        assert len(fine.partitions) >= len(coarse.partitions)

    def test_repr(self, spyglass):
        assert "SpyglassBaseline" in repr(spyglass)


class TestPointQuery:
    def test_existing_filename(self, spyglass, files):
        result = spyglass.point_query(PointQuery(files[42].filename))
        assert result.found
        assert files[42] in result.files

    def test_missing_filename(self, spyglass):
        assert not spyglass.point_query(PointQuery("missing.bin")).found

    def test_charged_in_memory(self, spyglass, files):
        result = spyglass.point_query(PointQuery(files[0].filename))
        assert result.metrics.disk_index_accesses == 0
        assert result.metrics.memory_index_accesses >= len(spyglass.partitions)


class TestRangeQuery:
    def test_matches_ground_truth(self, spyglass, files):
        q = RangeQuery(("mtime", "owner"), (2000.0, 1.0), (2500.0, 2.0))
        result = spyglass.range_query(q)
        ideal = ground_truth_range(files, q)
        assert {f.file_id for f in result.files} == {f.file_id for f in ideal}

    def test_signature_pruning_limits_scans(self, spyglass, files):
        # A narrow window on one cluster's mtime range should not scan every partition.
        q = RangeQuery(("mtime",), (1050.0,), (1110.0,))
        result = spyglass.range_query(q)
        assert result.metrics.memory_records_scanned < len(files)

    def test_full_range(self, spyglass, files):
        q = RangeQuery(("size",), (0.0,), (1e18,))
        assert len(spyglass.range_query(q).files) == len(files)

    def test_execute_dispatch(self, spyglass, files):
        assert spyglass.execute(RangeQuery(("size",), (0.0,), (1e18,))).found
        with pytest.raises(TypeError):
            spyglass.execute(42)


class TestTopKQuery:
    def test_high_recall_vs_ground_truth(self, spyglass, files):
        generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=3)
        queries = generator.topk_queries(15, k=8, distribution="zipf")
        recalls = []
        for q in queries:
            result = spyglass.topk_query(q)
            assert len(result.files) == 8
            ideal = ground_truth_topk(files, q, DEFAULT_SCHEMA)
            recalls.append(recall(result.files, ideal))
        assert sum(recalls) / len(recalls) >= 0.85

    def test_distances_sorted(self, spyglass):
        q = TopKQuery(("size", "mtime"), (4096.0, 2100.0), 10)
        result = spyglass.topk_query(q)
        assert result.distances == sorted(result.distances)
        assert len(result.files) == 10

    def test_k_larger_than_population(self, files):
        small = SpyglassBaseline(files[:6], DEFAULT_SCHEMA, partition_size=3)
        result = small.topk_query(TopKQuery(("size",), (1000.0,), 50))
        assert len(result.files) == 6


class TestSpaceAndComparison:
    def test_space_accounting_positive(self, spyglass):
        assert spyglass.index_space_bytes() > 0
        assert spyglass.index_space_bytes_per_node() == spyglass.index_space_bytes()

    def test_memory_resident_queries_cheaper_than_dbms(self, spyglass, files):
        from repro.baselines.dbms import DBMSBaseline

        dbms = DBMSBaseline(files, DEFAULT_SCHEMA)
        q = RangeQuery(("mtime", "size"), (2000.0, 0.0), (2500.0, 1e9))
        assert spyglass.range_query(q).latency < dbms.range_query(q).latency

    def test_agrees_with_rtree_baseline(self, spyglass, files):
        from repro.baselines.rtree_db import RTreeBaseline

        rtree = RTreeBaseline(files, DEFAULT_SCHEMA)
        q = RangeQuery(("read_bytes",), (0.0,), (5e5,))
        a = {f.file_id for f in spyglass.range_query(q).files}
        b = {f.file_id for f in rtree.range_query(q).files}
        assert a == b
