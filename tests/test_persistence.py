"""Tests for JSONL / snapshot / results persistence."""

import json

import pytest

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.metadata.attributes import DEFAULT_SCHEMA, AttributeSchema, AttributeSpec
from repro.persistence import (
    DeploymentSnapshot,
    ResultTable,
    load_files,
    load_snapshot,
    load_trace,
    read_csv,
    save_files,
    save_snapshot,
    save_trace,
    schema_from_dict,
    schema_to_dict,
    snapshot_deployment,
    write_csv,
    write_markdown,
)
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

from helpers import make_files


class TestSchemaSerialisation:
    def test_round_trip_default_schema(self):
        restored = schema_from_dict(schema_to_dict(DEFAULT_SCHEMA))
        assert restored == DEFAULT_SCHEMA

    def test_round_trip_custom_schema(self):
        schema = AttributeSchema(
            (
                AttributeSpec("size", log_scale=True, unit="bytes"),
                AttributeSpec("temperature", kind="behavioural", unit="K"),
            )
        )
        restored = schema_from_dict(schema_to_dict(schema))
        assert restored.names == ("size", "temperature")
        assert restored.spec("size").log_scale
        assert restored.spec("temperature").kind == "behavioural"


class TestFilesRoundTrip:
    def test_save_and_load(self, tmp_path):
        files = make_files(50)
        out = tmp_path / "population.jsonl"
        assert save_files(files, out) == 50
        restored = load_files(out)
        assert len(restored) == 50
        assert [f.file_id for f in restored] == [f.file_id for f in files]
        assert restored[0].attributes == files[0].attributes
        assert restored[0].extra == files[0].extra

    def test_wrong_format_rejected(self, tmp_path):
        files = make_files(5)
        trace_path = tmp_path / "trace.jsonl"
        save_trace(generate_trace(SyntheticTraceConfig(n_files=30, n_requests=30, n_projects=5, seed=1)), trace_path)
        with pytest.raises(ValueError):
            load_files(trace_path)

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            load_files(empty)

    def test_count_mismatch_detected(self, tmp_path):
        files = make_files(3)
        out = tmp_path / "broken.jsonl"
        save_files(files, out)
        lines = out.read_text().splitlines()
        out.write_text("\n".join(lines[:-1]) + "\n")  # drop one record
        with pytest.raises(ValueError):
            load_files(out)


class TestTraceRoundTrip:
    def test_save_and_load(self, tmp_path):
        trace = generate_trace(SyntheticTraceConfig(n_files=40, n_requests=200, n_projects=6, seed=2))
        out = tmp_path / "trace.jsonl"
        save_trace(trace, out)
        restored = load_trace(out)
        assert restored.name == trace.name
        assert len(restored.records) == len(trace.records)
        assert len(restored.files) == len(trace.files)
        assert restored.user_accounts == trace.user_accounts
        assert restored.records[0] == trace.records[0]
        assert restored.summary().total_requests == trace.summary().total_requests

    def test_wrong_format_rejected(self, tmp_path):
        files_path = tmp_path / "files.jsonl"
        save_files(make_files(3), files_path)
        with pytest.raises(ValueError):
            load_trace(files_path)


class TestSnapshot:
    @pytest.fixture(scope="class")
    def store(self):
        return SmartStore.build(make_files(120, clusters=4), SmartStoreConfig(num_units=8, seed=9))

    def test_snapshot_contents(self, store):
        snap = snapshot_deployment(store)
        assert snap.num_units == 8
        assert snap.num_files == 120
        assert snap.config["num_units"] == 8
        assert len(snap.tree_nodes) == len(store.tree.nodes)
        root_nodes = [n for n in snap.tree_nodes if n["parent"] is None]
        assert len(root_nodes) == 1

    def test_unit_of_file(self, store):
        snap = snapshot_deployment(store)
        some_file = store.files[0]
        unit = snap.unit_of_file(some_file.file_id)
        assert unit is not None
        assert some_file.file_id in snap.placement[unit]
        assert snap.unit_of_file(-1) is None

    def test_round_trip(self, store, tmp_path):
        snap = snapshot_deployment(store)
        out = tmp_path / "deployment.json"
        save_snapshot(snap, out)
        restored = load_snapshot(out)
        assert restored.placement == snap.placement
        assert restored.same_layout_as(snap)
        assert restored.restore_schema() == store.schema

    def test_same_layout_detects_differences(self, store):
        a = snapshot_deployment(store)
        b = snapshot_deployment(store)
        moved = b.placement[0].pop()
        b.placement[1].append(moved)
        assert not a.same_layout_as(b)

    def test_rebuild_reproduces_layout(self, store):
        rebuilt = SmartStore.build(store.files, store.config, store.schema)
        assert snapshot_deployment(rebuilt).same_layout_as(snapshot_deployment(store))

    def test_wrong_payload_rejected(self):
        with pytest.raises(ValueError):
            DeploymentSnapshot.from_dict({"format": "something.else"})

    def test_node_by_id(self, store):
        snap = snapshot_deployment(store)
        node = snap.tree_nodes[0]
        assert snap.node_by_id(node["node_id"]) == node
        assert snap.node_by_id(-42) is None


class TestResultTable:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResultTable("x", [])
        with pytest.raises(ValueError):
            ResultTable("x", ["a"], rows=[[1, 2]])
        table = ResultTable("x", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_add_row_and_column(self):
        table = ResultTable("latency", ["system", "seconds"])
        table.add_row("SmartStore", 0.1)
        table.add_row("DBMS", 120.0)
        assert len(table) == 2
        assert table.column("system") == ["SmartStore", "DBMS"]

    def test_csv_round_trip(self, tmp_path):
        table = ResultTable(
            "table4",
            ["system", "latency_s", "queries"],
            rows=[["SmartStore", 0.108, 60], ["DBMS", 146.7, 60]],
            metadata={"trace": "msn", "tif": 120},
        )
        out = tmp_path / "table4.csv"
        write_csv(table, out)
        restored = read_csv(out)
        assert restored.name == "table4"
        assert restored.columns == table.columns
        assert restored.rows[0][0] == "SmartStore"
        assert restored.rows[0][1] == pytest.approx(0.108)
        assert restored.rows[1][2] == 60
        assert restored.metadata["trace"] == "msn"
        assert restored.metadata["tif"] == 120

    def test_read_csv_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("# table: nothing\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_markdown_output(self, tmp_path):
        table = ResultTable("demo", ["a", "b"], rows=[[1, "x"]], metadata={"seed": 3})
        out = tmp_path / "demo.md"
        write_markdown(table, out)
        text = out.read_text()
        assert "### demo" in text
        assert "| a" in text and "| 1" in text
        assert "*seed*: 3" in text
