"""Tests for FileMetadata records."""

import pytest

from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata, make_file_id


def make(path="/a/b/file.txt", **attrs):
    base = {name: 1.0 for name in DEFAULT_SCHEMA.names}
    base.update(attrs)
    return FileMetadata(path=path, attributes=base)


class TestFileId:
    def test_stable(self):
        assert make_file_id("/x/y") == make_file_id("/x/y")

    def test_distinct_paths_distinct_ids(self):
        assert make_file_id("/x/y") != make_file_id("/x/z")

    def test_positive_63_bit(self):
        fid = make_file_id("/anything")
        assert 0 <= fid < 2**63


class TestFileMetadata:
    def test_filename_and_directory(self):
        f = make("/home/user/data.bin")
        assert f.filename == "data.bin"
        assert f.directory == "/home/user"

    def test_top_level_file_has_empty_directory(self):
        f = make("file.txt")
        assert f.directory == ""
        assert f.filename == "file.txt"

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            FileMetadata(path="", attributes={"size": 1})

    def test_file_id_derived_from_path(self):
        f = make("/a/b/c")
        assert f.file_id == make_file_id("/a/b/c")

    def test_explicit_file_id_preserved(self):
        f = FileMetadata(path="/a", attributes={"size": 1}, file_id=1234)
        assert f.file_id == 1234

    def test_attributes_coerced_to_float(self):
        f = FileMetadata(path="/a", attributes={"size": 7})
        assert isinstance(f.attributes["size"], float)

    def test_get_with_default(self):
        f = FileMetadata(path="/a", attributes={"size": 1})
        assert f.get("size") == 1.0
        assert f.get("missing", 5.0) == 5.0

    def test_vector_follows_schema_order(self):
        f = make(size=10, ctime=20)
        vec = f.vector(DEFAULT_SCHEMA)
        assert vec.shape == (DEFAULT_SCHEMA.dimension,)
        assert vec[DEFAULT_SCHEMA.index("size")] == 10
        assert vec[DEFAULT_SCHEMA.index("ctime")] == 20

    def test_vector_missing_attribute_raises(self):
        f = FileMetadata(path="/a", attributes={"size": 1})
        with pytest.raises(KeyError):
            f.vector(DEFAULT_SCHEMA)

    def test_with_updates_returns_copy(self):
        f = make(size=1)
        g = f.with_updates(size=99)
        assert g.attributes["size"] == 99
        assert f.attributes["size"] == 1
        assert g.file_id == f.file_id

    def test_matches_ranges_inside(self):
        f = make(size=100, mtime=50)
        assert f.matches_ranges(("size", "mtime"), (50, 0), (150, 100))

    def test_matches_ranges_outside(self):
        f = make(size=100)
        assert not f.matches_ranges(("size",), (200,), (300,))

    def test_matches_ranges_boundary_inclusive(self):
        f = make(size=100)
        assert f.matches_ranges(("size",), (100,), (100,))

    def test_matches_ranges_missing_attribute(self):
        f = FileMetadata(path="/a", attributes={"size": 1})
        assert not f.matches_ranges(("mtime",), (0,), (10,))

    def test_hashable_by_file_id(self):
        f = make("/same/path")
        g = make("/same/path")
        assert hash(f) == hash(g)
        assert len({f, g}) <= 2  # hash equality does not force identity

    def test_extra_annotations_preserved(self):
        f = FileMetadata(path="/a", attributes={"size": 1}, extra={"project": 3})
        assert f.extra["project"] == 3
