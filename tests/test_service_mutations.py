"""Tests for the query service's write path: submit_insert / submit_delete.

The contract under test (ISSUE 2 acceptance): a query issued through the
service immediately after a mutation reflects it, the result cache is
flushed epoch-correctly, and mutations share the admission window.
"""

import pytest

from repro.core.smartstore import SmartStore, SmartStoreConfig, UNKNOWN_GROUP
from repro.ingest import CompactionPolicy, IngestPipeline, WriteAheadLog
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.service import QueryService, ServiceConfig
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery, RangeQuery

from helpers import make_files

CONFIG = SmartStoreConfig(num_units=6, seed=1, search_breadth=64)


@pytest.fixture()
def store():
    return SmartStore.build(make_files(80), CONFIG)


@pytest.fixture()
def service(store):
    with QueryService(store, ServiceConfig(max_workers=2, batch_window=4)) as s:
        yield s


def new_file(i=0):
    return FileMetadata(
        path=f"/service/new-{i}.dat",
        attributes={
            "size": 4000.0 + i, "ctime": 2000.0, "mtime": 2100.0, "atime": 2200.0,
            "read_bytes": 2500.0, "write_bytes": 700.0, "access_count": 3.0,
            "owner": 2.0,
        },
    )


class TestReadYourWritesThroughService:
    def test_insert_then_query(self, service):
        f = new_file(1)
        receipt = service.submit_insert(f).result()
        assert receipt.known
        result = service.execute(PointQuery(f.filename))
        assert result.found

    def test_delete_then_query(self, service, store):
        victim = store.files[0]
        service.submit_delete(victim).result()
        assert not service.execute(PointQuery(victim.filename)).found

    def test_modify_then_query(self, service, store):
        target = store.files[0]
        service.submit_modify(target.with_updates(mtime=8888.0)).result()
        result = service.execute(RangeQuery(("mtime",), (8800.0,), (8900.0,)))
        assert any(m.file_id == target.file_id for m in result.files)

    def test_unknown_delete_reports_unknown(self, service):
        receipt = service.submit_delete(new_file(999)).result()
        assert not receipt.known
        assert receipt.group_id == UNKNOWN_GROUP


class TestCacheEpochCorrectness:
    def test_mutation_flushes_cached_answer(self, service, store):
        f = new_file(2)
        query = PointQuery(f.filename)
        miss = service.execute(query)
        assert not miss.found
        # The miss is now in the negative cache; a hit would wrongly say
        # "not found" after the insert if the flush were skipped.
        assert service.execute(query).found is False
        service.submit_insert(f).result()
        assert service.execute(query).found

    def test_cached_range_updated_after_delete(self, service, store):
        victim = store.files[0]
        window = RangeQuery(("size",), (0.0,), (1e12,))
        before = service.execute(window)
        assert any(m.file_id == victim.file_id for m in before.files)
        service.execute(window)  # warms / confirms the cached entry
        assert service.cache.stats.hits >= 1
        service.submit_delete(victim).result()
        after = service.execute(window)
        assert all(m.file_id != victim.file_id for m in after.files)

    def test_invalidation_counted(self, service, store):
        service.execute(RangeQuery(("size",), (0.0,), (1e12,)))
        invalidations_before = service.cache.stats.invalidations
        service.submit_insert(new_file(3)).result()
        assert service.cache.stats.invalidations > invalidations_before


class TestServicePlumbing:
    def test_mutations_share_admission_window(self, store):
        config = ServiceConfig(
            max_workers=1, batch_window=1, max_in_flight=1,
            block_on_overload=True,
        )
        with QueryService(store, config) as service:
            for i in range(5):
                service.submit_insert(new_file(10 + i)).result()
            assert service.admission.admitted == 5
            assert service.admission.in_flight == 0

    def test_mutation_telemetry_recorded(self, service):
        service.submit_insert(new_file(20)).result()
        service.submit_delete(new_file(21)).result()  # unknown: still served
        t = service.telemetry
        assert t.query_class("insert").count == 1
        assert t.query_class("delete").count == 1
        assert t.query_class("insert").mean_latency > 0
        rows = t.report_rows()
        kinds = [row[0] for row in rows]
        assert "insert" in kinds and "delete" in kinds

    def test_stats_include_ingest(self, service):
        service.submit_insert(new_file(30)).result()
        stats = service.stats()
        assert stats["ingest"]["mutations"] == 1

    def test_closed_service_rejects_mutations(self, store):
        service = QueryService(store, ServiceConfig())
        service.close()
        with pytest.raises(RuntimeError):
            service.submit_insert(new_file(40))

    def test_caller_supplied_durable_pipeline(self, store, tmp_path):
        pipeline = IngestPipeline(
            store, WriteAheadLog(tmp_path / "wal.jsonl", fsync_every=0)
        )
        with QueryService(store, ServiceConfig(), pipeline=pipeline) as service:
            f = new_file(50)
            service.submit_insert(f).result()
            assert [r.kind for r in pipeline.wal.replay()] == ["insert"]
            assert service.execute(PointQuery(f.filename)).found
        pipeline.close()

    def test_auto_compaction_through_service(self, store):
        pipeline = IngestPipeline(
            store, policy=CompactionPolicy(max_staged_per_group=2, max_staged_total=4)
        )
        config = ServiceConfig(auto_compact=True)
        with QueryService(store, config, pipeline=pipeline) as service:
            generator = QueryWorkloadGenerator(store.files, DEFAULT_SCHEMA, seed=5)
            for kind, f in generator.mutation_stream(12, 0, 0):
                service.submit_insert(f).result()
            assert pipeline.compactor.stats.group_compactions > 0
            # Every insert remains served after compaction.
            assert service.execute(PointQuery(f.filename)).found

    def test_mutations_ordered_with_batched_queries(self, store):
        """A query submitted before a mutation sees the pre-mutation state."""
        config = ServiceConfig(max_workers=2, batch_window=64)  # window never fills
        with QueryService(store, config) as service:
            victim = store.files[0]
            before = service.submit(PointQuery(victim.filename))
            mutation = service.submit_delete(victim)
            after = service.submit(PointQuery(victim.filename))
            service.drain()
            assert before.result().found          # pre-mutation answer
            assert mutation.result().known
            assert not after.result().found       # post-mutation answer
