"""Shared fixtures for the test suite.

The expensive fixtures (synthetic traces and built SmartStore deployments)
are session-scoped: the suite contains several hundred tests and rebuilding
a deployment per test would dominate the runtime without improving
isolation — all consumers treat these fixtures as read-only.  Tests that
mutate a deployment build their own small one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.eval.tracking import BENCH_DIR_ENV
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.traces.msn import msn_trace
from repro.workloads.generator import QueryWorkloadGenerator


from helpers import make_files  # noqa: F401  (re-exported for fixtures below)


@pytest.fixture(autouse=True)
def _bench_artefacts_in_tmp(tmp_path_factory, monkeypatch):
    """Keep ``BENCH_<name>.json`` artefacts out of the checkout.

    Several tests exercise the bench CLI entry points end-to-end; without
    this, each such run overwrites the *official* committed results at the
    repo root and in ``benchmarks/results/`` with its own tiny (sometimes
    deliberately failing) configuration.  Redirecting the default artefact
    directory makes test runs side-effect-free; tests that care about the
    written document pass an explicit directory or read this one.
    """
    bench_dir = tmp_path_factory.mktemp("bench-artefacts")
    monkeypatch.setenv(BENCH_DIR_ENV, str(bench_dir))
    return bench_dir


@pytest.fixture(scope="session")
def small_files():
    """60 files in 4 well-separated clusters."""
    return make_files()


@pytest.fixture(scope="session")
def msn_small_trace():
    """A down-scaled synthetic MSN trace (shared, read-only)."""
    return msn_trace(scale=0.35, seed=29)


@pytest.fixture(scope="session")
def msn_small_files(msn_small_trace):
    return msn_small_trace.file_metadata()


@pytest.fixture(scope="session")
def built_store(msn_small_files):
    """A SmartStore deployment over the small MSN population (read-only)."""
    config = SmartStoreConfig(num_units=16, seed=3)
    return SmartStore.build(msn_small_files, config)


@pytest.fixture(scope="session")
def workload_generator(msn_small_files):
    return QueryWorkloadGenerator(msn_small_files, DEFAULT_SCHEMA, seed=7)


@pytest.fixture()
def tiny_store(small_files):
    """A small deployment safe to mutate (function-scoped)."""
    config = SmartStoreConfig(num_units=6, seed=1)
    return SmartStore.build(small_files, config)
