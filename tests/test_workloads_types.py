"""Tests for the query type objects."""

import pytest

from repro.workloads.types import PointQuery, RangeQuery, TopKQuery


class TestPointQuery:
    def test_valid(self):
        assert PointQuery("a.txt").filename == "a.txt"

    def test_empty_filename_rejected(self):
        with pytest.raises(ValueError):
            PointQuery("")

    def test_frozen(self):
        with pytest.raises(Exception):
            PointQuery("a").filename = "b"  # type: ignore


class TestRangeQuery:
    def test_valid(self):
        q = RangeQuery(("size", "mtime"), (0.0, 10.0), (100.0, 20.0))
        assert q.dimensionality == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            RangeQuery(("size",), (0.0, 1.0), (1.0, 2.0))

    def test_lower_above_upper_rejected(self):
        with pytest.raises(ValueError):
            RangeQuery(("size",), (10.0,), (5.0,))

    def test_no_attributes_rejected(self):
        with pytest.raises(ValueError):
            RangeQuery((), (), ())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            RangeQuery(("size", "size"), (0, 0), (1, 1))

    def test_point_window_allowed(self):
        RangeQuery(("size",), (5.0,), (5.0,))


class TestTopKQuery:
    def test_valid(self):
        q = TopKQuery(("size", "mtime"), (100.0, 50.0), k=8)
        assert q.k == 8
        assert q.dimensionality == 2

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            TopKQuery(("size",), (1.0,), k=0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            TopKQuery(("size",), (1.0, 2.0), k=3)

    def test_no_attributes_rejected(self):
        with pytest.raises(ValueError):
            TopKQuery((), (), k=1)

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            TopKQuery(("a", "a"), (1.0, 2.0), k=1)

    def test_hashable(self):
        assert len({TopKQuery(("size",), (1.0,), 3), TopKQuery(("size",), (1.0,), 3)}) == 1
