"""Tests for the query type objects."""

import pytest

from repro.workloads.types import PointQuery, RangeQuery, TopKQuery


class TestPointQuery:
    def test_valid(self):
        assert PointQuery("a.txt").filename == "a.txt"

    def test_empty_filename_rejected(self):
        with pytest.raises(ValueError):
            PointQuery("")

    def test_frozen(self):
        with pytest.raises(Exception):
            PointQuery("a").filename = "b"  # type: ignore


class TestRangeQuery:
    def test_valid(self):
        q = RangeQuery(("size", "mtime"), (0.0, 10.0), (100.0, 20.0))
        assert q.dimensionality == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            RangeQuery(("size",), (0.0, 1.0), (1.0, 2.0))

    def test_lower_above_upper_rejected(self):
        with pytest.raises(ValueError):
            RangeQuery(("size",), (10.0,), (5.0,))

    def test_no_attributes_rejected(self):
        with pytest.raises(ValueError):
            RangeQuery((), (), ())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            RangeQuery(("size", "size"), (0, 0), (1, 1))

    def test_point_window_allowed(self):
        RangeQuery(("size",), (5.0,), (5.0,))


class TestTopKQuery:
    def test_valid(self):
        q = TopKQuery(("size", "mtime"), (100.0, 50.0), k=8)
        assert q.k == 8
        assert q.dimensionality == 2

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            TopKQuery(("size",), (1.0,), k=0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            TopKQuery(("size",), (1.0, 2.0), k=3)

    def test_no_attributes_rejected(self):
        with pytest.raises(ValueError):
            TopKQuery((), (), k=1)

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            TopKQuery(("a", "a"), (1.0, 2.0), k=1)

    def test_hashable(self):
        assert len({TopKQuery(("size",), (1.0,), 3), TopKQuery(("size",), (1.0,), 3)}) == 1


class TestNonFiniteValidation:
    """Regression: NaN bounds compare False with everything, so they used
    to sail through the lo > hi check and silently defeat (or vacuously
    satisfy) MBR pruning; ±inf windows are equally meaningless in the
    index space.  All non-finite inputs are now rejected up front."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_range_lower_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            RangeQuery(("size",), (bad,), (10.0,))

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_range_upper_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            RangeQuery(("size",), (0.0,), (bad,))

    def test_nan_does_not_bypass_bound_ordering(self):
        # The historical failure mode: NaN > 10.0 is False, so the
        # inverted-bounds check never fired and the query was accepted.
        with pytest.raises(ValueError):
            RangeQuery(("size", "mtime"), (0.0, float("nan")), (10.0, 5.0))

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_topk_values_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            TopKQuery(("size", "mtime"), (1.0, bad), k=3)

    def test_finite_extremes_still_accepted(self):
        import sys

        big = sys.float_info.max
        RangeQuery(("size",), (-big,), (big,))
        TopKQuery(("size",), (big,), k=1)
