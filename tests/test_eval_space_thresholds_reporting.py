"""Tests for space comparison, threshold studies and reporting helpers."""

import pytest

from repro.core.smartstore import SmartStoreConfig
from repro.eval.reporting import format_bytes, format_count, format_seconds, format_table
from repro.eval.space import space_comparison
from repro.eval.thresholds import optimal_threshold_per_level, optimal_threshold_vs_scale

from helpers import make_files


@pytest.fixture(scope="module")
def files():
    return make_files(120, clusters=4)


class TestSpaceComparison:
    def test_shapes_of_figure7(self, files):
        result = space_comparison(files, SmartStoreConfig(num_units=10, seed=0))
        assert set(result.keys()) == {"smartstore", "rtree", "dbms"}
        for stats in result.values():
            assert stats["per_node_mean"] > 0
            assert stats["total"] > 0
        # The comparison the paper draws: SmartStore's per-node footprint is
        # far below both centralised baselines, and DBMS is the largest.
        assert result["smartstore"]["per_node_mean"] < result["rtree"]["per_node_mean"]
        assert result["rtree"]["per_node_mean"] < result["dbms"]["per_node_mean"]
        assert result["smartstore"]["nodes"] > 1

    def test_prebuilt_systems_accepted(self, files):
        from repro.baselines import DBMSBaseline, RTreeBaseline
        from repro.core.smartstore import SmartStore

        config = SmartStoreConfig(num_units=8, seed=0)
        store = SmartStore.build(files, config)
        rtree = RTreeBaseline(files)
        dbms = DBMSBaseline(files)
        result = space_comparison(files, config, store=store, rtree=rtree, dbms=dbms)
        assert result["smartstore"]["nodes"] == store.cluster.num_units


class TestThresholdStudies:
    def test_vs_scale_rows(self, files):
        rows = optimal_threshold_vs_scale(files, [4, 8, 12], seed=0)
        assert [r[0] for r in rows] == [4, 8, 12]
        assert all(0.0 <= r[1] <= 1.0 for r in rows)

    def test_per_level_rows(self, files):
        rows = optimal_threshold_per_level(files, 12, seed=0)
        assert rows
        assert rows[0][0] == 1
        levels = [r[0] for r in rows]
        assert levels == sorted(levels)
        assert all(0.0 <= r[1] <= 1.0 for r in rows)


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["longer", 2.5]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert all(line.startswith("|") for line in lines[1:])
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows aligned

    def test_format_table_numbers(self):
        out = format_table(["x"], [[0.000001], [12345.678], [0.25]])
        assert "e-06" in out or "1e-06" in out
        assert "0.25" in out

    def test_format_seconds(self):
        assert "us" in format_seconds(5e-6)
        assert "ms" in format_seconds(5e-3)
        assert format_seconds(2.0).endswith("s")

    def test_format_bytes(self):
        assert format_bytes(512) == "512.00 B"
        assert "KiB" in format_bytes(2048)
        assert "MiB" in format_bytes(5 * 1024**2)
        assert "GiB" in format_bytes(3 * 1024**3)

    def test_format_count(self):
        assert format_count(950) == "950"
        assert format_count(1500) == "1.50K"
        assert format_count(2_500_000) == "2.50M"
        assert format_count(7_576_000_000) == "7.58B"
