"""Tests for the attribute schema."""

import pytest

from repro.metadata.attributes import AttributeSchema, AttributeSpec, DEFAULT_SCHEMA


class TestAttributeSpec:
    def test_valid_kinds(self):
        assert AttributeSpec("x", kind="physical").kind == "physical"
        assert AttributeSpec("x", kind="behavioural").kind == "behavioural"

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            AttributeSpec("x", kind="other")

    def test_defaults(self):
        spec = AttributeSpec("size")
        assert spec.kind == "physical"
        assert spec.log_scale is False
        assert spec.unit == ""


class TestAttributeSchema:
    def test_dimension_and_names(self):
        schema = AttributeSchema((AttributeSpec("a"), AttributeSpec("b")))
        assert schema.dimension == 2
        assert schema.names == ("a", "b")
        assert len(schema) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            AttributeSchema((AttributeSpec("a"), AttributeSpec("a")))

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            AttributeSchema(())

    def test_index_lookup(self):
        schema = DEFAULT_SCHEMA
        assert schema.index("size") == 0
        assert schema.index(schema.names[-1]) == schema.dimension - 1

    def test_index_unknown_raises(self):
        with pytest.raises(KeyError):
            DEFAULT_SCHEMA.index("no-such-attribute")

    def test_contains(self):
        assert "size" in DEFAULT_SCHEMA
        assert "bogus" not in DEFAULT_SCHEMA

    def test_indices_preserve_order(self):
        idx = DEFAULT_SCHEMA.indices(("mtime", "size"))
        assert idx == (DEFAULT_SCHEMA.index("mtime"), DEFAULT_SCHEMA.index("size"))

    def test_spec_accessor(self):
        assert DEFAULT_SCHEMA.spec("size").log_scale is True
        assert DEFAULT_SCHEMA.spec("ctime").log_scale is False

    def test_physical_and_behavioural_partition(self):
        names = set(DEFAULT_SCHEMA.names)
        physical = set(DEFAULT_SCHEMA.physical_names())
        behavioural = set(DEFAULT_SCHEMA.behavioural_names())
        assert physical | behavioural == names
        assert physical & behavioural == set()

    def test_log_scale_mask_matches_specs(self):
        mask = DEFAULT_SCHEMA.log_scale_mask()
        assert len(mask) == DEFAULT_SCHEMA.dimension
        for flag, spec in zip(mask, DEFAULT_SCHEMA.specs):
            assert flag == spec.log_scale

    def test_subset(self):
        sub = DEFAULT_SCHEMA.subset(["mtime", "size"])
        assert sub.names == ("mtime", "size")
        assert sub.dimension == 2
        assert sub.spec("size").log_scale is True

    def test_subset_unknown_attribute(self):
        with pytest.raises(KeyError):
            DEFAULT_SCHEMA.subset(["size", "nope"])

    def test_iteration_yields_specs(self):
        specs = list(DEFAULT_SCHEMA)
        assert all(isinstance(s, AttributeSpec) for s in specs)
        assert len(specs) == DEFAULT_SCHEMA.dimension

    def test_default_schema_has_expected_attributes(self):
        expected = {"size", "ctime", "mtime", "atime", "read_bytes", "write_bytes",
                    "access_count", "owner"}
        assert set(DEFAULT_SCHEMA.names) == expected
