"""Tests for the query workload generator."""

import numpy as np
import pytest

from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.workloads.generator import DISTRIBUTIONS, QueryWorkloadGenerator
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

from helpers import make_files


@pytest.fixture(scope="module")
def generator():
    return QueryWorkloadGenerator(make_files(120), DEFAULT_SCHEMA, seed=5)


class TestConstruction:
    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            QueryWorkloadGenerator([], DEFAULT_SCHEMA)

    def test_distributions_constant(self):
        assert set(DISTRIBUTIONS) == {"uniform", "gauss", "zipf"}


class TestPointQueries:
    def test_count_and_type(self, generator):
        qs = generator.point_queries(50)
        assert len(qs) == 50
        assert all(isinstance(q, PointQuery) for q in qs)

    def test_existing_fraction(self, generator):
        qs = generator.point_queries(100, existing_fraction=0.8)
        filenames = {f.filename for f in generator.files}
        existing = sum(1 for q in qs if q.filename in filenames)
        assert 70 <= existing <= 90

    def test_all_existing(self, generator):
        qs = generator.point_queries(30, existing_fraction=1.0)
        filenames = {f.filename for f in generator.files}
        assert all(q.filename in filenames for q in qs)

    def test_invalid_fraction(self, generator):
        with pytest.raises(ValueError):
            generator.point_queries(5, existing_fraction=1.5)

    def test_negative_count(self, generator):
        with pytest.raises(ValueError):
            generator.point_queries(-1)


class TestRangeQueries:
    @pytest.mark.parametrize("dist", DISTRIBUTIONS)
    def test_windows_within_attribute_bounds(self, generator, dist):
        qs = generator.range_queries(20, ("size", "mtime"), distribution=dist)
        sizes = [f.attributes["size"] for f in generator.files]
        mtimes = [f.attributes["mtime"] for f in generator.files]
        for q in qs:
            assert isinstance(q, RangeQuery)
            assert q.lower[0] <= max(sizes) * 1.001
            assert q.upper[1] <= max(mtimes) * 1.001
            assert q.lower[0] <= q.upper[0]

    def test_default_attributes_are_paper_trio(self, generator):
        q = generator.range_queries(1)[0]
        assert q.attributes == ("mtime", "read_bytes", "write_bytes")

    def test_selectivity_controls_window_width(self, generator):
        narrow = generator.range_queries(20, ("mtime",), selectivity=0.01, distribution="uniform")
        wide = generator.range_queries(20, ("mtime",), selectivity=0.5, distribution="uniform")
        mean_narrow = np.mean([q.upper[0] - q.lower[0] for q in narrow])
        mean_wide = np.mean([q.upper[0] - q.lower[0] for q in wide])
        assert mean_wide > mean_narrow

    def test_ensure_nonempty(self, generator):
        qs = generator.range_queries(20, distribution="uniform", ensure_nonempty=True)
        for q in qs:
            matches = [f for f in generator.files if f.matches_ranges(q.attributes, q.lower, q.upper)]
            assert matches

    def test_invalid_selectivity(self, generator):
        with pytest.raises(ValueError):
            generator.range_queries(5, selectivity=0.0)

    def test_unknown_distribution(self, generator):
        with pytest.raises(ValueError):
            generator.range_queries(5, distribution="pareto")

    def test_unknown_attribute(self, generator):
        with pytest.raises(KeyError):
            generator.range_queries(5, ("bogus",))


class TestTopKQueries:
    @pytest.mark.parametrize("dist", DISTRIBUTIONS)
    def test_basic(self, generator, dist):
        qs = generator.topk_queries(15, ("size", "mtime"), k=8, distribution=dist)
        assert len(qs) == 15
        assert all(isinstance(q, TopKQuery) and q.k == 8 for q in qs)

    def test_values_within_bounds(self, generator):
        qs = generator.topk_queries(30, ("size",), distribution="uniform")
        max_size = max(f.attributes["size"] for f in generator.files)
        assert all(0 <= q.values[0] <= max_size * 1.001 for q in qs)

    def test_zipf_centers_near_existing_files(self, generator):
        qs = generator.topk_queries(30, ("mtime",), distribution="zipf")
        mtimes = np.array([f.attributes["mtime"] for f in generator.files])
        span = mtimes.max() - mtimes.min()
        for q in qs:
            assert np.min(np.abs(mtimes - q.values[0])) < 0.2 * span


class TestMixedWorkload:
    def test_mixed_counts(self, generator):
        qs = generator.mixed_complex_queries(10, 15)
        assert len(qs) == 25
        assert sum(isinstance(q, RangeQuery) for q in qs) == 10
        assert sum(isinstance(q, TopKQuery) for q in qs) == 15

    def test_reproducible_with_seed(self):
        files = make_files(80)
        a = QueryWorkloadGenerator(files, seed=3).range_queries(10)
        b = QueryWorkloadGenerator(files, seed=3).range_queries(10)
        assert a == b
