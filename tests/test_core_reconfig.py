"""Tests for system reconfiguration (storage-unit insertion/deletion, split/merge)."""

import numpy as np
import pytest

from repro.core.reconfig import (
    delete_storage_unit,
    insert_storage_unit,
    merge_into_sibling,
    split_group,
)
from repro.core.semantic_rtree import SemanticRTree, StorageUnitDescriptor
from repro.rtree.mbr import MBR

from test_core_semantic_rtree import make_descriptors


def build_tree(n=12):
    return SemanticRTree.build(make_descriptors(n), thresholds=[0.8, 0.5, 0.2], max_fanout=4)


def new_unit(unit_id, cluster=0, dim=4):
    center = np.full(dim, 10.0 * cluster) + 0.5
    sem = np.zeros(3)
    sem[cluster] = 1.0
    return StorageUnitDescriptor(
        unit_id=unit_id,
        mbr=MBR(center, center + 1.0),
        centroid=center,
        semantic_vector=sem,
        filenames=[f"new{unit_id}-{j}.dat" for j in range(3)],
        file_count=3,
    )


def check_invariants(tree):
    """Structural invariants every reconfiguration must preserve."""
    # Every leaf is reachable from the root exactly once.
    reachable = tree.root.descendant_unit_ids()
    assert sorted(reachable) == sorted(tree.leaves.keys())
    assert len(reachable) == len(set(reachable))
    # Parent MBRs cover child MBRs, fanout bound holds.
    for node in tree.nodes:
        if node.is_leaf:
            continue
        assert len(node.children) <= tree.max_fanout
        for child in node.children:
            assert child.parent is node
            if child.mbr is not None and node.mbr is not None:
                assert node.mbr.contains(child.mbr)


class TestInsertion:
    def test_insert_into_most_correlated_group(self):
        tree = build_tree()
        group, forwards = insert_storage_unit(
            tree, new_unit(100, cluster=1), admission_threshold=0.5, rng=np.random.default_rng(0)
        )
        assert 100 in tree.leaves
        assert 100 in group.descendant_unit_ids()
        # The joined group must be the cluster-1 group.
        assert all(u % 3 == 1 for u in group.descendant_unit_ids() if u < 100)
        check_invariants(tree)

    def test_duplicate_unit_rejected(self):
        tree = build_tree()
        with pytest.raises(ValueError):
            insert_storage_unit(tree, new_unit(0))

    def test_forwarding_counted_when_threshold_high(self):
        tree = build_tree()
        _, forwards = insert_storage_unit(
            tree, new_unit(101, cluster=2), admission_threshold=0.999999,
            rng=np.random.default_rng(1),
        )
        assert forwards >= 1  # nobody admits at an impossible threshold straight away
        assert 101 in tree.leaves

    def test_group_splits_on_overflow(self):
        tree = build_tree()
        for i in range(6):
            insert_storage_unit(tree, new_unit(200 + i, cluster=0), rng=np.random.default_rng(i))
        check_invariants(tree)

    def test_insert_updates_ancestor_mbrs(self):
        tree = build_tree()
        unit = new_unit(300, cluster=2)
        insert_storage_unit(tree, unit, rng=np.random.default_rng(0))
        assert tree.root.mbr.contains(unit.mbr)

    def test_insert_into_single_unit_tree(self):
        tree = SemanticRTree.build(make_descriptors(1), thresholds=[0.5], max_fanout=4)
        insert_storage_unit(tree, new_unit(50), rng=np.random.default_rng(0))
        assert sorted(tree.leaves.keys()) == [0, 50]
        check_invariants(tree)


class TestDeletion:
    def test_delete_existing_unit(self):
        tree = build_tree()
        assert delete_storage_unit(tree, 5) is True
        assert 5 not in tree.leaves
        check_invariants(tree)

    def test_delete_unknown_unit(self):
        tree = build_tree()
        assert delete_storage_unit(tree, 999) is False

    def test_delete_many_units_keeps_tree_valid(self):
        tree = build_tree()
        for unit_id in [0, 3, 6, 9, 1, 4]:
            assert delete_storage_unit(tree, unit_id)
            check_invariants(tree)
        assert len(tree.leaves) == 6

    def test_delete_down_to_single_unit(self):
        tree = build_tree(6)
        for unit_id in range(5):
            delete_storage_unit(tree, unit_id)
        assert len(tree.leaves) == 1
        with pytest.raises(ValueError):
            delete_storage_unit(tree, 5)

    def test_merge_propagates_height_adjustment(self):
        tree = build_tree()
        height_before = tree.height
        for unit_id in range(8):
            delete_storage_unit(tree, unit_id)
        assert tree.height <= height_before
        check_invariants(tree)


class TestSplitAndMerge:
    def test_split_group_creates_sibling(self):
        tree = build_tree()
        group = tree.first_level_groups()[0]
        parent_before = group.parent
        kept, sibling = split_group(tree, group)
        assert sibling.parent is parent_before or tree.root in (sibling.parent, kept.parent)
        check_invariants(tree)

    def test_split_single_child_rejected(self):
        tree = build_tree()
        lonely = tree.allocate_node(1)
        lonely.add_child(tree.allocate_node(0, unit_id=999))
        with pytest.raises(ValueError):
            split_group(tree, lonely)
        # Clean up the unattached scaffolding so other asserts are unaffected.
        tree.forget_node(lonely.children[0])
        tree.forget_node(lonely)

    def test_merge_into_sibling(self):
        tree = build_tree()
        groups = tree.first_level_groups()
        victim = groups[0]
        absorbed_units = victim.descendant_unit_ids()
        result = merge_into_sibling(tree, victim)
        assert result is not None
        for unit in absorbed_units:
            assert unit in tree.root.descendant_unit_ids()
        check_invariants(tree)

    def test_merge_root_returns_none(self):
        tree = build_tree()
        assert merge_into_sibling(tree, tree.root) is None
