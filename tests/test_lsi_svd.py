"""Tests for the truncated SVD wrapper."""

import numpy as np
import pytest
import scipy.sparse

from repro.lsi.svd import truncated_svd


class TestTruncatedSVD:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        a = rng.random((6, 10))
        u, s, vt = truncated_svd(a, 3)
        assert u.shape == (6, 3)
        assert s.shape == (3,)
        assert vt.shape == (3, 10)

    def test_singular_values_descending(self):
        rng = np.random.default_rng(1)
        a = rng.random((8, 8))
        _, s, _ = truncated_svd(a, 5)
        assert np.all(np.diff(s) <= 1e-12)

    def test_full_rank_reconstruction(self):
        rng = np.random.default_rng(2)
        a = rng.random((5, 7))
        u, s, vt = truncated_svd(a, 5)
        assert np.allclose(u @ np.diag(s) @ vt, a, atol=1e-10)

    def test_rank_clamped_to_matrix_rank(self):
        a = np.random.default_rng(3).random((4, 6))
        u, s, vt = truncated_svd(a, 100)
        assert s.shape == (4,)

    def test_rank_one_approximation_is_best(self):
        # Rank-1 truncation must capture the dominant direction of a
        # rank-1 matrix exactly.
        x = np.outer([1.0, 2.0, 3.0], [4.0, 5.0])
        u, s, vt = truncated_svd(x, 1)
        assert np.allclose(u @ np.diag(s) @ vt, x, atol=1e-10)

    def test_invalid_rank_rejected(self):
        with pytest.raises(ValueError):
            truncated_svd(np.ones((3, 3)), 0)

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            truncated_svd(np.empty((0, 3)), 1)

    def test_one_dimensional_input_rejected(self):
        with pytest.raises(ValueError):
            truncated_svd(np.ones(5), 1)

    def test_sparse_input(self):
        rng = np.random.default_rng(4)
        dense = rng.random((20, 30))
        sparse = scipy.sparse.csr_matrix(dense)
        u, s, vt = truncated_svd(sparse, 4)
        u2, s2, vt2 = truncated_svd(dense, 4)
        assert np.allclose(s, s2, atol=1e-8)

    def test_sparse_path_matches_dense_path(self):
        rng = np.random.default_rng(5)
        a = rng.random((40, 50))
        _, s_sparse, _ = truncated_svd(a, 3, use_sparse=True)
        _, s_dense, _ = truncated_svd(a, 3, use_sparse=False)
        assert np.allclose(s_sparse, s_dense, atol=1e-6)

    def test_orthonormal_columns(self):
        a = np.random.default_rng(6).random((10, 12))
        u, _, vt = truncated_svd(a, 4)
        assert np.allclose(u.T @ u, np.eye(4), atol=1e-10)
        assert np.allclose(vt @ vt.T, np.eye(4), atol=1e-10)
