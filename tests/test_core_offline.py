"""Tests for the off-line pre-processing router."""

import numpy as np
import pytest

from repro.cluster.metrics import Metrics
from repro.core.mapping import map_index_units
from repro.core.offline import OfflineRouter
from repro.core.semantic_rtree import SemanticRTree

from test_core_semantic_rtree import make_descriptors


@pytest.fixture()
def tree():
    tree = SemanticRTree.build(make_descriptors(12), thresholds=[0.8, 0.5, 0.2], max_fanout=4)
    map_index_units(tree, np.random.default_rng(0))
    return tree


class TestReplicas:
    def test_replicas_cover_all_first_level_groups(self, tree):
        router = OfflineRouter(tree)
        group_ids = {g.node_id for g in tree.first_level_groups()}
        assert set(router.replicas.keys()) == group_ids

    def test_replica_space_positive(self, tree):
        router = OfflineRouter(tree)
        assert router.replica_space_bytes() > 0

    def test_invalid_threshold(self, tree):
        with pytest.raises(ValueError):
            OfflineRouter(tree, lazy_update_threshold=0.0)


class TestRouting:
    def test_target_group_for_vector_matches_tree(self, tree):
        router = OfflineRouter(tree)
        query = np.array([1.0, 0.0, 0.0])
        gid, sim = router.target_group_for_vector(query)
        expected, _ = tree.most_correlated_group(query)
        assert gid == expected.node_id
        assert sim > 0.8

    def test_routing_charges_local_index_accesses_only(self, tree):
        router = OfflineRouter(tree)
        metrics = Metrics()
        router.target_group_for_vector(np.array([0.0, 0.0, 1.0]), metrics)
        assert metrics.messages == 0
        assert metrics.memory_index_accesses == len(router.replicas)

    def test_groups_for_range_matches_tree(self, tree):
        router = OfflineRouter(tree)
        got = set(router.groups_for_range([0, 1], [9.0, 9.0], [12.0, 12.0]))
        expected = {g.node_id for g in tree.groups_for_range([0, 1], [9.0, 9.0], [12.0, 12.0])}
        assert got == expected

    def test_groups_for_range_empty_region(self, tree):
        router = OfflineRouter(tree)
        assert router.groups_for_range([0], [500.0], [600.0]) == []


class TestLazyUpdate:
    def test_triggers_after_threshold(self, tree):
        router = OfflineRouter(tree, lazy_update_threshold=0.2)
        group = tree.first_level_groups()[0]
        metrics = Metrics()
        triggered = []
        # Each group holds ~20 files (4 units x 5); 20% threshold = ~4 changes.
        for _ in range(10):
            triggered.append(router.record_change(group, metrics, num_units=12))
        assert any(triggered)
        assert metrics.messages > 0
        assert router.lazy_update_multicasts >= 1

    def test_counter_resets_after_multicast(self, tree):
        router = OfflineRouter(tree, lazy_update_threshold=0.2)
        group = tree.first_level_groups()[0]
        for _ in range(20):
            router.record_change(group, Metrics(), num_units=12)
        assert router.pending_changes(group.node_id) < 20

    def test_no_trigger_below_threshold(self, tree):
        router = OfflineRouter(tree, lazy_update_threshold=0.9)
        group = tree.first_level_groups()[0]
        metrics = Metrics()
        assert router.record_change(group, metrics, num_units=12) is False
        assert metrics.messages == 0

    def test_refresh_all_resets_pending(self, tree):
        router = OfflineRouter(tree, lazy_update_threshold=0.9)
        group = tree.first_level_groups()[0]
        router.record_change(group, Metrics(), num_units=12)
        router.refresh_all()
        assert router.pending_changes(group.node_id) == 0
