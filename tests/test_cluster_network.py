"""Tests for the network message accounting."""

from repro.cluster.metrics import Metrics
from repro.cluster.network import Network


class TestNetwork:
    def test_send_counts_one_message(self):
        net = Network()
        net.send(0, 1)
        assert net.metrics.messages == 1

    def test_self_send_is_free(self):
        net = Network()
        net.send(3, 3)
        assert net.metrics.messages == 0

    def test_response_costs_like_request(self):
        net = Network()
        net.send_response(1, 0)
        assert net.metrics.messages == 1

    def test_multicast_counts_distinct_destinations(self):
        net = Network()
        sent = net.multicast(0, [1, 2, 3, 2, 0])
        assert sent == 3
        assert net.metrics.messages == 3

    def test_multicast_excludes_source(self):
        net = Network()
        assert net.multicast(5, [5, 5]) == 0

    def test_gather(self):
        net = Network()
        assert net.gather([1, 2, 3], dst=3) == 2
        assert net.metrics.messages == 2

    def test_shared_metrics_object(self):
        metrics = Metrics()
        net = Network(metrics)
        net.send(0, 1)
        assert metrics.messages == 1
