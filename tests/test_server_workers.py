"""Worker-process-per-shard execution: equivalence, failure, lifecycle.

Covers the process-router half of the network subsystem:

* a process-per-shard deployment answers point / range / top-k queries
  **byte-identically** (result fingerprints) to the in-process sharded
  router and to an unsharded store;
* mutations route to the owning worker, receipts round-trip, and reads
  observe the writes;
* **killing a worker mid-scatter** degrades exactly per policy — the
  default ``"partial"`` policy yields ``complete=False`` with
  ``shards_down`` attribution, ``on_deadline="fail"`` raises
  :class:`PartialResultError`, and the surviving shards keep answering;
* worker shutdown is idempotent and leaves no live child processes.
"""

import os
import signal
import time

import pytest

from repro.api import DeploymentSpec, RequestOptions, connect
from repro.api.options import PartialResultError
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.server.worker import build_process_router
from repro.service.cache import result_fingerprint
from repro.shard.router import _build_shard_router
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery

from helpers import make_files

CONFIG = SmartStoreConfig(num_units=6, seed=3, search_breadth=64)


@pytest.fixture(scope="module")
def population():
    return make_files(80, clusters=4)


@pytest.fixture(scope="module")
def workload(population):
    generator = QueryWorkloadGenerator(population, DEFAULT_SCHEMA, seed=17)
    queries = []
    queries.extend(generator.point_queries(4))
    queries.extend(generator.range_queries(4))
    queries.extend(generator.topk_queries(4, k=5))
    return queries


@pytest.fixture(scope="module")
def process_router(population):
    router = build_process_router(
        population, 2, CONFIG, DEFAULT_SCHEMA, units_per_shard=3
    )
    yield router
    router.close()


class TestEquivalence:
    def test_matches_in_process_router(self, population, workload, process_router):
        local = _build_shard_router(
            population, 2, CONFIG, DEFAULT_SCHEMA, units_per_shard=3
        )
        try:
            for query in workload:
                assert result_fingerprint(
                    process_router.execute(query)
                ) == result_fingerprint(local.execute(query)), query
        finally:
            local.close()

    def test_matches_unsharded_store_fingerprints(self, population, workload):
        baseline = SmartStore.build(population, CONFIG, DEFAULT_SCHEMA)
        reference = [result_fingerprint(baseline.execute(q)) for q in workload]
        router = build_process_router(
            population, 2, CONFIG, DEFAULT_SCHEMA, units_per_shard=3
        )
        try:
            prints = [result_fingerprint(router.execute(q)) for q in workload]
        finally:
            router.close()
        assert prints == reference

    def test_busy_accounting_travels_over_the_wire(self, process_router, workload):
        process_router.reset_busy()
        for query in workload[:6]:
            process_router.execute(query)
        assert process_router.busy_makespan() > 0.0


class TestMutations:
    def test_delete_visible(self, process_router, population):
        victim = population[5]
        assert process_router.execute(PointQuery(victim.filename)).found
        receipt = process_router.default_pipeline().delete(victim)
        assert receipt.kind == "delete"
        assert receipt.known
        assert not process_router.execute(PointQuery(victim.filename)).found

    def test_mutation_stream_matches_local_router(self, population, workload):
        """The same mutation stream applied to a process router and an
        in-process router leaves both answering every query identically —
        receipts and all."""
        local = _build_shard_router(
            population, 2, CONFIG, DEFAULT_SCHEMA, units_per_shard=3
        )
        remote = build_process_router(
            population, 2, CONFIG, DEFAULT_SCHEMA, units_per_shard=3
        )
        try:
            generator = QueryWorkloadGenerator(population, DEFAULT_SCHEMA, seed=41)
            for kind, file in generator.mutation_stream(4, 4, 4):
                lhs = getattr(local.default_pipeline(), kind)(file)
                rhs = getattr(remote.default_pipeline(), kind)(file)
                assert (lhs.kind, lhs.file_id, lhs.known) == (
                    rhs.kind, rhs.file_id, rhs.known
                )
            local.compactor.drain()
            remote.compactor.drain()
            for query in workload:
                assert result_fingerprint(remote.execute(query)) == result_fingerprint(
                    local.execute(query)
                ), query
        finally:
            local.close()
            remote.close()


class TestWorkerDeath:
    """Kill a worker process and watch the degradation contract."""

    @pytest.fixture()
    def client(self, population):
        spec = DeploymentSpec(
            topology="sharded", shards=2, execution="processes", store=CONFIG
        )
        client = connect(spec, population)
        yield client
        client.close()

    @staticmethod
    def _kill_one(router):
        proxy = router.shards[0]
        proxy.process.kill()
        proxy.process.join(timeout=10.0)
        return proxy.shard_id

    def test_partial_policy_attributes_dead_shard(self, client, workload):
        # Healthy first: a scatter query is complete.
        scatter = [q for q in workload if not isinstance(q, PointQuery)]
        assert client.execute(scatter[0]).complete

        dead = self._kill_one(client.store)
        # A *different* query: the identical one would be served complete
        # from the result cache (the epoch did not change).
        response = client.execute(scatter[1])  # default policy: "partial"
        assert response.complete is False
        assert dead in response.attribution["shards_down"]
        assert response.attribution["execution"] == "processes"
        # The surviving worker still contributes real results for its half.
        assert client.store.dead_shards() == [dead]

    def test_fail_policy_raises_partial_result_error(self, client, workload):
        query = next(q for q in workload if not isinstance(q, PointQuery))
        self._kill_one(client.store)
        with pytest.raises(PartialResultError, match="shards down"):
            client.execute(query, RequestOptions(on_deadline="fail"))

    def test_kill_mid_scatter_never_hangs(self, client, population):
        """SIGKILL delivered while a scatter is in flight must surface as a
        degraded response (or clean partial error), never a hang."""
        router = client.store
        victim = router.shards[1]
        # A stream of distinct scatter queries (identical ones would be
        # answered from the result cache after the first).
        generator = QueryWorkloadGenerator(population, DEFAULT_SCHEMA, seed=99)
        queries = iter(generator.range_queries(200))

        import threading

        def assassin():
            time.sleep(0.005)
            os.kill(victim.process.pid, signal.SIGKILL)

        killer = threading.Thread(target=assassin)
        killer.start()
        deadline = time.monotonic() + 30.0
        response = None
        while time.monotonic() < deadline:
            response = client.execute(next(queries))
            if not response.complete:
                break
            time.sleep(0.01)
        killer.join()
        assert response is not None
        assert response.complete is False
        assert victim.shard_id in response.attribution["shards_down"]

    def test_stats_report_failed_calls(self, client, workload):
        query = next(q for q in workload if not isinstance(q, PointQuery))
        self._kill_one(client.store)
        client.execute(query)
        stats = client.store.stats()
        assert stats["shard_calls_failed"] >= 1
        assert stats["dead_shards"]


class TestLifecycle:
    def test_close_is_idempotent_and_reaps_children(self, population):
        router = build_process_router(
            population, 2, CONFIG, DEFAULT_SCHEMA, units_per_shard=3
        )
        processes = [proxy.process for proxy in router.shards]
        assert all(p.is_alive() for p in processes)
        router.close()
        router.close()  # second close must be a no-op
        assert all(not p.is_alive() for p in processes)

    def test_single_worker_router_works(self, population):
        router = build_process_router(
            population, 1, CONFIG, DEFAULT_SCHEMA, units_per_shard=6
        )
        try:
            result = router.execute(PointQuery(population[0].filename))
            assert result.found
        finally:
            router.close()

    def test_spec_validation_gates_processes_execution(self):
        with pytest.raises(ValueError, match="execution"):
            DeploymentSpec(topology="plain", execution="processes")
        with pytest.raises(ValueError, match="execution"):
            DeploymentSpec(topology="sharded", shards=2, execution="fibers")
