"""Tests for the centralised non-semantic R-tree baseline."""

import pytest

from repro.baselines.rtree_db import RTreeBaseline
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

from helpers import make_files


@pytest.fixture(scope="module")
def files():
    return make_files(150, clusters=5)


@pytest.fixture(scope="module")
def baseline(files):
    return RTreeBaseline(files, DEFAULT_SCHEMA)


class TestConstruction:
    def test_all_files_indexed(self, baseline, files):
        assert len(baseline.tree) == len(files)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            RTreeBaseline([], DEFAULT_SCHEMA)


class TestQueries:
    def test_point_query(self, baseline, files):
        assert baseline.point_query(PointQuery(files[2].filename)).found
        assert not baseline.point_query(PointQuery("nope.bin")).found

    def test_range_query_exact(self, baseline, files):
        q = RangeQuery(("mtime", "owner"), (2000.0, 1.0), (2300.0, 1.0))
        result = baseline.range_query(q)
        expected = {f.file_id for f in files if f.matches_ranges(q.attributes, q.lower, q.upper)}
        assert {f.file_id for f in result.files} == expected

    def test_range_disk_accesses_charged(self, baseline):
        result = baseline.range_query(RangeQuery(("size",), (0.0,), (1e15,)))
        assert result.metrics.disk_index_accesses > 0
        assert result.metrics.messages == 2

    def test_topk_returns_k_sorted(self, baseline):
        result = baseline.topk_query(TopKQuery(("size", "mtime"), (2048.0, 2100.0), k=5))
        assert len(result.files) == 5
        assert result.distances == sorted(result.distances)

    def test_execute_dispatch(self, baseline, files):
        assert baseline.execute(PointQuery(files[0].filename)).found
        with pytest.raises(TypeError):
            baseline.execute(object())


class TestComparativeShape:
    """The relationships the paper's evaluation relies on (§5.2)."""

    def test_cheaper_than_dbms_on_range(self, files):
        from repro.baselines.dbms import DBMSBaseline

        rtree = RTreeBaseline(files, DEFAULT_SCHEMA)
        dbms = DBMSBaseline(files, DEFAULT_SCHEMA)
        q = RangeQuery(("mtime", "owner", "size"), (2000.0, 1.0, 0.0), (2300.0, 1.0, 1e12))
        assert rtree.range_query(q).latency < dbms.range_query(q).latency

    def test_smaller_index_than_dbms(self, files):
        from repro.baselines.dbms import DBMSBaseline

        rtree = RTreeBaseline(files, DEFAULT_SCHEMA)
        dbms = DBMSBaseline(files, DEFAULT_SCHEMA)
        assert rtree.index_space_bytes_per_node() < dbms.index_space_bytes_per_node()

    def test_space_positive(self, baseline):
        assert baseline.index_space_bytes() > 0
