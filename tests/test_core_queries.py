"""Tests for the query engines (point / range / top-k, on-line and off-line)."""

import numpy as np
import pytest

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.eval.recall import ground_truth_range, ground_truth_topk, recall
from repro.metadata.file_metadata import FileMetadata
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

from helpers import make_files


@pytest.fixture(scope="module")
def files():
    return make_files(120, clusters=4)


@pytest.fixture(scope="module")
def store(files):
    return SmartStore.build(files, SmartStoreConfig(num_units=12, seed=0))


@pytest.fixture(scope="module")
def online_store(files):
    return SmartStore.build(files, SmartStoreConfig(num_units=12, seed=0, mode="online"))


class TestPointQuery:
    def test_existing_file_found(self, store, files):
        result = store.point_query(files[10].filename)
        assert result.found
        assert any(f.file_id == files[10].file_id for f in result.files)

    def test_missing_file_not_found(self, store):
        result = store.point_query("definitely-not-there.bin")
        assert not result.found

    def test_query_object_accepted(self, store, files):
        result = store.point_query(PointQuery(files[3].filename))
        assert result.found

    def test_metrics_recorded(self, store, files):
        result = store.point_query(files[0].filename)
        assert result.metrics.bloom_probes > 0
        assert result.latency > 0
        assert result.hops >= 0

    def test_hit_rate_over_population(self, store, files):
        hits = sum(1 for f in files[:60] if store.point_query(f.filename).found)
        assert hits / 60 > 0.95


class TestRangeQuery:
    def test_results_satisfy_predicate(self, store, files):
        q = RangeQuery(("mtime",), (1000.0,), (1200.0,))
        result = store.range_query(q)
        for f in result.files:
            assert 1000.0 <= f.attributes["mtime"] <= 1200.0

    def test_matches_ground_truth_on_clustered_window(self, store, files):
        # Cluster 1 lives around mtime ~2060; the window covers it entirely.
        q = RangeQuery(("mtime", "owner"), (2000.0, 1.0), (2300.0, 1.0))
        result = store.range_query(q)
        ideal = ground_truth_range(files, q)
        assert recall(result.files, ideal) == pytest.approx(1.0)

    def test_convenience_signature(self, store):
        result = store.range_query(("size",), (0.0,), (1e12,))
        assert result.found

    def test_missing_bounds_rejected(self, store):
        with pytest.raises(ValueError):
            store.range_query(("size",))

    def test_empty_window(self, store):
        result = store.range_query(("mtime",), (1e8,), (2e8,))
        assert result.files == []
        assert not result.found

    def test_no_duplicate_results(self, store):
        result = store.range_query(("size",), (0.0,), (1e12,))
        ids = [f.file_id for f in result.files]
        assert len(ids) == len(set(ids))

    def test_hops_bounded_by_search_breadth(self, store):
        result = store.range_query(("size",), (0.0,), (1e12,))
        assert result.hops <= store.config.search_breadth - 1

    def test_groups_visited_at_least_one(self, store):
        result = store.range_query(("mtime",), (1e8,), (2e8,))
        assert result.groups_visited >= 1


class TestTopKQuery:
    def test_returns_k_results_sorted(self, store, files):
        q = TopKQuery(("size", "mtime"), (files[5].attributes["size"], files[5].attributes["mtime"]), k=6)
        result = store.topk_query(q)
        assert len(result.files) == 6
        assert result.distances == sorted(result.distances)

    def test_matches_ground_truth(self, store, files):
        anchors = files[::17]
        for anchor in anchors:
            q = TopKQuery(
                ("size", "mtime"),
                (anchor.attributes["size"], anchor.attributes["mtime"]),
                k=5,
            )
            result = store.topk_query(q)
            ideal = ground_truth_topk(
                files, q, raw_lower=store.index_lower, raw_upper=store.index_upper
            )
            assert recall(result.files, ideal) >= 0.8

    def test_anchor_file_is_nearest(self, store, files):
        anchor = files[20]
        q = TopKQuery(
            ("size", "mtime", "owner"),
            (anchor.attributes["size"], anchor.attributes["mtime"], anchor.attributes["owner"]),
            k=1,
        )
        result = store.topk_query(q)
        assert result.distances[0] < 0.05

    def test_k_larger_than_population(self, store, files):
        q = TopKQuery(("size",), (1000.0,), k=10_000)
        result = store.topk_query(q)
        assert len(result.files) == len(files)

    def test_convenience_signature(self, store):
        result = store.topk_query(("size",), (2048.0,), k=3)
        assert len(result.files) == 3

    def test_missing_values_rejected(self, store):
        with pytest.raises(ValueError):
            store.topk_query(("size",))

    def test_no_duplicates(self, store):
        result = store.topk_query(("size",), (4096.0,), k=20)
        ids = [f.file_id for f in result.files]
        assert len(ids) == len(set(ids))


class TestTopKCorrectness:
    """Regressions for the MaxD pruning and tie-ordering bugs.

    Historical failure modes: (1) MaxD was tightened on the pre-dedup
    candidate pool, so a record surfacing both from its storage unit and
    from a version chain counted twice, understated the k-th-best distance
    and terminated the sibling-group scan early, dropping real top-k
    members; (2) equal-distance results came back in scan order, which
    depends on physical placement.
    """

    def test_duplicate_chain_entries_do_not_prune(self, files):
        # No-op modifies put the nearest neighbours into the version chains
        # *as well as* their storage units; with exhaustive search breadth
        # the reported top-k must still match the brute-force ground truth
        # for every anchor (the duplicate pair must not understate MaxD).
        from repro.eval.recall import ground_truth_topk

        store = SmartStore.build(
            files, SmartStoreConfig(num_units=8, seed=0, search_breadth=64)
        )
        for anchor in files:
            q = TopKQuery(
                ("size", "mtime"),
                (anchor.attributes["size"], anchor.attributes["mtime"]),
                k=8,
            )
            ideal = ground_truth_topk(
                files, q, raw_lower=store.index_lower, raw_upper=store.index_upper
            )
            for f in ideal[:3]:
                store.modify_file(f)
            result = store.topk_query(q)
            assert {f.file_id for f in result.files} == {f.file_id for f in ideal}
            # Clear the chains so the next anchor starts from applied state.
            store.reconfigure()

    def test_tie_ordering_is_placement_independent(self):
        # Twelve records with *identical* attribute values: every distance
        # ties exactly, so the result order is pure tie-breaking.  Two
        # deployments with different physical layouts must answer with the
        # same files in the same canonical (distance, file_id) order.
        attrs = {
            "size": 4096.0,
            "ctime": 1000.0,
            "mtime": 1100.0,
            "atime": 1200.0,
            "read_bytes": 2048.0,
            "write_bytes": 512.0,
            "access_count": 5.0,
            "owner": 1.0,
        }
        population = make_files(60, clusters=4) + [
            FileMetadata(path=f"/ties/twin{i:02d}.dat", attributes=dict(attrs))
            for i in range(12)
        ]
        q = TopKQuery(("size", "mtime"), (attrs["size"], attrs["mtime"]), k=6)
        layouts = [
            SmartStoreConfig(num_units=10, seed=0, search_breadth=64),
            SmartStoreConfig(num_units=7, seed=3, search_breadth=64),
        ]
        outcomes = []
        for config in layouts:
            store = SmartStore.build(population, config)
            result = store.topk_query(q)
            ids = [f.file_id for f in result.files]
            assert ids == sorted(ids)  # equal distances => file-id order
            outcomes.append((ids, result.distances))
        assert outcomes[0] == outcomes[1]

    def test_max_d_bound_reproduces_unbounded_answer(self, store, files):
        # Seeding MaxD with the unbounded k-th-best distance must not change
        # the answer (the sharded scatter-gather ships exactly this bound).
        anchor = files[9]
        q = TopKQuery(
            ("size", "mtime"),
            (anchor.attributes["size"], anchor.attributes["mtime"]),
            k=5,
        )
        unbounded = store.engine.topk_query(q)
        bounded = store.engine.topk_query(
            q, max_d_bound=unbounded.distances[q.k - 1]
        )
        assert [f.file_id for f in bounded.files] == [
            f.file_id for f in unbounded.files
        ]
        assert bounded.distances == unbounded.distances

    def test_max_d_bound_prunes_groups(self, store, files):
        # A hopeless bound lets the engine skip every group whose MINDIST
        # exceeds it — a remote shard that cannot beat the primary shard's
        # k-th-best distance does (next to) no work.  Candidates at or
        # below the bound are still guaranteed back (here: the anchor
        # itself at distance 0); anything extra the scanned groups yield
        # is harmless — the scatter-gather merge truncates it.
        anchor = files[9]
        q = TopKQuery(
            ("size", "mtime"),
            (anchor.attributes["size"], anchor.attributes["mtime"]),
            k=3,
        )
        bounded = store.engine.topk_query(q, max_d_bound=0.0)
        unbounded = store.engine.topk_query(q)
        assert (
            bounded.metrics.memory_records_scanned
            < unbounded.metrics.memory_records_scanned
        )
        assert bounded.distances and bounded.distances[0] == 0.0


class TestOnlineVsOffline:
    def test_online_uses_more_messages(self, store, online_store):
        q = RangeQuery(("mtime",), (2000.0,), (2300.0,))
        off = store.range_query(q)
        on = online_store.range_query(q)
        assert on.metrics.messages > off.metrics.messages

    def test_both_modes_agree_on_results(self, store, online_store, files):
        q = RangeQuery(("mtime", "owner"), (2000.0, 1.0), (2300.0, 1.0))
        off = {f.file_id for f in store.range_query(q).files}
        on = {f.file_id for f in online_store.range_query(q).files}
        assert off == on

    def test_online_topk_agrees(self, store, online_store, files):
        anchor = files[7]
        q = TopKQuery(("size", "mtime"), (anchor.attributes["size"], anchor.attributes["mtime"]), k=5)
        off = {f.file_id for f in store.topk_query(q).files}
        on = {f.file_id for f in online_store.topk_query(q).files}
        assert len(off & on) >= 4


class TestExecuteDispatch:
    def test_dispatch(self, store, files):
        assert store.execute(PointQuery(files[0].filename)).found
        assert store.execute(RangeQuery(("size",), (0.0,), (1e12,))).found
        assert store.execute(TopKQuery(("size",), (100.0,), k=2)).found

    def test_unknown_type_rejected(self, store):
        with pytest.raises(TypeError):
            store.execute("not a query")
