"""Tests for the query engines (point / range / top-k, on-line and off-line)."""

import numpy as np
import pytest

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.eval.recall import ground_truth_range, ground_truth_topk, recall
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

from helpers import make_files


@pytest.fixture(scope="module")
def files():
    return make_files(120, clusters=4)


@pytest.fixture(scope="module")
def store(files):
    return SmartStore.build(files, SmartStoreConfig(num_units=12, seed=0))


@pytest.fixture(scope="module")
def online_store(files):
    return SmartStore.build(files, SmartStoreConfig(num_units=12, seed=0, mode="online"))


class TestPointQuery:
    def test_existing_file_found(self, store, files):
        result = store.point_query(files[10].filename)
        assert result.found
        assert any(f.file_id == files[10].file_id for f in result.files)

    def test_missing_file_not_found(self, store):
        result = store.point_query("definitely-not-there.bin")
        assert not result.found

    def test_query_object_accepted(self, store, files):
        result = store.point_query(PointQuery(files[3].filename))
        assert result.found

    def test_metrics_recorded(self, store, files):
        result = store.point_query(files[0].filename)
        assert result.metrics.bloom_probes > 0
        assert result.latency > 0
        assert result.hops >= 0

    def test_hit_rate_over_population(self, store, files):
        hits = sum(1 for f in files[:60] if store.point_query(f.filename).found)
        assert hits / 60 > 0.95


class TestRangeQuery:
    def test_results_satisfy_predicate(self, store, files):
        q = RangeQuery(("mtime",), (1000.0,), (1200.0,))
        result = store.range_query(q)
        for f in result.files:
            assert 1000.0 <= f.attributes["mtime"] <= 1200.0

    def test_matches_ground_truth_on_clustered_window(self, store, files):
        # Cluster 1 lives around mtime ~2060; the window covers it entirely.
        q = RangeQuery(("mtime", "owner"), (2000.0, 1.0), (2300.0, 1.0))
        result = store.range_query(q)
        ideal = ground_truth_range(files, q)
        assert recall(result.files, ideal) == pytest.approx(1.0)

    def test_convenience_signature(self, store):
        result = store.range_query(("size",), (0.0,), (1e12,))
        assert result.found

    def test_missing_bounds_rejected(self, store):
        with pytest.raises(ValueError):
            store.range_query(("size",))

    def test_empty_window(self, store):
        result = store.range_query(("mtime",), (1e8,), (2e8,))
        assert result.files == []
        assert not result.found

    def test_no_duplicate_results(self, store):
        result = store.range_query(("size",), (0.0,), (1e12,))
        ids = [f.file_id for f in result.files]
        assert len(ids) == len(set(ids))

    def test_hops_bounded_by_search_breadth(self, store):
        result = store.range_query(("size",), (0.0,), (1e12,))
        assert result.hops <= store.config.search_breadth - 1

    def test_groups_visited_at_least_one(self, store):
        result = store.range_query(("mtime",), (1e8,), (2e8,))
        assert result.groups_visited >= 1


class TestTopKQuery:
    def test_returns_k_results_sorted(self, store, files):
        q = TopKQuery(("size", "mtime"), (files[5].attributes["size"], files[5].attributes["mtime"]), k=6)
        result = store.topk_query(q)
        assert len(result.files) == 6
        assert result.distances == sorted(result.distances)

    def test_matches_ground_truth(self, store, files):
        anchors = files[::17]
        for anchor in anchors:
            q = TopKQuery(
                ("size", "mtime"),
                (anchor.attributes["size"], anchor.attributes["mtime"]),
                k=5,
            )
            result = store.topk_query(q)
            ideal = ground_truth_topk(
                files, q, raw_lower=store.index_lower, raw_upper=store.index_upper
            )
            assert recall(result.files, ideal) >= 0.8

    def test_anchor_file_is_nearest(self, store, files):
        anchor = files[20]
        q = TopKQuery(
            ("size", "mtime", "owner"),
            (anchor.attributes["size"], anchor.attributes["mtime"], anchor.attributes["owner"]),
            k=1,
        )
        result = store.topk_query(q)
        assert result.distances[0] < 0.05

    def test_k_larger_than_population(self, store, files):
        q = TopKQuery(("size",), (1000.0,), k=10_000)
        result = store.topk_query(q)
        assert len(result.files) == len(files)

    def test_convenience_signature(self, store):
        result = store.topk_query(("size",), (2048.0,), k=3)
        assert len(result.files) == 3

    def test_missing_values_rejected(self, store):
        with pytest.raises(ValueError):
            store.topk_query(("size",))

    def test_no_duplicates(self, store):
        result = store.topk_query(("size",), (4096.0,), k=20)
        ids = [f.file_id for f in result.files]
        assert len(ids) == len(set(ids))


class TestOnlineVsOffline:
    def test_online_uses_more_messages(self, store, online_store):
        q = RangeQuery(("mtime",), (2000.0,), (2300.0,))
        off = store.range_query(q)
        on = online_store.range_query(q)
        assert on.metrics.messages > off.metrics.messages

    def test_both_modes_agree_on_results(self, store, online_store, files):
        q = RangeQuery(("mtime", "owner"), (2000.0, 1.0), (2300.0, 1.0))
        off = {f.file_id for f in store.range_query(q).files}
        on = {f.file_id for f in online_store.range_query(q).files}
        assert off == on

    def test_online_topk_agrees(self, store, online_store, files):
        anchor = files[7]
        q = TopKQuery(("size", "mtime"), (anchor.attributes["size"], anchor.attributes["mtime"]), k=5)
        off = {f.file_id for f in store.topk_query(q).files}
        on = {f.file_id for f in online_store.topk_query(q).files}
        assert len(off & on) >= 4


class TestExecuteDispatch:
    def test_dispatch(self, store, files):
        assert store.execute(PointQuery(files[0].filename)).found
        assert store.execute(RangeQuery(("size",), (0.0,), (1e12,))).found
        assert store.execute(TopKQuery(("size",), (100.0,), k=2)).found

    def test_unknown_type_rejected(self, store):
        with pytest.raises(TypeError):
            store.execute("not a query")
