"""Tests for the semantic-aware prefetching cache."""

import numpy as np
import pytest

from repro.apps.caching import CacheStats, LRUCache, SemanticPrefetchCache
from repro.core.smartstore import SmartStore, SmartStoreConfig

from helpers import make_files


class TestLRUCache:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_hit_after_access(self):
        cache = LRUCache(4)
        assert cache.access(1) is False
        assert cache.access(1) is True
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)      # 1 becomes most recent
        cache.access(3)      # evicts 2
        assert 2 not in cache
        assert 1 in cache and 3 in cache

    def test_prefetch_does_not_count_as_access(self):
        cache = LRUCache(4)
        cache.prefetch(9)
        assert cache.stats.accesses == 0
        assert cache.stats.prefetches == 1
        assert cache.access(9) is True
        assert cache.stats.prefetch_hits == 1

    def test_prefetch_existing_is_noop(self):
        cache = LRUCache(4)
        cache.access(1)
        cache.prefetch(1)
        assert cache.stats.prefetches == 0

    def test_capacity_respected(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.access(i)
        assert len(cache) == 3

    def test_stats_properties(self):
        stats = CacheStats(hits=3, misses=1, prefetches=2, prefetch_hits=1)
        assert stats.hit_rate == 0.75
        assert stats.prefetch_accuracy == 0.5
        assert stats.as_dict()["hits"] == 3

    def test_empty_stats(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.prefetch_accuracy == 0.0


class TestSemanticPrefetchCache:
    @pytest.fixture(scope="class")
    def store(self):
        return SmartStore.build(make_files(80, clusters=4), SmartStoreConfig(num_units=8, seed=0))

    def test_invalid_prefetch_k(self, store):
        with pytest.raises(ValueError):
            SemanticPrefetchCache(store, 10, prefetch_k=0)

    def test_default_attributes_behavioural(self, store):
        cache = SemanticPrefetchCache(store, 10)
        assert set(cache.attributes) <= set(store.schema.names)

    def test_miss_triggers_prefetch(self, store):
        cache = SemanticPrefetchCache(store, 16, prefetch_k=3)
        cache.access(store.files[0])
        assert cache.stats.misses == 1
        assert cache.stats.prefetches >= 1
        assert cache.query_latency > 0

    def test_repeated_access_hits(self, store):
        cache = SemanticPrefetchCache(store, 16)
        cache.access(store.files[0])
        assert cache.access(store.files[0]) is True

    def test_semantic_prefetch_beats_plain_lru_on_clustered_workload(self, store):
        """Accesses walk cluster by cluster: prefetching correlated files
        must produce at least as many hits as a plain LRU of equal size."""
        rng = np.random.default_rng(0)
        files = store.files
        clusters = {}
        for f in files:
            clusters.setdefault(f.extra["cluster"], []).append(f)
        workload = []
        for _ in range(6):
            cluster = rng.integers(0, len(clusters))
            members = clusters[int(cluster)]
            picks = rng.choice(len(members), size=min(10, len(members)), replace=False)
            workload.extend(members[i] for i in picks)

        semantic = SemanticPrefetchCache(store, capacity=24, prefetch_k=6,
                                         attributes=("size", "mtime", "owner"))
        plain = LRUCache(24)
        for f in workload:
            semantic.access(f)
            plain.access(f.file_id)
        assert semantic.stats.hit_rate >= plain.stats.hit_rate

    def test_access_many_returns_stats(self, store):
        cache = SemanticPrefetchCache(store, 8)
        stats = cache.access_many(store.files[:10])
        assert stats.accesses == 10
