"""Request options: deadlines, consistency levels, and cursor pagination.

Covers the acceptance properties of the unified client API:

* a deadline shorter than the scan time returns (policy ``"partial"``) or
  fails (policy ``"fail"``) within 2x the deadline, with the expiry
  visible in service telemetry;
* consistency levels map onto the replica group's catch-up-on-read
  machinery (``primary`` = fully caught up, ``any_replica`` = no
  catch-up, ``bounded`` = catch up to within ``max_staleness`` records);
* paginated page-concatenation equals the unpaginated result on every
  topology — including under concurrent mutations (the cursor pins the
  first execution's snapshot), after snapshot loss (resume strictly after
  the last served key) and across a mid-stream primary failover.
"""

import time

import pytest

from repro.api import (
    DeadlineExceededError,
    DeploymentSpec,
    InvalidCursorError,
    RequestOptions,
    connect,
)
from repro.api.cursor import Cursor
from repro.cluster.metrics import Metrics
from repro.cluster.node import StorageServer
from repro.core.queries import QueryResult
from repro.core.smartstore import SmartStoreConfig
from repro.metadata.file_metadata import FileMetadata
from repro.replication.fault import FaultInjector
from repro.replication.group import ReplicationConfig, _build_replica_group
from repro.service.cache import result_fingerprint
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

from helpers import make_files

CONFIG = SmartStoreConfig(num_units=6, seed=3, search_breadth=64)

ALL_TOPOLOGIES = ("plain", "durable", "sharded", "replicated", "sharded_replicated")

WIDE_RANGE = RangeQuery(("size",), (0.0,), (1e12,))


def spec_for(topology, tmp_path, **overrides):
    kwargs = {"topology": topology, "store": CONFIG, "shards": 2, "replicas": 1}
    if topology == "durable":
        kwargs["wal_dir"] = str(tmp_path / "wal")
    kwargs.update(overrides)
    return DeploymentSpec(**kwargs)


def pages_payload(pages):
    files = [f for p in pages for f in p.page.files]
    distances = [d for p in pages for d in p.page.distances]
    return files, distances


def payload_fingerprint(files, distances):
    return result_fingerprint(
        QueryResult(
            files=list(files),
            metrics=Metrics(),
            latency=0.0,
            groups_visited=1,
            hops=0,
            found=bool(files),
            distances=list(distances),
        )
    )


class TestRequestOptionsValidation:
    def test_defaults_are_unconstrained(self):
        options = RequestOptions()
        assert not options.constrained and not options.paginated
        assert options.start() is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": -1.0},
            {"deadline_s": float("nan")},
            {"deadline_s": float("inf")},
            {"on_deadline": "explode"},
            {"consistency": "psychic"},
            {"max_staleness": -1},
            {"page_size": 0},
        ],
    )
    def test_invalid_options_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RequestOptions(**kwargs)

    def test_constraining_fields_detected(self):
        assert RequestOptions(deadline_s=1.0).constrained
        assert RequestOptions(consistency="any_replica").constrained
        assert RequestOptions(page_size=10).constrained
        assert RequestOptions(page_size=10).paginated


class TestDeadlines:
    #: Injected per-scan sleep and the request budget.  The cooperative
    #: check fires between scans, so the deterministic schedule is: scan 1
    #: ends at SCAN_SLEEP (< DEADLINE, continue), scan 2 ends at
    #: 2*SCAN_SLEEP (> DEADLINE, expire at the next check) — wall time
    #: ~2*SCAN_SLEEP, leaving DEADLINE - ... ≈ 0.3 s of real headroom
    #: under the 2x-deadline bound even on a loaded CI runner.
    SCAN_SLEEP = 0.35
    DEADLINE = 0.5

    @pytest.fixture()
    def slow_client(self, tmp_path, monkeypatch):
        """A plain deployment whose every storage-unit range scan sleeps.

        The sleep models a genuinely slow distributed scan, so the
        cooperative per-leaf deadline checks are exercised mid-flight
        rather than before any work happens.
        """
        population = make_files(60, clusters=4)
        real_scan = StorageServer.scan_range

        def slow_scan(self, *args, **kwargs):
            time.sleep(TestDeadlines.SCAN_SLEEP)
            return real_scan(self, *args, **kwargs)

        monkeypatch.setattr(StorageServer, "scan_range", slow_scan)
        client = connect(spec_for("plain", tmp_path), population)
        yield client
        client.close()

    def test_partial_within_twice_the_deadline(self, slow_client):
        deadline = self.DEADLINE
        started = time.perf_counter()
        response = slow_client.execute(
            WIDE_RANGE, RequestOptions(deadline_s=deadline, on_deadline="partial")
        )
        wall = time.perf_counter() - started
        assert not response.complete
        assert response.deadline_expired
        # Cooperative checks run per leaf scan, so the overshoot is
        # bounded by one scan: well inside 2x the deadline.
        assert wall < 2 * deadline
        # A partial answer is a correct subset: re-running without a
        # deadline yields a superset of the same files.
        full = slow_client.execute(WIDE_RANGE)
        partial_ids = {f.file_id for f in response.files}
        assert partial_ids <= {f.file_id for f in full.files}
        assert len(full.files) > len(response.files)

    def test_fail_policy_raises_within_twice_the_deadline(self, slow_client):
        deadline = self.DEADLINE
        started = time.perf_counter()
        with pytest.raises(DeadlineExceededError):
            slow_client.execute(
                WIDE_RANGE, RequestOptions(deadline_s=deadline, on_deadline="fail")
            )
        assert time.perf_counter() - started < 2 * deadline

    def test_expiry_visible_in_service_telemetry(self, slow_client):
        before = slow_client.service.telemetry.deadline_expired
        slow_client.execute(WIDE_RANGE, RequestOptions(deadline_s=self.DEADLINE))
        after = slow_client.service.telemetry.deadline_expired
        assert after == before + 1
        assert slow_client.stats()["service"]["telemetry"]["deadline_expired"] == after

    @pytest.mark.parametrize("topology", list(ALL_TOPOLOGIES))
    def test_already_expired_deadline_everywhere(self, tmp_path, topology):
        """deadline_s=0 expires at admission on every topology: the
        request does no engine work and still reports the expiry."""
        population = make_files(40, clusters=4)
        with connect(spec_for(topology, tmp_path), population) as client:
            response = client.execute(WIDE_RANGE, RequestOptions(deadline_s=0.0))
            assert response.deadline_expired and not response.complete
            assert response.files == []
            assert client.service.telemetry.deadline_expired >= 1

    def test_deadline_partials_never_poison_the_cache(self, tmp_path):
        population = make_files(40, clusters=4)
        with connect(spec_for("plain", tmp_path), population) as client:
            full_before = client.execute(WIDE_RANGE)
            client.execute(WIDE_RANGE, RequestOptions(deadline_s=0.0))
            full_after = client.execute(WIDE_RANGE)
            assert result_fingerprint(full_after.result) == result_fingerprint(
                full_before.result
            )
            assert full_after.complete

    def test_deadline_applies_to_topk(self, slow_client, monkeypatch):
        real_knn = StorageServer.scan_knn

        def slow_knn(self, *args, **kwargs):
            time.sleep(TestDeadlines.SCAN_SLEEP)
            return real_knn(self, *args, **kwargs)

        monkeypatch.setattr(StorageServer, "scan_knn", slow_knn)
        deadline = self.DEADLINE
        started = time.perf_counter()
        response = slow_client.execute(
            TopKQuery(("size", "mtime"), (8192.0, 2100.0), 10),
            RequestOptions(deadline_s=deadline),
        )
        assert time.perf_counter() - started < 2 * deadline
        assert not response.complete and response.deadline_expired


class TestConsistencyLevels:
    @pytest.fixture(scope="class")
    def group(self):
        population = make_files(50, clusters=4)
        group = _build_replica_group(
            population,
            CONFIG,
            replication=ReplicationConfig(replicas=1, mode="async", max_lag=64),
        )
        yield group
        group.close()

    def new_file(self, i):
        return FileMetadata(
            path=f"/fresh/opt{i:03d}.dat",
            attributes={
                "size": 4096.0,
                "ctime": 1010.0,
                "mtime": 1080.0,
                "atime": 1140.0,
                "read_bytes": 2048.0,
                "write_bytes": 512.0,
                "access_count": 3.0,
                "owner": 1.0,
            },
        )

    def test_any_replica_may_trail_then_bounded_catches_up(self, group):
        fresh = self.new_file(0)
        group.insert(fresh)
        replica = group.members[1]
        assert replica.lag() == 1  # shipped, not yet applied
        query = PointQuery(fresh.filename)
        # any_replica skips catch-up: over one full rotation, the read
        # served by the lagging replica misses the acked write while the
        # primary-served read sees it.
        founds = [
            group.read("point_query", query, consistency="any_replica").found
            for _ in range(2)
        ]
        assert sorted(founds) == [False, True]
        assert replica.lag() == 1  # untouched by any_replica reads
        # bounded with max_staleness=0 is a fully caught-up read.
        founds = [
            group.read(
                "point_query", query, consistency="bounded", max_staleness=0
            ).found
            for _ in range(2)
        ]
        assert founds == [True, True]
        assert replica.lag() == 0

    def test_bounded_staleness_pumps_down_to_the_window(self, group):
        fresh = [self.new_file(i) for i in range(1, 5)]
        for f in fresh:
            group.insert(f)
        replica = group.members[1]
        assert replica.lag() == 4
        # Serve every read from the replica (rotation alternates), asking
        # for at most 2 stale records: the pump drains exactly down to 2.
        for _ in range(2):
            group.read(
                "point_query",
                PointQuery(fresh[0].filename),
                consistency="bounded",
                max_staleness=2,
            )
        assert replica.lag() == 2

    def test_default_read_is_fully_caught_up(self, group):
        fresh = self.new_file(9)
        group.insert(fresh)
        for _ in range(2):
            assert group.read("point_query", PointQuery(fresh.filename)).found

    def test_relaxed_consistency_through_the_client(self, tmp_path):
        """On a sync-mode replicated deployment every member is always
        caught up, so every consistency level answers identically —
        verifying the option plumbs through service and group."""
        population = make_files(40, clusters=4)
        spec = spec_for("replicated", tmp_path, replication_mode="sync")
        workload = [
            WIDE_RANGE,
            PointQuery(population[5].filename),
            TopKQuery(("size", "mtime"), (8192.0, 2100.0), 5),
        ]
        with connect(spec, population) as client:
            for query in workload:
                reference = result_fingerprint(client.execute(query).result)
                for level, staleness in (
                    ("primary", 0),
                    ("any_replica", 0),
                    ("bounded", 3),
                ):
                    got = client.execute(
                        query,
                        RequestOptions(consistency=level, max_staleness=staleness),
                    )
                    assert result_fingerprint(got.result) == reference


class TestCursorPagination:
    @pytest.mark.parametrize("topology", list(ALL_TOPOLOGIES))
    @pytest.mark.parametrize("page_size", [1, 7, 1000])
    def test_page_concatenation_equals_unpaginated(
        self, tmp_path, topology, page_size
    ):
        population = make_files(60, clusters=4)
        queries = [
            WIDE_RANGE,
            TopKQuery(("size", "mtime"), (8192.0, 2100.0), 20),
            PointQuery(population[3].filename),
        ]
        with connect(spec_for(topology, tmp_path), population) as client:
            for query in queries:
                full = client.execute(query).result
                pages = list(client.pages(query, page_size))
                files, distances = pages_payload(pages)
                assert payload_fingerprint(files, distances) == result_fingerprint(
                    full
                ), (topology, type(query).__name__, page_size)
                assert [p.page.index for p in pages] == list(range(len(pages)))
                assert all(len(p.page.files) <= page_size for p in pages)
                assert pages[-1].page.exhausted

    def test_pages_stay_stable_under_concurrent_mutations(self, tmp_path):
        """The acceptance property: page concatenation equals the
        unpaginated result *as of the first page*, even though mutations
        land between page fetches — the cursor pins the snapshot."""
        population = make_files(60, clusters=4)
        mutations = QueryWorkloadGenerator(population, seed=31).mutation_stream(6, 4, 3)
        for topology in ("plain", "sharded", "sharded_replicated"):
            with connect(spec_for(topology, tmp_path), population) as client:
                before = client.execute(WIDE_RANGE).result
                first = client.execute(WIDE_RANGE, RequestOptions(page_size=9))
                collected = [first]
                cursor = first.cursor
                for kind, file in mutations:  # land mid-stream
                    getattr(client, kind)(file)
                while cursor is not None:
                    page = client.execute(WIDE_RANGE, RequestOptions(cursor=cursor))
                    assert page.page.pinned
                    collected.append(page)
                    cursor = page.cursor
                files, distances = pages_payload(collected)
                assert payload_fingerprint(files, distances) == result_fingerprint(
                    before
                ), topology
                # And the live (unpinned) answer did move on.
                after = client.execute(WIDE_RANGE).result
                assert result_fingerprint(after) != result_fingerprint(before)

    def test_cursor_resumes_after_snapshot_loss(self, tmp_path):
        """A cursor outliving its pinned snapshot still resumes: the query
        re-executes and continues strictly after the last served key."""
        population = make_files(60, clusters=4)
        for query in (WIDE_RANGE, TopKQuery(("size", "mtime"), (8192.0, 2100.0), 25)):
            with connect(spec_for("sharded", tmp_path), population) as client:
                full = client.execute(query).result
                first = client.execute(query, RequestOptions(page_size=8))
                collected = [first]
                cursor = first.cursor
                lost = False
                while cursor is not None:
                    if not lost:
                        client._snapshots.clear()  # simulate restart/eviction
                        lost = True
                    page = client.execute(query, RequestOptions(cursor=cursor))
                    collected.append(page)
                    cursor = page.cursor
                assert not collected[1].page.pinned  # recomputed resume
                files, distances = pages_payload(collected)
                assert payload_fingerprint(files, distances) == result_fingerprint(full)

    def test_cursor_resume_across_primary_failover(self, tmp_path):
        """Mid-stream primary failover: later pages — pinned *and*
        recomputed — still concatenate to the original result."""
        population = make_files(60, clusters=4)
        spec = spec_for("sharded_replicated", tmp_path, replicas=2)
        with connect(spec, population) as client:
            full = client.execute(WIDE_RANGE).result
            first = client.execute(WIDE_RANGE, RequestOptions(page_size=10))
            injector = FaultInjector(client.store)
            killed = injector.crash_primary()
            assert killed  # every shard's primary is down
            collected = [first]
            cursor = first.cursor
            cleared = False
            while cursor is not None:
                page = client.execute(WIDE_RANGE, RequestOptions(cursor=cursor))
                collected.append(page)
                cursor = page.cursor
                if not cleared:
                    client._snapshots.clear()  # force one recomputed resume
                    cleared = True
            files, distances = pages_payload(collected)
            assert payload_fingerprint(files, distances) == result_fingerprint(full)
            # A write after the crash proves the failover really happened.
            fresh = FileMetadata(
                path="/fresh/after-failover.dat",
                attributes={
                    "size": 2048.0,
                    "ctime": 1010.0,
                    "mtime": 1111.0,
                    "atime": 1140.0,
                    "read_bytes": 1024.0,
                    "write_bytes": 256.0,
                    "access_count": 2.0,
                    "owner": 1.0,
                },
            )
            assert client.insert(fresh).receipt.known
            assert any(g.failovers > 0 for g in client.store.replica_groups())

    def test_cursor_of_other_query_rejected(self, tmp_path):
        population = make_files(30, clusters=3)
        with connect(spec_for("plain", tmp_path), population) as client:
            first = client.execute(WIDE_RANGE, RequestOptions(page_size=3))
            other = RangeQuery(("size",), (0.0,), (5e11,))
            with pytest.raises(InvalidCursorError, match="different query"):
                client.execute(other, RequestOptions(cursor=first.cursor))

    def test_garbage_cursor_rejected(self, tmp_path):
        population = make_files(30, clusters=3)
        with connect(spec_for("plain", tmp_path), population) as client:
            for token in ("not-base64!!", "aGVsbG8=", ""):
                with pytest.raises(InvalidCursorError):
                    client.execute(WIDE_RANGE, RequestOptions(cursor=token))

    def test_cursor_token_round_trip(self):
        cursor = Cursor(
            query_fp="ab" * 12,
            snapshot_id="s7",
            offset=42,
            last_key=(0.125, 991),
            epoch="(3, 4)",
            page_size=16,
            page_index=3,
        )
        assert Cursor.decode(cursor.encode()) == cursor
        plain = Cursor(
            query_fp="cd" * 12,
            snapshot_id="s8",
            offset=5,
            last_key=17,
            epoch="9",
            page_size=5,
        )
        assert Cursor.decode(plain.encode()) == plain
