"""Tests for the write-ahead log: append/replay, checksums, torn tails."""

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ingest.wal import WAL_FORMAT, WALRecord, WriteAheadLog
from repro.metadata.file_metadata import FileMetadata

from helpers import make_files


@pytest.fixture()
def files():
    return make_files(10)


class TestAppendReplay:
    def test_roundtrip(self, tmp_path, files):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            seqs = [wal.append("insert", f) for f in files[:3]]
            seqs.append(wal.append("delete", files[0]))
        assert seqs == [1, 2, 3, 4]
        replay = WriteAheadLog.scan(path)
        assert not replay.truncated
        assert [r.seq for r in replay] == seqs
        assert [r.kind for r in replay] == ["insert", "insert", "insert", "delete"]
        assert replay.records[0].file.path == files[0].path
        assert replay.records[0].file.attributes == files[0].attributes

    def test_sequence_numbers_resume_across_reopen(self, tmp_path, files):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append("insert", files[0])
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 1
            assert wal.append("insert", files[1]) == 2
        assert [r.seq for r in WriteAheadLog.scan(path)] == [1, 2]

    def test_missing_file_scans_empty(self, tmp_path):
        replay = WriteAheadLog.scan(tmp_path / "nope.jsonl")
        assert replay.records == [] and not replay.truncated

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "not-a-wal.jsonl"
        path.write_text('{"format": "repro.files", "version": 1}\n')
        with pytest.raises(ValueError):
            WriteAheadLog.scan(path)

    def test_torn_header_replays_empty(self, tmp_path):
        # Crash during the very first header write: nothing was durable.
        path = tmp_path / "wal.jsonl"
        path.write_text('{"format": "repro.w')
        replay = WriteAheadLog.scan(path)
        assert replay.truncated and replay.records == []
        # Reopening truncates the torn header and starts a fresh log.
        with WriteAheadLog(path) as wal:
            assert wal.append("checkpoint") == 1
        assert not WriteAheadLog.scan(path).truncated

    def test_unknown_kind_rejected(self, tmp_path, files):
        with WriteAheadLog(tmp_path / "wal.jsonl") as wal:
            with pytest.raises(ValueError):
                wal.append("truncate", files[0])

    def test_invalid_fsync_every_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "wal.jsonl", fsync_every=-1)


class TestChecksums:
    def test_crc_detects_bit_flip(self, tmp_path, files):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append("insert", files[0])
            wal.append("insert", files[1])
        lines = path.read_text().splitlines()
        payload = json.loads(lines[1])
        payload["kind"] = "delete"  # flip the op, keep the stale crc
        lines[1] = json.dumps(payload)
        path.write_text("\n".join(lines) + "\n")
        replay = WriteAheadLog.scan(path)
        # The corrupt record and everything after it are dropped.
        assert replay.truncated
        assert replay.records == []
        assert replay.bad_line == 2

    def test_record_payload_roundtrip(self, files):
        record = WALRecord(seq=7, kind="modify", file=files[0])
        assert WALRecord.from_payload(record.to_payload()) == record


class TestTornTail:
    def _write_then_tear(self, tmp_path, files, garbage):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append("insert", files[0])
            wal.append("insert", files[1])
        with path.open("a", encoding="utf-8") as fh:
            fh.write(garbage)
        return path

    @pytest.mark.parametrize(
        "garbage",
        [
            '{"seq": 3, "kind": "ins',          # torn mid-record
            "garbage that is not json\n",        # not JSON at all
            '{"seq": 3, "kind": "insert", "file": null, "crc": 1}\n',  # bad crc
        ],
    )
    def test_replay_stops_at_torn_tail(self, tmp_path, files, garbage):
        path = self._write_then_tear(tmp_path, files, garbage)
        replay = WriteAheadLog.scan(path)
        assert replay.truncated
        assert [r.seq for r in replay] == [1, 2]

    def test_reopen_truncates_torn_tail_and_appends(self, tmp_path, files):
        path = self._write_then_tear(tmp_path, files, '{"torn": ')
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 2
            wal.append("insert", files[2])
        replay = WriteAheadLog.scan(path)
        assert not replay.truncated
        assert [r.seq for r in replay] == [1, 2, 3]


def _wal_bytes_and_tail():
    """A 3-record log's raw bytes plus the byte range of its tail record.

    Built once (module level): the population and the log are fully
    deterministic, so every property example can slice the same bytes.
    """
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            for f in make_files(3, seed=5):
                wal.append("insert", f)
        raw = path.read_bytes()
    lines = raw.splitlines(keepends=True)
    tail_start = len(raw) - len(lines[-1])
    return raw, tail_start


_RAW, _TAIL_START = _wal_bytes_and_tail()
#: Tail-record bytes excluding the trailing newline: cutting inside this
#: span tears the record; cutting at/after its end leaves it intact.
_TAIL_BODY = len(_RAW) - _TAIL_START - 1


def _scan_bytes(raw: bytes):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "wal.jsonl"
        path.write_bytes(raw)
        return path, WriteAheadLog.scan(path)


class TestTornTailProperties:
    """Recovery must yield *exactly* the intact prefix, byte for byte.

    The satellite property: whatever a crash does to the tail record —
    truncation at any byte offset, or corruption of any byte — replay
    recovers precisely records 1..2, never a phantom and never less.
    """

    def test_every_truncation_offset_recovers_exact_prefix(self):
        # Exhaustive, not sampled: every byte offset of the tail record.
        for cut in range(_TAIL_BODY):
            _, replay = _scan_bytes(_RAW[: _TAIL_START + cut])
            assert [r.seq for r in replay] == [1, 2], f"cut at tail byte {cut}"
            # A clean cut at the record boundary is not a torn tail.
            assert replay.truncated == (cut > 0), f"cut at tail byte {cut}"
            assert replay.good_bytes == _TAIL_START

    def test_losing_only_the_trailing_newline_keeps_the_record(self):
        # The one offset that does NOT tear the record: the tail's JSON is
        # complete, only the newline is gone — the record must survive.
        _, replay = _scan_bytes(_RAW[: _TAIL_START + _TAIL_BODY])
        assert [r.seq for r in replay] == [1, 2, 3]
        assert not replay.truncated

    @given(
        offset=st.integers(min_value=0, max_value=_TAIL_BODY - 1),
        replacement=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=150, deadline=None)
    def test_any_single_byte_corruption_recovers_exact_prefix(
        self, offset, replacement
    ):
        position = _TAIL_START + offset
        if _RAW[position] == replacement:
            replacement = (replacement + 1) % 256
        raw = _RAW[:position] + bytes([replacement]) + _RAW[position + 1 :]
        _, replay = _scan_bytes(raw)
        # The CRC (or the JSON parser) rejects the record; everything
        # before it survives untouched.
        assert replay.truncated
        assert [r.seq for r in replay] == [1, 2]
        assert replay.good_bytes == _TAIL_START

    @given(
        # Strictly inside the tail body: at cut == _TAIL_BODY the JSON is
        # complete (only the newline is missing) and the record rightly
        # *survives* — see test_losing_only_the_trailing_newline above.
        cut=st.integers(min_value=1, max_value=_TAIL_BODY - 1),
        garbage=st.binary(min_size=0, max_size=40),
    )
    @settings(max_examples=100, deadline=None)
    def test_truncation_plus_garbage_then_reopen_appends_cleanly(
        self, cut, garbage
    ):
        # Crash mid-write often leaves a torn prefix plus junk from an
        # earlier file generation; reopening must truncate back to the
        # last intact record and resume the sequence numbering there.
        garbage = garbage.replace(b"\n", b" ")
        raw = _RAW[: _TAIL_START + cut] + garbage
        path, replay = _scan_bytes(raw)
        assert [r.seq for r in replay] == [1, 2]
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "wal.jsonl"
            path.write_bytes(raw)
            with WriteAheadLog(path) as wal:
                assert wal.last_seq == 2
                assert wal.append("insert", make_files(4, seed=5)[3]) == 3
            final = WriteAheadLog.scan(path)
            assert not final.truncated
            assert [r.seq for r in final] == [1, 2, 3]


class TestFsyncBatching:
    def test_fsync_per_record(self, tmp_path, files):
        with WriteAheadLog(tmp_path / "wal.jsonl", fsync_every=1) as wal:
            for f in files[:5]:
                wal.append("insert", f)
            assert wal.syncs == 5

    def test_fsync_batched(self, tmp_path, files):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync_every=4)
        for f in files[:5]:
            wal.append("insert", f)
        assert wal.syncs == 1  # one batch of 4; the 5th is pending
        wal.close()
        assert wal.syncs == 2  # close drains the pending batch

    def test_no_explicit_fsync(self, tmp_path, files):
        with WriteAheadLog(tmp_path / "wal.jsonl", fsync_every=0) as wal:
            for f in files[:5]:
                wal.append("insert", f)
            assert wal.syncs == 0
        # The contract holds through close() too: zero explicit fsyncs.
        assert wal.syncs == 0


class TestTruncateThrough:
    def test_checkpoint_truncation(self, tmp_path, files):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            for f in files[:4]:
                wal.append("insert", f)
            kept = wal.truncate_through(2)
            assert kept == 2
            # Appends continue with the global sequence numbering.
            assert wal.append("insert", files[4]) == 5
        replay = WriteAheadLog.scan(path)
        assert [r.seq for r in replay] == [3, 4, 5]

    def test_truncate_everything(self, tmp_path, files):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            for f in files[:3]:
                wal.append("insert", f)
            assert wal.truncate_through(3) == 0
        assert WriteAheadLog.scan(path).records == []
