"""Observability: distributed tracing, metrics registry, slow-query log.

The tentpole contracts:

* **One trace across every layer.**  A traced query against any topology
  yields a single span tree — client edge, admission, cache lookup,
  engine, per-shard scatter, replica read/catch-up — and over the wire
  the tree additionally spans the server edge and the shard worker
  *processes* (whose spans ship back inline and fold into the parent's
  collector).
* **Degrade, never fail.**  Malformed trace headers from the wire yield
  a fresh trace (hypothesis-fuzzed); a dead worker mid-scatter still
  produces a complete span tree with ``shards_down`` attribution.
* **Disabled tracing is free.**  Untraced requests allocate no spans and
  share one no-op handle.
* **Metrics merge across processes** and render as Prometheus text
  exposition; the slow-query log emits one structured record with the
  full span breakdown.
"""

import json
import re

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import DeploymentSpec, RequestOptions, connect
from repro.core.smartstore import SmartStoreConfig
from repro.eval.tracking import write_bench_json
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.obs import (
    MetricsRegistry,
    SlowQueryLog,
    Span,
    SpanCollector,
    TraceContext,
    Tracer,
    context_from_wire,
    context_to_wire,
    get_registry,
    get_tracer,
    set_registry,
    set_slowlog,
    set_tracer,
)
from repro.obs.trace import _NOOP_SPAN
from repro.server import serve_spec
from repro.server.protocol import options_from_wire, options_to_wire
from repro.server.remote import connect_remote
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery

from helpers import make_files

CONFIG = SmartStoreConfig(num_units=6, seed=3, search_breadth=64)


@pytest.fixture()
def traced():
    """Fresh enabled tracer + registry, restored afterwards."""
    prev_tracer = set_tracer(Tracer(enabled=True))
    prev_registry = set_registry(MetricsRegistry())
    prev_slowlog = set_slowlog(SlowQueryLog(None))
    yield get_tracer()
    set_tracer(prev_tracer)
    set_registry(prev_registry)
    set_slowlog(prev_slowlog)


@pytest.fixture(scope="module")
def population():
    return make_files(80, clusters=4)


def topk_queries(population, n=4, seed=17):
    return QueryWorkloadGenerator(population, DEFAULT_SCHEMA, seed=seed).topk_queries(
        n, k=5
    )


def span_tree(spans):
    """{span_id: span} plus a parent->children map, asserting one root."""
    by_id = {s.span_id: s for s in spans}
    children = {}
    for s in spans:
        children.setdefault(s.parent_id, []).append(s)
    return by_id, children


# ---------------------------------------------------------------------------- local (in-process) tracing
class TestLocalTracing:
    def test_span_tree_covers_every_stage(self, traced, population):
        spec = DeploymentSpec(
            topology="sharded_replicated", store=CONFIG, shards=2, replicas=1
        )
        with connect(spec, population) as client:
            response = client.execute(topk_queries(population)[0])
        assert response.trace_id is not None
        spans = traced.collector.spans_for(response.trace_id)
        names = sorted(s.name for s in spans)
        for expected in (
            "client.execute",
            "service.admission",
            "service.cache_lookup",
            "service.engine",
            "shard.scan",
            "replica.read",
            "replica.catchup",
        ):
            assert expected in names, f"missing span {expected}: {names}"
        assert names.count("shard.scan") >= 1  # scatter legs (router may prune)
        # Parentage: every span belongs to the one trace and chains back
        # to the client-edge root.
        by_id, _ = span_tree(spans)
        assert all(s.trace_id == response.trace_id for s in spans)
        root = next(s for s in spans if s.name == "client.execute")
        assert root.parent_id == ""
        for s in spans:
            if s.span_id == root.span_id:
                continue
            assert s.parent_id in by_id, f"{s.name} has dangling parent"
        scans = [s for s in spans if s.name == "shard.scan"]
        engine = next(s for s in spans if s.name == "service.engine")
        assert all(s.parent_id == engine.span_id for s in scans)
        assert {s.tags["shard"] for s in scans} <= {0, 1}

    def test_cache_hit_is_tagged(self, traced, population):
        spec = DeploymentSpec(topology="plain", store=CONFIG)
        query = topk_queries(population)[0]
        with connect(spec, population) as client:
            first = client.execute(query)
            second = client.execute(query)
        lookup = [
            s
            for s in traced.collector.spans_for(second.trace_id)
            if s.name == "service.cache_lookup"
        ]
        assert lookup and lookup[0].tags["hit"] is True
        first_lookup = [
            s
            for s in traced.collector.spans_for(first.trace_id)
            if s.name == "service.cache_lookup"
        ]
        assert first_lookup and first_lookup[0].tags["hit"] is False

    def test_deadline_expiry_is_tagged_in_span(self, traced, population):
        spec = DeploymentSpec(topology="sharded", store=CONFIG, shards=2)
        with connect(spec, population) as client:
            response = client.execute(
                topk_queries(population)[0],
                RequestOptions(deadline_s=0.0),  # expires before admission
            )
        assert response.deadline_expired
        assert not response.complete
        engine = [
            s
            for s in traced.collector.spans_for(response.trace_id)
            if s.name == "service.engine"
        ]
        assert engine and engine[0].tags.get("deadline_expired") is True

    def test_mutation_gets_its_own_trace(self, traced, population, tmp_path):
        spec = DeploymentSpec(
            topology="durable", store=CONFIG, wal_dir=str(tmp_path / "wal")
        )
        with connect(spec, population) as client:
            response = client.delete(population[0])
        assert response.trace_id is not None
        names = {s.name for s in traced.collector.spans_for(response.trace_id)}
        assert "client.mutate" in names

    def test_disabled_tracing_allocates_nothing(self, population):
        prev = set_tracer(Tracer(enabled=False))
        try:
            tracer = get_tracer()
            assert tracer.span("anything") is _NOOP_SPAN
            assert tracer.root("anything") is _NOOP_SPAN
            spec = DeploymentSpec(topology="sharded", store=CONFIG, shards=2)
            with connect(spec, population) as client:
                response = client.execute(topk_queries(population)[0])
            assert response.trace_id is None
            assert len(tracer.collector) == 0
        finally:
            set_tracer(prev)

    def test_span_never_invents_a_trace_mid_stack(self, traced):
        # No ambient context, no explicit context: lower layers no-op.
        assert traced.span("wal.append") is _NOOP_SPAN


# ---------------------------------------------------------------------------- over the wire + worker processes
PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$"
)


def assert_prometheus(text):
    """Minimal exposition-format validation: HELP/TYPE pairs + sample lines."""
    lines = [l for l in text.splitlines() if l]
    assert lines, "empty exposition"
    typed = set()
    for line in lines:
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram")
            typed.add(name)
        elif not line.startswith("#"):
            assert PROM_LINE.match(line), f"bad sample line: {line!r}"
    assert typed, "no TYPE headers"
    return typed


class TestWireTracing:
    @pytest.fixture()
    def server(self, traced, population):
        spec = DeploymentSpec(
            topology="sharded", store=CONFIG, shards=2, execution="processes"
        )
        server = serve_spec(spec, population)
        yield server
        server.close()

    def test_trace_spans_worker_processes(self, traced, server, population):
        with connect_remote(server.address) as remote:
            response = remote.execute(topk_queries(population)[0])
        assert response.trace_id is not None
        spans = traced.collector.spans_for(response.trace_id)
        names = [s.name for s in spans]
        for expected in (
            "remote.execute",
            "server.execute",
            "client.execute",
            "service.engine",
            "shard.scan",
            "worker.scan",
        ):
            assert expected in names, f"missing {expected}: {names}"
        # Worker spans were minted in other processes: their id prefixes
        # differ from the parent's, and each parents under its shard.scan.
        workers = [s for s in spans if s.name == "worker.scan"]
        assert len(workers) >= 1  # top-k MaxD pruning may skip shards
        parent_prefix = traced._prefix
        scan_ids = {s.span_id for s in spans if s.name == "shard.scan"}
        for worker in workers:
            assert not worker.span_id.startswith(f"{parent_prefix}-")
            assert worker.parent_id in scan_ids
            assert worker.tags["complete"] is True

    def test_trace_survives_codec_renegotiation(self, traced, server, population):
        # Request a non-default codec: the hello renegotiation (or its
        # fallback when msgpack is absent) must not strip trace headers.
        with connect_remote(server.address, codec="msgpack") as remote:
            response = remote.execute(topk_queries(population)[1])
        assert response.trace_id is not None
        names = {s.name for s in traced.collector.spans_for(response.trace_id)}
        assert "worker.scan" in names

    def test_explicit_trace_id_round_trips(self, traced, server, population):
        options = RequestOptions(trace_id="cafe0123cafe0123")
        with connect_remote(server.address) as remote:
            response = remote.execute(topk_queries(population)[2], options)
        assert response.trace_id == "cafe0123cafe0123"

    def test_worker_kill_mid_scatter_keeps_span_tree(
        self, traced, server, population
    ):
        victim = server.client.store.shards[0]
        victim.process.kill()
        victim.process.join(timeout=10.0)
        queries = QueryWorkloadGenerator(
            population, DEFAULT_SCHEMA, seed=5
        ).range_queries(6)
        with connect_remote(server.address) as remote:
            responses = [remote.execute(q) for q in queries]
        partials = [r for r in responses if not r.complete]
        assert partials, "no query touched the dead shard"
        response = partials[0]
        assert victim.shard_id in response.attribution["shards_down"]
        spans = traced.collector.spans_for(response.trace_id)
        names = [s.name for s in spans]
        assert "server.execute" in names and "service.engine" in names
        # The dead shard's scatter leg still recorded its span, tagged.
        dead_scans = [
            s
            for s in spans
            if s.name == "shard.scan" and s.tags.get("shard") == victim.shard_id
        ]
        assert dead_scans and dead_scans[0].tags.get("unavailable") is True
        # Across the workload the surviving worker's spans still crossed
        # the process boundary (a one-shard-down deployment keeps tracing).
        all_names = {
            s.name
            for r in responses
            for s in traced.collector.spans_for(r.trace_id)
        }
        assert "worker.scan" in all_names

    def test_metrics_op_renders_merged_exposition(
        self, traced, server, population
    ):
        generator = QueryWorkloadGenerator(population, DEFAULT_SCHEMA, seed=11)
        with connect_remote(server.address) as remote:
            # Point queries Bloom-route to their owning shards, so both
            # workers end up with scan observations.
            for q in generator.point_queries(8) + generator.topk_queries(2, k=5):
                remote.execute(q)
            text = remote.metrics_text()
        typed = assert_prometheus(text)
        assert "repro_requests_total" in typed
        assert "repro_worker_scan_latency_seconds" in typed
        # Per-worker histograms are distinguishable by their shard label.
        shards = set(
            re.findall(r'repro_worker_scan_latency_seconds_count\{[^}]*shard="(\d+)"', text)
        )
        assert shards == {"0", "1"}

    def test_worker_stats_visible_from_client_stats(
        self, traced, server, population
    ):
        with connect_remote(server.address) as remote:
            remote.execute(topk_queries(population)[0])
            stats = remote.stats()
        workers = stats["store"]["workers"]
        assert len(workers) == 2
        for doc in workers:
            assert doc["alive"] is True
            assert isinstance(doc["pid"], int)
            assert doc["requests_served"] >= 1
            assert doc["metrics"]["format"] == "repro.metrics"

    def test_trace_export_op(self, traced, server, population):
        with connect_remote(server.address) as remote:
            response = remote.execute(topk_queries(population)[0])
            exported = remote.export_spans()
        mine = [s for s in exported if s["trace_id"] == response.trace_id]
        assert mine
        rebuilt = SpanCollector()
        assert rebuilt.ingest(mine) == len(mine)


# ---------------------------------------------------------------------------- malformed headers degrade, never fail
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=300),
)
garbage = st.one_of(
    json_scalars,
    st.lists(json_scalars, max_size=4),
    st.dictionaries(st.text(max_size=20), json_scalars, max_size=4),
)


class TestMalformedTraceHeaders:
    @given(payload=garbage)
    @settings(max_examples=200, suppress_health_check=[HealthCheck.too_slow])
    def test_context_from_wire_never_raises(self, payload):
        ctx = context_from_wire(payload)
        assert ctx is None or isinstance(ctx, TraceContext)
        if ctx is not None:
            assert 0 < len(ctx.trace_id) <= 128

    @given(
        trace_id=garbage,
        trace_parent=garbage,
    )
    @settings(max_examples=200, suppress_health_check=[HealthCheck.too_slow])
    def test_options_from_wire_degrades_trace_fields(self, trace_id, trace_parent):
        payload = dict(options_to_wire(RequestOptions()) or {})
        payload["trace_id"] = trace_id
        payload["trace_parent"] = trace_parent
        options = options_from_wire(payload)
        assert options is None or options.trace_id is None or (
            isinstance(options.trace_id, str) and len(options.trace_id) <= 128
        )

    def test_round_trip_is_lossless_for_valid_context(self):
        ctx = TraceContext.new()
        assert context_from_wire(context_to_wire(ctx)) == ctx

    def test_oversized_and_unprintable_ids_rejected(self):
        assert context_from_wire({"trace_id": "x" * 129}) is None
        assert context_from_wire({"trace_id": "bad\x00id"}) is None
        assert context_from_wire({"trace_id": ""}) is None


# ---------------------------------------------------------------------------- metrics registry
class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        reg.counter("c_total", kind="a").inc()
        reg.counter("c_total", kind="a").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h_seconds", buckets=(0.1, 1.0)).observe(0.5)
        assert reg.counter("c_total", kind="a").value == 3
        with pytest.raises(ValueError):
            reg.counter("c_total", kind="a").inc(-1)
        with pytest.raises(TypeError):
            reg.gauge("c_total", kind="a")

    def test_merge_sums_and_labels(self):
        worker = MetricsRegistry()
        worker.counter("repro_x_total").inc(5)
        worker.histogram("repro_lat", buckets=(0.1, 1.0)).observe(0.05)
        worker.histogram("repro_lat", buckets=(0.1, 1.0)).observe(5.0)
        parent = MetricsRegistry()
        merged = parent.merge(worker.to_wire(), extra_labels={"shard": "3"})
        assert merged == 2
        assert parent.counter("repro_x_total", shard="3").value == 5
        hist = parent.histogram("repro_lat", buckets=(0.1, 1.0), shard="3")
        assert hist.count == 2 and hist.counts[-1] == 1  # overflow slot
        # Merging again sums (counters are cumulative).
        parent.merge(worker.to_wire(), extra_labels={"shard": "3"})
        assert parent.counter("repro_x_total", shard="3").value == 10

    def test_merge_skips_garbage(self):
        parent = MetricsRegistry()
        assert parent.merge({"series": "nope"}) == 0
        assert parent.merge("garbage") == 0
        assert (
            parent.merge(
                {"series": [{"name": "x", "labels": [], "kind": "alien", "value": 1}]}
            )
            == 0
        )

    def test_incompatible_histogram_shapes_dropped(self):
        hist = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.merge_wire({"buckets": [9.9], "counts": [1, 1], "sum": 1, "count": 2})
        assert hist.count == 1  # shipped shape dropped, not corrupted

    def test_prometheus_render_parses(self):
        reg = MetricsRegistry()
        reg.counter("repro_ops_total", 'with "quotes" and \\slashes', kind="a\nb").inc()
        reg.histogram("repro_lat_seconds", buckets=(0.1, 1.0)).observe(0.2)
        typed = assert_prometheus(reg.render_prometheus())
        assert typed == {"repro_ops_total", "repro_lat_seconds"}
        text = reg.render_prometheus()
        assert 'le="+Inf"' in text
        assert "repro_lat_seconds_sum" in text
        assert "repro_lat_seconds_count" in text


# ---------------------------------------------------------------------------- span collector
class TestSpanCollector:
    @staticmethod
    def _span(i, trace="t1"):
        return Span(trace, f"s{i}", "", "stage", float(i), float(i) + 0.5)

    def test_bounded_with_drop_count(self):
        collector = SpanCollector(capacity=3)
        for i in range(5):
            collector.record(self._span(i))
        assert len(collector) == 3
        assert collector.dropped == 2

    def test_take_removes_one_trace(self):
        collector = SpanCollector()
        collector.record(self._span(1, "a"))
        collector.record(self._span(2, "b"))
        taken = collector.take("a")
        assert [s.span_id for s in taken] == ["s1"]
        assert [s.trace_id for s in collector.snapshot()] == ["b"]

    def test_jsonl_round_trip(self, tmp_path):
        collector = SpanCollector()
        collector.record(Span("t", "s1", "", "stage", 1.0, 2.0, {"k": "v"}))
        path = collector.export_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        span = Span.from_dict(json.loads(lines[0]))
        assert span.duration_s == 1.0 and span.tags == {"k": "v"}

    def test_chrome_export_is_perfetto_shaped(self, tmp_path):
        collector = SpanCollector()
        collector.record(Span("t1", "s1", "", "a", 1.0, 2.0))
        collector.record(Span("t2", "s2", "", "b", 1.5, 2.5))
        document = json.loads(
            collector.export_chrome(tmp_path / "trace.json").read_text()
        )
        events = document["traceEvents"]
        assert [e["ph"] for e in events] == ["X", "X"]
        assert {e["pid"] for e in events} == {1, 2}  # one row per trace
        assert events[0]["dur"] == pytest.approx(1e6)


# ---------------------------------------------------------------------------- slow-query log
class TestSlowQueryLog:
    def test_threshold_gates_emission(self):
        log = SlowQueryLog(0.5)
        log.maybe_record(wall_s=0.1, kind="topk")
        assert log.records() == []
        log.maybe_record(wall_s=0.9, kind="topk")
        assert len(log.records()) == 1

    def test_disabled_log_never_records(self):
        log = SlowQueryLog(None)
        assert not log.enabled
        log.maybe_record(wall_s=100.0, kind="topk")
        assert log.records() == []

    def test_record_schema(self, tmp_path):
        log = SlowQueryLog(0.0, path=tmp_path / "slow.jsonl")
        span = Span("t", "s", "", "shard.scan", 1.0, 2.0, {"shard": 1})
        log.maybe_record(
            wall_s=0.2,
            kind="topk",
            trace_id="t",
            latency_s=0.1,
            complete=False,
            deadline_expired=True,
            attribution={"shards_down": [1]},
            epoch="e1",
            spans=[span],
        )
        (record,) = log.records()
        assert record["trace_id"] == "t"
        assert record["deadline_expired"] is True
        assert record["complete"] is False
        assert record["attribution"] == {"shards_down": [1]}
        assert record["spans"][0]["name"] == "shard.scan"
        assert record["spans"][0]["duration_s"] == 1.0
        # The JSONL sidecar holds the same record.
        line = json.loads((tmp_path / "slow.jsonl").read_text().splitlines()[0])
        assert line["trace_id"] == "t"

    def test_client_emits_slow_record_with_spans(self, traced, population):
        set_slowlog(SlowQueryLog(0.0))  # everything is slow
        spec = DeploymentSpec(topology="sharded", store=CONFIG, shards=2)
        with connect(spec, population) as client:
            response = client.execute(topk_queries(population)[0])
        from repro.obs import get_slowlog

        (record,) = [
            r for r in get_slowlog().records() if r["trace_id"] == response.trace_id
        ]
        assert record["kind"] == "query"
        assert {s["name"] for s in record["spans"]} >= {
            "client.execute",
            "service.engine",
            "shard.scan",
        }


# ---------------------------------------------------------------------------- bench artefact dual-write
class TestBenchTracking:
    def test_writes_root_and_results_mirror(self, tmp_path):
        path = write_bench_json(
            "obs_test", {"metric": 1.5}, {"cfg": True}, directory=tmp_path
        )
        mirror = tmp_path / "benchmarks" / "results" / "BENCH_obs_test.json"
        assert path == tmp_path / "BENCH_obs_test.json"
        assert path.exists() and mirror.exists()
        primary = json.loads(path.read_text())
        assert primary == json.loads(mirror.read_text())
        assert primary["metrics"] == {"metric": 1.5}
        assert "timestamp" in primary
        assert "git_rev" in primary  # None outside a checkout, hash inside

    def test_default_directory_honours_env_override(self, _bench_artefacts_in_tmp):
        # The autouse conftest fixture points REPRO_BENCH_DIR at a tmp dir;
        # a bench entry point that does not pass an explicit directory
        # (i.e. every CLI bench run under pytest) must land there, never in
        # the checkout's cwd where it would clobber committed results.
        path = write_bench_json("obs_env_test", {"metric": 1.0})
        assert path == _bench_artefacts_in_tmp / "BENCH_obs_env_test.json"
        assert path.exists()
        mirror = (
            _bench_artefacts_in_tmp
            / "benchmarks"
            / "results"
            / "BENCH_obs_env_test.json"
        )
        assert mirror.exists()

    def test_explicit_directory_beats_env_override(self, tmp_path):
        path = write_bench_json("obs_dir_test", {"m": 1}, directory=tmp_path)
        assert path == tmp_path / "BENCH_obs_dir_test.json"
