"""Tests for the directory-tree namespace substrate."""

import pytest

from repro.metadata.file_metadata import FileMetadata
from repro.namespace.builder import build_namespace, namespace_statistics
from repro.namespace.tree import DirectoryTree, parent_directories, split_path

from helpers import make_files


def _file(path, **attrs):
    defaults = {
        "size": 100.0, "ctime": 1.0, "mtime": 2.0, "atime": 3.0,
        "read_bytes": 10.0, "write_bytes": 5.0, "access_count": 1.0, "owner": 0.0,
    }
    defaults.update(attrs)
    return FileMetadata(path=path, attributes=defaults)


class TestPathHelpers:
    def test_split_path_absolute(self):
        assert split_path("/a/b/c.txt") == ["a", "b", "c.txt"]

    def test_split_path_relative_and_duplicate_separators(self):
        assert split_path("a//b///c.txt") == ["a", "b", "c.txt"]

    def test_split_path_root(self):
        assert split_path("/") == []

    def test_parent_directories(self):
        assert parent_directories("/a/b/c.txt") == ["/", "/a", "/a/b"]

    def test_parent_directories_top_level_file(self):
        assert parent_directories("/readme.txt") == ["/"]


class TestInsertionAndLookup:
    def test_add_creates_intermediate_directories(self):
        tree = DirectoryTree()
        tree.add_file(_file("/a/b/c/data.bin"))
        assert tree.find_directory("/a") is not None
        assert tree.find_directory("/a/b") is not None
        assert tree.find_directory("/a/b/c") is not None
        assert len(tree) == 1
        assert tree.num_directories == 4  # root + a + b + c

    def test_lookup_existing(self):
        tree = DirectoryTree()
        f = _file("/x/y/file.dat")
        tree.add_file(f)
        assert tree.lookup("/x/y/file.dat") is f

    def test_lookup_missing_file(self):
        tree = DirectoryTree()
        tree.add_file(_file("/x/y/file.dat"))
        assert tree.lookup("/x/y/other.dat") is None

    def test_lookup_missing_directory(self):
        tree = DirectoryTree()
        tree.add_file(_file("/x/y/file.dat"))
        assert tree.lookup("/x/z/file.dat") is None

    def test_lookup_empty_path(self):
        assert DirectoryTree().lookup("/") is None

    def test_reinsert_same_path_replaces(self):
        tree = DirectoryTree()
        tree.add_file(_file("/a/f.dat", size=1.0))
        tree.add_file(_file("/a/f.dat", size=2.0))
        assert len(tree) == 1
        assert tree.lookup("/a/f.dat").attributes["size"] == 2.0

    def test_empty_path_rejected_by_metadata_model(self):
        with pytest.raises(ValueError):
            FileMetadata(path="", attributes={})

    def test_top_level_file(self):
        tree = DirectoryTree()
        tree.add_file(_file("readme.txt"))
        assert tree.lookup("readme.txt") is not None
        assert tree.lookup("/readme.txt") is not None  # leading slash is equivalent

    def test_lookup_with_depth_counts_components(self):
        tree = DirectoryTree()
        tree.add_file(_file("/a/b/c/file.dat"))
        found, touched = tree.lookup_with_depth("/a/b/c/file.dat")
        assert found is not None
        # root + a + b + c (final directory probe)
        assert touched == 4

    def test_lookup_with_depth_missing_stops_early(self):
        tree = DirectoryTree()
        tree.add_file(_file("/a/b/c/file.dat"))
        found, touched = tree.lookup_with_depth("/a/zzz/c/file.dat")
        assert found is None
        assert touched == 3  # root, a, failed probe for zzz


class TestRemoval:
    def test_remove_existing(self):
        tree = DirectoryTree()
        tree.add_file(_file("/a/f.dat"))
        removed = tree.remove_file("/a/f.dat")
        assert removed is not None
        assert len(tree) == 0
        assert tree.lookup("/a/f.dat") is None

    def test_remove_missing_returns_none(self):
        tree = DirectoryTree()
        tree.add_file(_file("/a/f.dat"))
        assert tree.remove_file("/a/missing.dat") is None
        assert tree.remove_file("/b/f.dat") is None
        assert len(tree) == 1

    def test_directories_not_pruned(self):
        tree = DirectoryTree()
        tree.add_file(_file("/a/b/f.dat"))
        tree.remove_file("/a/b/f.dat")
        assert tree.find_directory("/a/b") is not None


class TestTraversal:
    def test_list_directory(self):
        tree = DirectoryTree()
        tree.add_file(_file("/proj/a.dat"))
        tree.add_file(_file("/proj/b.dat"))
        tree.add_file(_file("/proj/sub/c.dat"))
        subdirs, files = tree.list_directory("/proj")
        assert subdirs == ["sub"]
        assert files == ["a.dat", "b.dat"]

    def test_list_missing_directory_raises(self):
        with pytest.raises(KeyError):
            DirectoryTree().list_directory("/nope")

    def test_subtree_files(self):
        tree = DirectoryTree()
        tree.add_file(_file("/p/a.dat"))
        tree.add_file(_file("/p/s/b.dat"))
        tree.add_file(_file("/q/c.dat"))
        assert {f.filename for f in tree.subtree_files("/p")} == {"a.dat", "b.dat"}
        assert tree.subtree_files("/missing") == []

    def test_iter_files_covers_everything(self):
        files = make_files(40)
        tree = DirectoryTree()
        tree.add_files(files)
        assert {f.file_id for f in tree.iter_files()} == {f.file_id for f in files}

    def test_depth_and_fanout(self):
        tree = DirectoryTree()
        tree.add_file(_file("/a/b/c/d/e.dat"))
        assert tree.depth() == 4
        assert DirectoryTree().depth() == 0

    def test_subtree_file_count(self):
        tree = DirectoryTree()
        tree.add_file(_file("/p/a.dat"))
        tree.add_file(_file("/p/s/b.dat"))
        assert tree.find_directory("/p").subtree_file_count() == 2
        assert tree.find_directory("/p").file_count() == 1

    def test_directory_paths_preorder_starts_at_root(self):
        tree = DirectoryTree()
        tree.add_file(_file("/a/f.dat"))
        paths = tree.directory_paths()
        assert paths[0] == "/"
        assert "/a" in paths


class TestBuilderAndStatistics:
    def test_build_namespace_from_files(self):
        files = make_files(60, clusters=4)
        tree = build_namespace(files)
        assert len(tree) == 60
        # make_files puts each cluster under /data/projN
        assert tree.find_directory("/data/proj0") is not None

    def test_build_namespace_from_trace(self):
        from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

        trace = generate_trace(SyntheticTraceConfig(n_files=50, n_requests=100, seed=1))
        tree = build_namespace(trace)
        assert len(tree) == 50

    def test_statistics(self):
        files = make_files(80, clusters=4)
        tree = build_namespace(files)
        stats = namespace_statistics(tree)
        assert stats.num_files == 80
        assert stats.num_directories == tree.num_directories
        assert stats.max_depth >= 2
        assert stats.max_files_per_directory >= stats.mean_files_per_directory
        assert stats.top_level_directories == ("data",)
        d = stats.as_dict()
        assert d["num_files"] == 80

    def test_statistics_empty_tree(self):
        stats = namespace_statistics(DirectoryTree())
        assert stats.num_files == 0
        assert stats.mean_files_per_directory == 0.0
        assert stats.mean_fanout == 0.0
