"""Online elasticity: the reshard controller, live rebalance, and the
balanced-fallback partitioner fix.

The bugfix story this file gates:

* **the bug** — the legacy popularity-weighted cuts concentrate half of
  the CLI-default seed-42 corpus on one shard (a degenerate partition;
  scatter "speedup" ~1.0x).  The balanced fallback caps any shard's
  population share, and the fixed build clears the effective-utilization
  floor the degenerate build failed;
* **the repair** — on a live degenerate router,
  :meth:`~repro.shard.reshard.ReshardController.run_once` rebalances
  (recut / migrate / repack) without stopping the deployment: answers
  are fingerprint-identical across the repair, the composite cache
  epoch's *arity* grows (every cached result stale by construction),
  and the post-repair partition is balanced;
* **the decisions** — unsupported topologies refuse politely, balanced
  partitions skip, ``force=True`` overrides verdicts but never safety
  checks, a performed reshard arms the anti-flapping cooldown, and
  policy bounds (``max_shards``, ``min_split_population``) annotate the
  outcome instead of raising;
* **cursors survive** — a paginated read opened before a forced reshard
  finishes byte-identical to the unpaginated result (placement-
  independent cursors);
* **storm smoke** — reader threads racing a live split + rebalance see
  zero errors and identical answers before and after.
"""

import threading

import numpy as np
import pytest

from repro.api import DeploymentSpec, RequestOptions, connect
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.server import serve_spec
from repro.service import QueryService, ServiceConfig
from repro.service.cache import result_fingerprint
from repro.shard import SemanticShardPartitioner
from repro.shard.benchmarking import _workload
from repro.shard.reshard import FRESH_PLACEMENT, ReshardController, ReshardPolicy
from repro.shard.router import _build_shard_router
from repro.traces.msn import msn_trace
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import RangeQuery

from helpers import make_files

SMALL_CONFIG = SmartStoreConfig(num_units=8, seed=2, search_breadth=64)

# The CLI-default recipe that exhibited the degenerate partition: seed-42
# corpus at scale 0.5 (1250 files), 16 units over 4 shards.
CLI_SEED = 42
CLI_SHARDS = 4
CLI_CONFIG = SmartStoreConfig(num_units=16, seed=CLI_SEED, search_breadth=64)

WIDE_RANGE = RangeQuery(("size",), (0.0,), (1e12,))


@pytest.fixture(scope="module")
def small_files():
    return make_files(160, clusters=4)


@pytest.fixture(scope="module")
def cli_corpus():
    return msn_trace(scale=0.5, seed=CLI_SEED).file_metadata()


@pytest.fixture(scope="module")
def cli_workload(cli_corpus):
    return _workload(cli_corpus, DEFAULT_SCHEMA, 8, CLI_SEED + 1)


def fingerprints(target, queries):
    return [result_fingerprint(target.execute(q)) for q in queries]


# ------------------------------------------------------------------ the bug
class TestBalancedFallback:
    """The partitioner regression: legacy weighted cuts degenerate on the
    CLI-default corpus; the balanced fallback caps the share."""

    def test_legacy_cuts_reproduce_the_degenerate_partition(self, cli_corpus):
        legacy = SemanticShardPartitioner(
            cli_corpus, CLI_SHARDS, seed=CLI_SEED, balance_fallback=False
        )
        counts = np.bincount(legacy.labels, minlength=CLI_SHARDS)
        # Half the corpus on one shard — the partition PR 8's bench
        # flagged (populations [644, 339, 70, 197] on this corpus).
        assert counts.max() / counts.sum() >= 0.5

    def test_balanced_fallback_caps_the_share(self, cli_corpus):
        part = SemanticShardPartitioner(cli_corpus, CLI_SHARDS, seed=CLI_SEED)
        counts = np.bincount(part.labels, minlength=CLI_SHARDS)
        assert counts.min() > 0
        load_cap = min(0.9, 2.0 / CLI_SHARDS)
        assert counts.max() / counts.sum() < load_cap

    def test_cli_default_build_clears_the_utilization_floor(
        self, cli_corpus, cli_workload
    ):
        """The satellite acceptance: seed-42 / 16-unit / 4-shard with the
        fallback on measures > 0.55 effective utilization (the degenerate
        build measured 0.51)."""
        _, complex_mix = cli_workload
        with _build_shard_router(cli_corpus, CLI_SHARDS, CLI_CONFIG) as router:
            for query in complex_mix:
                router.execute(query)
            load = router.load_report()
            assert not load.degenerate
            assert load.busy_utilization > 0.55


# ------------------------------------------------------------------ the repair
class TestDegenerateRebalanceLive:
    """run_once() on a live degenerate router: the whole repair story in
    one pass — verdict, rebalance, equivalence, flush, cooldown."""

    def test_run_once_repairs_the_degenerate_partition(
        self, cli_corpus, cli_workload
    ):
        points, complex_mix = cli_workload
        queries = list(points) + list(complex_mix)
        with _build_shard_router(
            cli_corpus, CLI_SHARDS, CLI_CONFIG, balance_fallback=False
        ) as router:
            # The bug is live: the legacy build is degenerate by
            # population share alone (no traffic needed for the verdict).
            before = router.load_report()
            assert before.degenerate
            assert before.population_share >= 0.5

            reference = fingerprints(router, queries)
            arity_before = len(router.versioning.change_clock)
            epoch_before = router.versioning.change_clock

            controller = ReshardController(router)
            outcome = controller.run_once()  # unforced: the real verdict
            assert outcome.performed
            assert outcome.action == "rebalance"
            assert outcome.moved > 0
            assert outcome.repacked == CLI_SHARDS
            assert controller.rebalances == 1

            # Same shard count, balanced placement, identical answers.
            after = router.load_report()
            assert after.shards == CLI_SHARDS
            assert not after.degenerate
            assert after.population_share < before.population_share
            assert sum(after.populations) == sum(before.populations)
            assert fingerprints(router, queries) == reference

            # Repack re-registers every store: the composite epoch's
            # arity grows, so no pre-rebalance epoch compares equal.
            assert len(router.versioning.change_clock) > arity_before
            assert router.versioning.change_clock != epoch_before

            # The performed action armed the cooldown (anti-flapping):
            # the next pass sits out instead of judging the thin
            # post-reset busy sample, and the one after sees balance.
            _, reason = controller.evaluate()
            assert reason == "cooling down after a recent reshard"
            _, reason = controller.evaluate()
            assert reason == "partition is balanced"

            # The repaired topology clears the utilization floor the
            # degenerate build failed.
            for query in complex_mix:
                router.execute(query)
            assert router.load_report().busy_utilization > 0.55


# ------------------------------------------------------------------ decisions
class TestControllerDecisions:
    def test_hash_partitioner_is_unsupported_even_forced(self, small_files):
        with _build_shard_router(
            small_files, 2, SMALL_CONFIG, partitioner="hash"
        ) as router:
            controller = ReshardController(router)
            outcome = controller.run_once()
            assert not outcome.performed
            assert outcome.action == "none"
            assert "does not support" in outcome.reason
            # force overrides verdicts, never support checks.
            forced = controller.run_once(force=True)
            assert not forced.performed
            assert forced.reason == outcome.reason
            assert controller.skipped == 2

    def test_balanced_partition_skips(self, small_files):
        with _build_shard_router(small_files, 2, SMALL_CONFIG) as router:
            controller = ReshardController(router)
            outcome = controller.run_once()
            assert not outcome.performed
            assert outcome.reason == "partition is balanced"
            assert outcome.action == "none"
            assert outcome.load["populations"] == router.load_report().populations

    def test_forced_pass_on_fresh_placement_splits(self, small_files):
        """A freshly built balanced router already matches its own fresh
        quantiles, so the forced pass falls through the rebalance to the
        split path and grows the topology — answers unchanged."""
        generator = QueryWorkloadGenerator(small_files, DEFAULT_SCHEMA, seed=11)
        queries = generator.range_queries(4, distribution="zipf") + (
            generator.topk_queries(4, k=6, distribution="zipf")
        )
        with _build_shard_router(small_files, 2, SMALL_CONFIG) as router:
            reference = fingerprints(router, queries)
            controller = ReshardController(router)
            outcome = controller.run_once(force=True)
            assert outcome.performed
            assert outcome.action == "split"
            assert router.num_shards == 3
            assert len(router.versioning.change_clock) == 3
            assert fingerprints(router, queries) == reference
            # Union population is preserved; the moved files left the
            # source shard (disjoint populations after the handoff).
            load = router.load_report()
            assert sum(load.populations) == len(small_files)
            assert min(load.populations) > 0

    def test_cooldown_is_consumed_then_cleared(self, small_files):
        with _build_shard_router(small_files, 2, SMALL_CONFIG) as router:
            controller = ReshardController(router)
            assert controller.run_once(force=True).performed
            _, reason = controller.evaluate()
            assert reason == "cooling down after a recent reshard"
            _, reason = controller.evaluate()
            assert reason != "cooling down after a recent reshard"

    def test_force_overrides_cooldown(self, small_files):
        with _build_shard_router(small_files, 2, SMALL_CONFIG) as router:
            controller = ReshardController(
                router, ReshardPolicy(cooldown_evaluations=5)
            )
            assert controller.run_once(force=True).performed
            # Unforced passes sit out the cooldown...
            assert not controller.run_once().performed
            # ...but force is explicitly allowed through it.
            forced = controller.run_once(force=True)
            assert "cooling down" not in forced.reason

    def test_max_shards_refusal_annotates_the_outcome(self, small_files):
        with _build_shard_router(small_files, 2, SMALL_CONFIG) as router:
            controller = ReshardController(router, ReshardPolicy(max_shards=2))
            outcome = controller.run_once(force=True)
            assert not outcome.performed
            assert outcome.reason.startswith(FRESH_PLACEMENT)
            assert "max_shards=2" in outcome.reason
            assert router.num_shards == 2

    def test_min_split_population_refusal(self, small_files):
        with _build_shard_router(small_files, 2, SMALL_CONFIG) as router:
            controller = ReshardController(
                router, ReshardPolicy(min_split_population=10_000)
            )
            outcome = controller.run_once(force=True)
            assert not outcome.performed
            assert "min_split_population" in outcome.reason
            assert router.num_shards == 2

    def test_split_of_unknown_shard_refuses(self, small_files):
        with _build_shard_router(small_files, 2, SMALL_CONFIG) as router:
            controller = ReshardController(router)
            outcome = controller.split(99)
            assert not outcome.performed
            assert "no shard 99" in outcome.reason
            assert outcome.action == "split"


# ------------------------------------------------------------------ cache epochs
class TestEpochArityFlush:
    """Satellite regression alongside tests/test_service_cache.py: a
    shard-count change is a global cache flush *by construction* — the
    composite epoch tuple grows arity, so no stale entry can ever hit."""

    def test_split_grows_epoch_arity_and_flushes_service_cache(
        self, small_files
    ):
        generator = QueryWorkloadGenerator(small_files, DEFAULT_SCHEMA, seed=13)
        queries = generator.range_queries(4, distribution="zipf") + (
            generator.topk_queries(4, k=6, distribution="zipf")
        )
        with _build_shard_router(small_files, 2, SMALL_CONFIG) as router:
            with QueryService(
                router, ServiceConfig(max_workers=3, batch_window=6, seed=9)
            ) as service:
                reference = [
                    result_fingerprint(r)
                    for r in service.execute_many(list(queries))
                ]
                # Warm cache: the re-run hits.
                service.execute_many(list(queries))
                assert service.cache.stats.hits > 0
                epoch_before = router.versioning.change_clock

                outcome = ReshardController(router).run_once(force=True)
                assert outcome.performed

                assert len(router.versioning.change_clock) > len(epoch_before)
                assert router.versioning.change_clock != epoch_before
                results = service.execute_many(list(queries))
                assert [result_fingerprint(r) for r in results] == reference
                assert service.cache.stats.invalidations >= 1


# ------------------------------------------------------------------ cursors
class TestCursorsSurviveReshard:
    """Satellite: a page stream opened before the reshard concatenates to
    the unpaginated result — cursors are placement-independent."""

    @staticmethod
    def _pages_payload(pages):
        files = [f for p in pages for f in p.page.files]
        distances = [d for p in pages for d in p.page.distances]
        return files, distances

    def test_pages_concatenate_identically_across_forced_reshard(
        self, small_files, tmp_path
    ):
        spec = DeploymentSpec(
            topology="sharded",
            store=SmartStoreConfig(num_units=6, seed=3, search_breadth=64),
            shards=2,
        )
        client = connect(spec, small_files)
        try:
            reference = result_fingerprint(client.execute(WIDE_RANGE).result)

            first = client.execute(WIDE_RANGE, RequestOptions(page_size=13))
            pages = [first]
            outcome = client.reshard(force=True)
            assert outcome["performed"]
            cursor = first.cursor
            while cursor is not None:
                page = client.execute(
                    WIDE_RANGE, RequestOptions(cursor=cursor)
                )
                pages.append(page)
                cursor = page.cursor
            assert len(pages) > 2
            files, distances = self._pages_payload(pages)
            from repro.cluster.metrics import Metrics
            from repro.core.queries import QueryResult

            got = result_fingerprint(
                QueryResult(
                    files=list(files),
                    metrics=Metrics(),
                    latency=0.0,
                    groups_visited=1,
                    hops=0,
                    found=bool(files),
                    distances=list(distances),
                )
            )
            assert got == reference
            # A stream opened *after* the reshard answers identically too.
            post = list(client.pages(WIDE_RANGE, page_size=13))
            files, distances = self._pages_payload(post)
            got = result_fingerprint(
                QueryResult(
                    files=list(files),
                    metrics=Metrics(),
                    latency=0.0,
                    groups_visited=1,
                    hops=0,
                    found=bool(files),
                    distances=list(distances),
                )
            )
            assert got == reference
        finally:
            client.close()


# ------------------------------------------------------------------ API surface
class TestReshardSurface:
    def test_plain_topology_reports_advisory_refusal(self, small_files):
        spec = DeploymentSpec(
            topology="plain",
            store=SmartStoreConfig(num_units=6, seed=3, search_breadth=64),
        )
        client = connect(spec, small_files)
        try:
            outcome = client.reshard()
            assert outcome["performed"] is False
            assert outcome["action"] == "none"
            assert "plain" in outcome["reason"]
        finally:
            client.close()

    def test_remote_reshard_op_round_trips(self, small_files):
        spec = DeploymentSpec(
            topology="sharded",
            store=SmartStoreConfig(num_units=6, seed=3, search_breadth=64),
            shards=2,
        )
        server = serve_spec(spec, small_files)
        try:
            remote = connect(server.address)
            try:
                reference = result_fingerprint(
                    remote.execute(WIDE_RANGE).result
                )
                outcome = remote.reshard(force=True)
                assert outcome["performed"] is True
                assert outcome["action"] in ("split", "rebalance")
                after = result_fingerprint(remote.execute(WIDE_RANGE).result)
                assert after == reference
            finally:
                remote.close()
        finally:
            server.close()


# ------------------------------------------------------------------ storm smoke
class TestStormSmoke:
    """Readers racing a live split and rebalance: zero errors, identical
    answers, population preserved (the drain-inside-exclusive contract)."""

    def test_readers_race_split_and_rebalance(self, small_files):
        generator = QueryWorkloadGenerator(small_files, DEFAULT_SCHEMA, seed=19)
        queries = generator.range_queries(4, distribution="zipf") + (
            generator.topk_queries(4, k=6, distribution="zipf")
        )
        with _build_shard_router(small_files, 2, SMALL_CONFIG) as router:
            reference = fingerprints(router, queries)
            controller = ReshardController(router)
            errors = []
            stop = threading.Event()

            def reader():
                while not stop.is_set():
                    try:
                        for query in queries:
                            router.execute(query)
                    except Exception as exc:  # noqa: BLE001 - the assertion
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=reader) for _ in range(4)]
            for t in threads:
                t.start()
            try:
                load = router.load_report()
                hot = load.hottest_shard()
                assert controller.split(hot if hot is not None else 0).performed
                controller.rebalance()  # may be FRESH_PLACEMENT; must not race
            finally:
                stop.set()
                for t in threads:
                    t.join(timeout=30.0)
            assert not errors, f"reader hit {errors[0]!r}"
            assert fingerprints(router, queries) == reference
            assert sum(router.load_report().populations) == len(small_files)
