"""Tests for versioning-based consistency."""

import pytest

from repro.cluster.metrics import Metrics
from repro.core.versioning import (
    Version,
    VersionChain,
    VersionedChange,
    VersioningManager,
)
from repro.metadata.file_metadata import FileMetadata


def f(path, **attrs):
    return FileMetadata(path=path, attributes={"size": 1.0, **attrs})


def insert(path, unit=0):
    return VersionedChange(kind="insert", file=f(path), unit_id=unit)


def delete(path, unit=0):
    return VersionedChange(kind="delete", file=f(path), unit_id=unit)


class TestVersionedChange:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            VersionedChange(kind="rename", file=f("/a"), unit_id=0)


class TestVersionChain:
    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            VersionChain(0, version_ratio=0)

    def test_comprehensive_versioning_seals_every_change(self):
        chain = VersionChain(0, version_ratio=1)
        for i in range(5):
            chain.record(insert(f"/f{i}"))
        assert len(chain) == 5
        assert all(v.sealed for v in chain.versions)

    def test_aggregated_versioning_batches_changes(self):
        chain = VersionChain(0, version_ratio=4)
        for i in range(10):
            chain.record(insert(f"/f{i}"))
        assert len(chain) == 3          # 4 + 4 + 2 (open)
        assert chain.total_changes() == 10
        assert not chain.versions[-1].sealed

    def test_higher_ratio_means_fewer_versions(self):
        chains = {}
        for ratio in (1, 5, 20):
            chain = VersionChain(0, version_ratio=ratio)
            for i in range(40):
                chain.record(insert(f"/f{i}"))
            chains[ratio] = len(chain)
        assert chains[1] > chains[5] > chains[20]

    def test_pending_files_nets_out_deletions(self):
        chain = VersionChain(0)
        chain.record(insert("/a"))
        chain.record(insert("/b"))
        chain.record(delete("/a"))
        pending = chain.pending_files()
        assert {p.path for p in pending} == {"/b"}
        assert chain.deleted_file_ids() == [f("/a").file_id]

    def test_pending_files_reflects_latest_modification(self):
        chain = VersionChain(0)
        chain.record(VersionedChange("insert", f("/a", size=1.0), 0))
        chain.record(VersionedChange("modify", f("/a", size=99.0), 0))
        pending = chain.pending_files()
        assert len(pending) == 1
        assert pending[0].attributes["size"] == 99.0

    def test_rolling_backwards_order(self):
        chain = VersionChain(0, version_ratio=2)
        for i in range(4):
            chain.record(insert(f"/f{i}"))
        backwards = [c.file.path for c in chain.iter_backwards()]
        assert backwards == ["/f3", "/f2", "/f1", "/f0"]

    def test_pending_files_charges_scans(self):
        chain = VersionChain(0)
        for i in range(7):
            chain.record(insert(f"/f{i}"))
        metrics = Metrics()
        chain.pending_files(metrics)
        assert metrics.memory_records_scanned == 7

    def test_size_bytes_grows_with_changes(self):
        chain = VersionChain(0)
        sizes = []
        for i in range(5):
            chain.record(insert(f"/f{i}"))
            sizes.append(chain.size_bytes())
        assert sizes == sorted(sizes)
        assert sizes[0] > 0

    def test_comprehensive_versioning_uses_more_space_than_aggregated(self):
        a = VersionChain(0, version_ratio=1)
        b = VersionChain(1, version_ratio=10)
        for i in range(50):
            a.record(insert(f"/f{i}"))
            b.record(insert(f"/f{i}"))
        assert a.size_bytes() > b.size_bytes()

    def test_clear_returns_changes(self):
        chain = VersionChain(0)
        chain.record(insert("/a"))
        chain.record(insert("/b"))
        applied = chain.clear()
        assert len(applied) == 2
        assert chain.total_changes() == 0
        assert chain.pending_files() == []


class TestVersioningManager:
    def test_chain_created_on_demand(self):
        mgr = VersioningManager()
        chain = mgr.chain_for(5)
        assert chain.group_id == 5
        assert mgr.chain_for(5) is chain

    def test_record_and_pending(self):
        mgr = VersioningManager()
        mgr.record(1, insert("/a"))
        mgr.record(2, insert("/b"))
        assert {p.path for p in mgr.pending_files(1)} == {"/a"}
        assert mgr.pending_files(99) == []
        assert mgr.total_changes() == 2

    def test_space_per_group(self):
        mgr = VersioningManager()
        for i in range(10):
            mgr.record(1, insert(f"/f{i}"))
        mgr.record(2, insert("/x"))
        space = mgr.space_bytes_per_group()
        assert space[1] > space[2] > 0

    def test_clear_all(self):
        mgr = VersioningManager()
        mgr.record(1, insert("/a"))
        applied = mgr.clear_all()
        assert len(applied[1]) == 1
        assert mgr.total_changes() == 0

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            VersioningManager(version_ratio=0)
