"""Fault-injection tests: ship-point crashes, catch-up crashes, breakers.

Covers the failure scenarios the replication layer exists for:

* primary crash **before** the WAL segment ships (the write is not acked;
  the retry lands on the promoted replica and nothing acked is lost);
* primary crash **after** the segment ships (the retry double-applies,
  which the applied-seq watermark and record-level idempotence absorb);
* replica crash **during catch-up** (promotion falls back to the
  next-freshest live replica);
* circuit breaker open → half-open → closed transitions, deterministic in
  selection counts;
* pause / resume and slow-replica faults;
* the real-deployment failover drill in :mod:`repro.cluster.failures`.
"""

import pytest

from repro.analysis.lockorder import witness_locks
from repro.cluster.failures import run_failover_drill
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.metadata.file_metadata import FileMetadata
from repro.replication import (
    BreakerPolicy,
    FaultInjector,
    GroupUnavailableError,
    ReplicationConfig,
    build_replica_group,
)
from repro.replication.health import CLOSED, HALF_OPEN, OPEN, HealthTracker
from repro.service.cache import result_fingerprint
from repro.shard.router import build_shard_router
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery

from helpers import make_files

CONFIG = SmartStoreConfig(num_units=6, seed=2, search_breadth=64)


@pytest.fixture(scope="module")
def files():
    return make_files(90, clusters=3)


@pytest.fixture(autouse=True)
def _lock_order_witness():
    """Every kill-the-primary drill doubles as a deadlock hunt: all locks
    the replication stack creates during the test are witnessed, and any
    acquisition-order cycle or blocking-I/O-under-a-fine-grained-lock
    fails the test."""
    with witness_locks() as witness:
        yield witness
    witness.assert_clean()


@pytest.fixture()
def group(files):
    group = build_replica_group(
        files, CONFIG, replication=ReplicationConfig(replicas=2, max_lag=8)
    )
    yield group
    group.close()


def fresh_file(files, name, template=0):
    return FileMetadata(
        path=f"/ingest/{name}", attributes=dict(files[template].attributes)
    )


class TestPrimaryCrashAroundShipping:
    def test_crash_before_ship_loses_nothing_acked(self, group, files):
        injector = FaultInjector(group)
        injector.fail_primary_at(0, "before_ship")
        new = fresh_file(files, "before-ship.dat")
        receipt = group.insert(new)  # retried transparently on the new primary
        assert receipt is not None
        assert group.failovers == 1
        assert group.members[0].crashed
        # The acked write is visible and consistent on every live member
        # once the shipped log is pumped (anti-entropy repairs nothing —
        # the un-acked phantom died with the old primary).
        assert group.execute(PointQuery("before-ship.dat")).found
        assert group.anti_entropy() == {"checked": 1, "repaired": 0}
        live = [p for p in group.fingerprints() if p is not None]
        assert len(live) == 2 and len(set(live)) == 1

    def test_crash_after_ship_is_idempotent(self, group, files):
        injector = FaultInjector(group)
        injector.fail_primary_at(0, "after_ship")
        new = fresh_file(files, "after-ship.dat")
        group.insert(new)
        assert group.failovers == 1
        # The record shipped once and was retried once; the duplicate
        # nets out to a single visible copy everywhere.
        result = group.execute(PointQuery("after-ship.dat"))
        assert result.found and len(result.files) == 1
        assert group.anti_entropy()["repaired"] == 0
        live = [p for p in group.fingerprints() if p is not None]
        assert len(set(live)) == 1

    def test_before_ship_retry_rejoins_without_rebuild(self, group, files):
        injector = FaultInjector(group)
        injector.fail_primary_at(0, "before_ship")
        group.insert(fresh_file(files, "diverge.dat"))
        # The ex-primary staged a phantom seq, but the retried twin is
        # content-identical, so reintegration converges without a rebuild.
        injector.recover(0, 0)
        assert not group.members[0].crashed
        assert group.resyncs == 0
        assert group.anti_entropy()["repaired"] == 0
        assert len(set(group.fingerprints())) == 1

    def test_truly_diverged_ex_primary_is_rebuilt_on_rejoin(self, group, files):
        from repro.ingest.wal import WALRecord

        injector = FaultInjector(group)
        injector.crash_primary(0)
        # The group promotes and hands seq 1 to a different record...
        group.insert(fresh_file(files, "promoted.dat"))
        assert group.failovers == 1
        # ...while the dead ex-primary holds a phantom under the same seq
        # (what a crash after logging but before shipping leaves behind).
        group.members[0].pipeline.apply_replicated(
            WALRecord(seq=1, kind="insert", file=fresh_file(files, "phantom.dat"))
        )
        injector.recover(0, 0)
        # Catch-up alone cannot fix it (the seq watermark skips the twin),
        # so reintegration rebuilds the diverged copy outright.
        assert group.resyncs == 1
        assert group.anti_entropy()["repaired"] == 0
        assert len(set(group.fingerprints())) == 1


class TestReplicaCrashDuringCatchUp:
    def test_promotion_falls_back_to_next_freshest(self, files):
        group = build_replica_group(
            files, CONFIG, replication=ReplicationConfig(replicas=2, max_lag=64)
        )
        try:
            generator = QueryWorkloadGenerator(files, seed=29)
            stream = generator.mutation_stream(6, 2, 2)
            for kind, file in stream:
                getattr(group, kind)(file)
            injector = FaultInjector(group)
            # Replica 1 is freshest on paper but dies after applying two
            # more records of its shipped log; replica 2 must take over.
            injector.crash_after_applies(0, 1, 2)
            injector.crash_primary(0)
            receipt = group.insert(fresh_file(files, "fallback.dat"))
            assert receipt is not None
            assert group.primary_id == 2
            assert group.members[1].crashed
            assert group.failovers == 1
            assert group.execute(PointQuery("fallback.dat")).found
        finally:
            group.close()

    def test_replica_crash_mid_pump_then_recovery(self, files):
        # Tight lag window: the write path itself pumps the replica, so
        # the armed crash fires mid catch-up, not at promotion time.
        group = build_replica_group(
            files, CONFIG, replication=ReplicationConfig(replicas=1, max_lag=2)
        )
        try:
            generator = QueryWorkloadGenerator(files, seed=31)
            stream = generator.mutation_stream(5, 2, 1)
            injector = FaultInjector(group)
            injector.crash_after_applies(0, 1, 3)
            for kind, file in stream:
                getattr(group, kind)(file)
            # The replica died three records into its catch-up...
            assert group.members[1].crashed
            assert group.members[1].applied_seq == 3
            # ...and recovery replays the rest of its queued log.
            injector.recover(0, 1)
            assert group.members[1].applied_seq == group.primary.applied_seq
            assert len(set(group.fingerprints())) == 1
        finally:
            group.close()


class TestCircuitBreaker:
    def test_open_half_open_close_transitions(self):
        tracker = HealthTracker(BreakerPolicy(failure_threshold=2, probe_after=3))
        assert tracker.state == CLOSED
        tracker.record_failure()
        assert tracker.state == CLOSED  # one failure is not enough
        tracker.record_failure()
        assert tracker.state == OPEN
        # Open: refuse probe_after - 1 selections, then admit one probe.
        assert not tracker.available()
        assert not tracker.available()
        assert tracker.available()
        assert tracker.state == HALF_OPEN
        tracker.record_success()
        assert tracker.state == CLOSED
        assert tracker.opens == 1 and tracker.probes == 1

    def test_failed_probe_reopens(self):
        tracker = HealthTracker(BreakerPolicy(failure_threshold=1, probe_after=2))
        tracker.record_failure()
        assert tracker.state == OPEN
        assert not tracker.available()
        assert tracker.available()  # the half-open probe
        tracker.record_failure()
        assert tracker.state == OPEN  # probe failed: back to open
        assert not tracker.available()
        assert tracker.available()
        tracker.record_success()
        assert tracker.state == CLOSED

    def test_breaker_shields_crashed_replica_from_reads(self, files):
        group = build_replica_group(
            files,
            CONFIG,
            replication=ReplicationConfig(
                replicas=2, breaker=BreakerPolicy(failure_threshold=2, probe_after=4)
            ),
        )
        try:
            injector = FaultInjector(group)
            injector.crash(0, 1)
            query = PointQuery(files[0].filename)
            for _ in range(12):
                assert group.execute(query).found
            crashed = group.members[1]
            assert crashed.tracker.state in (OPEN, HALF_OPEN)
            # Once open, the breaker absorbs selections without the read
            # path paying a failed probe each time: failures stop at the
            # threshold plus the occasional half-open probe.
            assert crashed.tracker.failures < 12
            assert group.degraded_reads > 0
            # Recovery closes the breaker and the member serves again.
            injector.recover(0, 1)
            assert crashed.tracker.state == CLOSED
            for _ in range(3):
                assert group.execute(query).found
        finally:
            group.close()


class TestPauseAndSlow:
    def test_paused_replica_queues_and_catches_up(self, group, files):
        injector = FaultInjector(group)
        injector.pause(0, 2)
        generator = QueryWorkloadGenerator(files, seed=37)
        for kind, file in generator.mutation_stream(4, 1, 1):
            getattr(group, kind)(file)
        paused = group.members[2]
        assert paused.applied_seq == 0 and paused.lag() == 6
        injector.resume(0, 2)
        assert paused.applied_seq == 6 and paused.lag() == 0
        assert group.anti_entropy()["repaired"] == 0
        assert len(set(group.fingerprints())) == 1

    def test_paused_replica_does_not_fail_reads(self, group, files):
        FaultInjector(group).pause(0, 1)
        query = PointQuery(files[2].filename)
        for _ in range(6):
            assert group.execute(query).found
        assert group.degraded_reads > 0

    def test_slow_replica_is_correct_just_slow(self, group, baseline_query=None):
        FaultInjector(group).slow(0, 1, 0.001)
        query = PointQuery("/data/proj0/file0000.dat".rsplit("/", 1)[-1])
        results = {result_fingerprint(group.execute(query)) for _ in range(4)}
        assert len(results) == 1  # slowness never changes an answer

    def test_active_faults_listing(self, group):
        injector = FaultInjector(group)
        injector.crash(0, 1)
        injector.slow(0, 2, 0.01)
        faults = injector.active_faults()
        assert faults["crashed"] == ["g0/r1"]
        assert faults["slow"] == ["g0/r2"]
        injector.clear_all()
        faults = injector.active_faults()
        assert not faults["crashed"] and not faults["slow"]


class TestFailoverDrill:
    def test_drill_over_replicated_router(self, files):
        router = build_shard_router(
            files, 2, CONFIG, replication=ReplicationConfig(replicas=2)
        )
        try:
            generator = QueryWorkloadGenerator(files, seed=43)
            queries = (
                generator.point_queries(4, existing_fraction=0.75)
                + generator.range_queries(4)
                + generator.topk_queries(4, k=5)
            )
            report = run_failover_drill(router, queries)
            assert report.groups == 2 and report.primaries_killed == 2
            assert report.failed_requests == 0
            assert report.identical
            assert report.degraded_reads > 0
            # The drill recovers the crashed primaries before returning.
            assert all(
                not m.crashed for g in router.replica_groups() for m in g.members
            )
        finally:
            router.close()

    def test_drill_over_bare_group(self, files):
        group = build_replica_group(
            files, CONFIG, replication=ReplicationConfig(replicas=1)
        )
        try:
            generator = QueryWorkloadGenerator(files, seed=47)
            queries = generator.point_queries(6, existing_fraction=0.8)
            report = run_failover_drill(group, queries)
            assert report.failed_requests == 0 and report.identical
        finally:
            group.close()
