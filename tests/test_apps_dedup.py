"""Tests for the de-duplication candidate detector."""

import pytest

from repro.apps.dedup import DedupDetector
from repro.core.smartstore import SmartStore, SmartStoreConfig

from helpers import make_files


@pytest.fixture(scope="module")
def population_with_duplicates():
    files = make_files(80, clusters=4)
    return DedupDetector.inject_duplicates(files, fraction=0.1, seed=3)


class TestInjection:
    def test_duplicate_count(self):
        files = make_files(50)
        out = DedupDetector.inject_duplicates(files, fraction=0.2, seed=1)
        assert len(out) == 60

    def test_duplicates_share_fingerprint_and_attributes(self):
        out = DedupDetector.inject_duplicates(make_files(30), fraction=0.5, seed=2)
        originals = {f.path: f for f in out if not f.path.endswith(".copy")}
        copies = [f for f in out if f.path.endswith(".copy")]
        assert copies
        for copy in copies:
            source = originals[copy.path[: -len(".copy")]]
            assert copy.attributes == source.attributes
            assert copy.extra["fingerprint"] == source.extra["fingerprint"]

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            DedupDetector.inject_duplicates(make_files(10), fraction=1.5)


class TestBruteForce:
    def test_finds_injected_duplicates(self, population_with_duplicates):
        detector = DedupDetector(attributes=("size", "ctime"), tolerance=1e-9)
        report = detector.brute_force(population_with_duplicates)
        assert report.num_candidates >= 8  # one pair per injected duplicate
        assert report.comparisons == len(population_with_duplicates) * (len(population_with_duplicates) - 1) // 2

    def test_tolerance_zero_requires_exact_match(self):
        files = make_files(40)
        detector = DedupDetector(attributes=("size",), tolerance=0.0)
        report = detector.brute_force(files)
        # Random sizes: exact collisions are essentially impossible.
        assert report.num_candidates == 0

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            DedupDetector(attributes=())
        with pytest.raises(ValueError):
            DedupDetector(tolerance=-1.0)


class TestWithSmartStore:
    def test_group_restricted_scan_finds_duplicates_cheaper(self, population_with_duplicates):
        store = SmartStore.build(
            population_with_duplicates, SmartStoreConfig(num_units=8, seed=0)
        )
        detector = DedupDetector(attributes=("size", "ctime"), tolerance=1e-9)
        brute = detector.brute_force(population_with_duplicates)
        smart = detector.with_smartstore(store)
        # Far fewer comparisons...
        assert smart.comparisons < 0.6 * brute.comparisons
        # ...while recovering the overwhelming majority of candidate pairs.
        assert smart.num_candidates >= 0.8 * brute.num_candidates
        assert smart.groups_examined >= 1

    def test_precision_computed_when_fingerprints_present(self, population_with_duplicates):
        store = SmartStore.build(
            population_with_duplicates, SmartStoreConfig(num_units=8, seed=0)
        )
        detector = DedupDetector(attributes=("size", "ctime"), tolerance=1e-9)
        report = detector.with_smartstore(store)
        assert report.true_duplicate_pairs is not None
        assert report.precision is None or 0.0 <= report.precision <= 1.0

    def test_precision_none_without_fingerprints(self):
        files = make_files(30)
        detector = DedupDetector()
        report = detector.brute_force(files)
        assert report.true_duplicate_pairs is None
        assert report.precision is None
