"""Tests for the attribute-matrix helpers."""

import numpy as np
import pytest

from repro.metadata.attributes import AttributeSchema, AttributeSpec, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.metadata.matrix import (
    attribute_bounds,
    attribute_matrix,
    centroid,
    log_transform,
    normalize_matrix,
)


def files_from_rows(rows):
    files = []
    for i, row in enumerate(rows):
        attrs = dict(zip(DEFAULT_SCHEMA.names, row))
        files.append(FileMetadata(path=f"/f{i}", attributes=attrs))
    return files


class TestAttributeMatrix:
    def test_shape_and_values(self):
        rows = [[float(i + j) for j in range(DEFAULT_SCHEMA.dimension)] for i in range(5)]
        files = files_from_rows(rows)
        m = attribute_matrix(files, DEFAULT_SCHEMA)
        assert m.shape == (5, DEFAULT_SCHEMA.dimension)
        assert np.allclose(m, rows)

    def test_missing_attribute_raises(self):
        f = FileMetadata(path="/x", attributes={"size": 1})
        with pytest.raises(KeyError):
            attribute_matrix([f], DEFAULT_SCHEMA)

    def test_empty_population(self):
        m = attribute_matrix([], DEFAULT_SCHEMA)
        assert m.shape == (0, DEFAULT_SCHEMA.dimension)


class TestLogTransform:
    def test_only_log_columns_change(self):
        rows = [[10.0] * DEFAULT_SCHEMA.dimension for _ in range(3)]
        m = np.array(rows)
        out = log_transform(m, DEFAULT_SCHEMA)
        mask = np.array(DEFAULT_SCHEMA.log_scale_mask())
        assert np.allclose(out[:, ~mask], 10.0)
        assert np.allclose(out[:, mask], np.log1p(10.0))

    def test_input_not_modified(self):
        m = np.full((2, DEFAULT_SCHEMA.dimension), 5.0)
        before = m.copy()
        log_transform(m, DEFAULT_SCHEMA)
        assert np.array_equal(m, before)

    def test_negative_values_rejected(self):
        m = np.full((1, DEFAULT_SCHEMA.dimension), -1.0)
        with pytest.raises(ValueError):
            log_transform(m, DEFAULT_SCHEMA)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            log_transform(np.zeros((2, 3)), DEFAULT_SCHEMA)

    def test_no_log_columns_is_copy(self):
        schema = AttributeSchema((AttributeSpec("a"), AttributeSpec("b")))
        m = np.array([[1.0, 2.0]])
        out = log_transform(m, schema)
        assert np.array_equal(out, m)
        assert out is not m


class TestNormalizeMatrix:
    def test_output_in_unit_range(self):
        m = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        out, lower, upper = normalize_matrix(m)
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert np.allclose(lower, [0, 10])
        assert np.allclose(upper, [10, 30])

    def test_degenerate_column_maps_to_half(self):
        m = np.array([[5.0, 1.0], [5.0, 2.0]])
        out, _, _ = normalize_matrix(m)
        assert np.allclose(out[:, 0], 0.5)

    def test_explicit_bounds_reused(self):
        m = np.array([[0.0], [10.0]])
        _, lower, upper = normalize_matrix(m)
        out2, _, _ = normalize_matrix(np.array([[5.0]]), lower, upper)
        assert np.allclose(out2, [[0.5]])

    def test_values_outside_bounds_clipped(self):
        out, _, _ = normalize_matrix(np.array([[20.0]]), lower=np.array([0.0]), upper=np.array([10.0]))
        assert out[0, 0] == 1.0

    def test_single_row_input(self):
        out, lower, upper = normalize_matrix(np.array([1.0, 2.0, 3.0]))
        assert out.shape == (1, 3)


class TestBoundsAndCentroid:
    def test_bounds(self):
        m = np.array([[1.0, 5.0], [3.0, 2.0]])
        lo, hi = attribute_bounds(m)
        assert np.allclose(lo, [1, 2])
        assert np.allclose(hi, [3, 5])

    def test_bounds_empty_raises(self):
        with pytest.raises(ValueError):
            attribute_bounds(np.empty((0, 2)))

    def test_centroid(self):
        m = np.array([[0.0, 2.0], [2.0, 4.0]])
        assert np.allclose(centroid(m), [1.0, 3.0])

    def test_centroid_single_vector(self):
        assert np.allclose(centroid(np.array([1.0, 2.0])), [1.0, 2.0])

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid(np.empty((0, 3)))
