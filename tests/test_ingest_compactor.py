"""Direct tests for Compactor hot-group splitting + topology refresh.

Splitting was previously exercised only indirectly (through service-level
equivalence suites); these tests pin its contract down: a group whose file
count outgrows the policy's ``hot_group_factor`` is split into two
semantically coherent halves during compaction, the query engine's
topology map and the off-line replicas are refreshed to match, and the
logical population — and every query answer — is unchanged.
"""

import pytest

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.ingest.compactor import CompactionPolicy
from repro.ingest.pipeline import IngestPipeline
from repro.metadata.file_metadata import FileMetadata
from repro.service.cache import result_fingerprint
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery

from helpers import make_files

CONFIG = SmartStoreConfig(num_units=6, seed=3, search_breadth=64)


@pytest.fixture()
def files():
    return make_files(72, clusters=3)


def hot_template(store, files):
    """A record whose group has >= 2 storage units (splitting partitions a
    group's children, so a single-leaf group cannot split)."""
    for group in store.tree.first_level_groups():
        if len(group.children) < 2:
            continue
        units = set(group.descendant_unit_ids())
        for f in files:
            if store._file_locations.get(f.file_id) in units:
                return f
    raise AssertionError("no multi-unit first-level group in this build")


def hot_inserts(template, n):
    """Near-clones of one record: correlation routes them all to its group."""
    out = []
    for i in range(n):
        attrs = dict(template.attributes)
        attrs["size"] = attrs["size"] * (1.0 + 0.01 * i)
        attrs["mtime"] = attrs["mtime"] + i
        out.append(FileMetadata(path=f"/data/hot/hot{i:04d}.dat", attributes=attrs))
    return out


def build_pipeline(files, policy):
    store = SmartStore.build(files, CONFIG)
    return store, IngestPipeline(store, policy=policy)


class TestHotGroupSplitting:
    def test_hot_group_is_split_and_topology_refreshed(self, files):
        store, pipeline = build_pipeline(
            files,
            CompactionPolicy(max_staged_per_group=8, hot_group_factor=1.5),
        )
        groups_before = len(store.tree.first_level_groups())
        index_units_before = store.tree.num_index_units
        for f in hot_inserts(hot_template(store, files), 60):
            pipeline.insert(f)
        pipeline.compactor.drain()

        assert pipeline.compactor.stats.group_splits >= 1
        groups = store.tree.first_level_groups()
        assert len(groups) > groups_before
        assert store.tree.num_index_units > index_units_before
        # Engine topology refresh: every group id resolves through the
        # engine's node map (splitting minted new index-unit ids).
        for group in groups:
            assert store.engine.node_by_id(group.node_id) is group
        # The split partitioned the hot group's children: the two halves
        # together hold exactly what the one group held.
        assert sum(g.file_count for g in groups) == len(files) + 60

    def test_split_preserves_population_and_answers(self, files):
        store, pipeline = build_pipeline(
            files,
            CompactionPolicy(max_staged_per_group=8, hot_group_factor=1.5),
        )
        hot = hot_inserts(hot_template(store, files), 60)
        for f in hot:
            pipeline.insert(f)
        pipeline.compactor.drain()
        assert pipeline.compactor.stats.group_splits >= 1

        population = sorted(
            pipeline.materialized_files(), key=lambda f: f.file_id
        )
        assert len(population) == len(files) + len(hot)
        # Payload equivalence vs a fresh build over the same logical
        # population (placement may differ; answers may not).  The fresh
        # build inherits the deployment's index bounds: top-k distances
        # are only comparable under identical normalisation.
        fresh = SmartStore.build(
            population,
            CONFIG,
            index_bounds=(store.index_lower, store.index_upper),
        )
        generator = QueryWorkloadGenerator(population, seed=19)
        workload = (
            generator.point_queries(6, existing_fraction=0.8)
            + generator.range_queries(6)
            + generator.topk_queries(6, k=6)
        )
        for query in workload:
            assert result_fingerprint(store.execute(query)) == result_fingerprint(
                fresh.execute(query)
            ), query
        # Every hot record is individually findable after the split.
        for f in hot:
            assert store.execute(PointQuery(f.filename)).found

    def test_zero_factor_disables_splitting(self, files):
        store, pipeline = build_pipeline(
            files,
            CompactionPolicy(max_staged_per_group=8, hot_group_factor=0.0),
        )
        groups_before = len(store.tree.first_level_groups())
        for f in hot_inserts(hot_template(store, files), 60):
            pipeline.insert(f)
        pipeline.compactor.drain()
        assert pipeline.compactor.stats.group_splits == 0
        assert len(store.tree.first_level_groups()) == groups_before

    def test_split_refreshes_offline_replicas(self, files):
        store, pipeline = build_pipeline(
            files,
            CompactionPolicy(max_staged_per_group=8, hot_group_factor=1.5),
        )
        for f in hot_inserts(hot_template(store, files), 60):
            pipeline.insert(f)
        pipeline.compactor.drain()
        assert pipeline.compactor.stats.group_splits >= 1
        # The off-line router's replica snapshot must cover the post-split
        # first-level group list, or insert routing would target stale
        # group ids.
        replica_ids = set(store.offline_router.replicas.keys())
        group_ids = {g.node_id for g in store.tree.first_level_groups()}
        assert group_ids == replica_ids
        # And routing a fresh insert through the refreshed replicas works.
        extra = FileMetadata(
            path="/data/proj0/post-split.dat", attributes=dict(files[0].attributes)
        )
        receipt = pipeline.insert(extra)
        assert receipt.group_id in group_ids
        assert store.execute(PointQuery("post-split.dat")).found
