"""Crash-recovery tests: checkpoint + WAL replay rebuilds an equivalent store."""

import pytest

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.ingest import IngestPipeline, WriteAheadLog, recover
from repro.ingest.pipeline import CHECKPOINT_META
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.service.cache import result_fingerprint
from repro.workloads.generator import QueryWorkloadGenerator

from helpers import make_files

CONFIG = SmartStoreConfig(num_units=6, seed=1, search_breadth=64)


def probe_queries(files, seed=5, per_type=6):
    generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=seed)
    return (
        generator.point_queries(per_type, existing_fraction=0.8)
        + generator.range_queries(per_type)
        + generator.topk_queries(per_type, k=8)
    )


def fingerprints(store, queries):
    return [result_fingerprint(store.execute(q)) for q in queries]


@pytest.fixture()
def deployment(tmp_path):
    files = make_files(80)
    store = SmartStore.build(files, CONFIG)
    wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync_every=0)
    pipeline = IngestPipeline(store, wal)
    return files, store, pipeline, tmp_path


class TestCheckpointRecovery:
    def test_snapshot_plus_wal_equivalence(self, deployment):
        files, store, pipeline, tmp = deployment
        pipeline.checkpoint(tmp / "ckpt")
        generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=7)
        for kind, f in generator.mutation_stream(10, 6, 4):
            getattr(pipeline, kind)(f)
        queries = probe_queries(pipeline.materialized_files())
        live = fingerprints(store, queries)
        pipeline.close()

        recovered = recover(tmp / "ckpt", wal_path=tmp / "wal.jsonl")
        assert fingerprints(recovered.store, queries) == live
        assert len(recovered.materialized_files()) == len(
            pipeline.materialized_files()
        )
        recovered.close()

    def test_mid_stream_checkpoint_truncates_log(self, deployment):
        files, store, pipeline, tmp = deployment
        generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=7)
        stream = generator.mutation_stream(12, 6, 0, shuffle=False)
        for kind, f in stream[:9]:
            getattr(pipeline, kind)(f)
        meta = pipeline.checkpoint(tmp / "ckpt")
        assert meta["wal_seq"] == 9
        assert pipeline.wal.replay().records == []  # log truncated
        for kind, f in stream[9:]:
            getattr(pipeline, kind)(f)
        queries = probe_queries(pipeline.materialized_files())
        live = fingerprints(store, queries)
        pipeline.close()

        recovered = recover(tmp / "ckpt", wal_path=tmp / "wal.jsonl")
        # Only the 9 post-checkpoint records were replayed.
        assert recovered.mutations == len(stream) - 9
        assert fingerprints(recovered.store, queries) == live
        recovered.close()

    def test_recovery_after_compaction_and_checkpoint(self, deployment):
        files, store, pipeline, tmp = deployment
        generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=13)
        for kind, f in generator.mutation_stream(8, 4, 2):
            getattr(pipeline, kind)(f)
        pipeline.compactor.drain()
        pipeline.checkpoint(tmp / "ckpt")
        for kind, f in generator.mutation_stream(4, 2, 0):
            getattr(pipeline, kind)(f)
        queries = probe_queries(pipeline.materialized_files())
        live = fingerprints(store, queries)
        pipeline.close()
        recovered = recover(tmp / "ckpt", wal_path=tmp / "wal.jsonl")
        assert fingerprints(recovered.store, queries) == live
        recovered.close()

    def test_recover_without_wal(self, deployment):
        files, store, pipeline, tmp = deployment
        pipeline.insert(
            QueryWorkloadGenerator(files, seed=3).mutation_stream(1, 0, 0)[0][1]
        )
        pipeline.checkpoint(tmp / "ckpt")
        pipeline.close()
        recovered = recover(tmp / "ckpt")
        assert recovered.wal is None
        assert len(recovered.store.files) == len(files) + 1
        recovered.close()

    def test_checkpoint_artefacts_written_atomically(self, deployment):
        """A second checkpoint never leaves temp files or a torn population."""
        files, store, pipeline, tmp = deployment
        pipeline.checkpoint(tmp / "ckpt")
        generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=31)
        for kind, f in generator.mutation_stream(6, 3, 0):
            getattr(pipeline, kind)(f)
        pipeline.checkpoint(tmp / "ckpt")  # overwrites the first checkpoint
        leftovers = list((tmp / "ckpt").glob("*.tmp"))
        assert leftovers == []
        queries = probe_queries(pipeline.materialized_files())
        live = fingerprints(store, queries)
        pipeline.close()
        recovered = recover(tmp / "ckpt", wal_path=tmp / "wal.jsonl")
        assert fingerprints(recovered.store, queries) == live
        recovered.close()

    def test_replay_onto_newer_population_is_idempotent(self, deployment):
        """Crash between the population swap and the metadata swap: the old
        metadata replays already-captured records onto the new population;
        re-staging logged mutations must change no answer."""
        import json as _json

        from repro.persistence import config_to_dict, save_files
        from repro.persistence.jsonl import schema_to_dict

        files, store, pipeline, tmp = deployment
        generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=37)
        for kind, f in generator.mutation_stream(6, 3, 0):
            getattr(pipeline, kind)(f)
        # Handcraft the mid-crash state: the population file already holds
        # the mutations' net effect, but the metadata still says wal_seq=0
        # and the log was not truncated — recovery will replay all of them
        # onto a population that already contains them.
        ckpt = tmp / "ckpt"
        ckpt.mkdir()
        save_files(pipeline.materialized_files(), ckpt / "checkpoint.files.jsonl")
        (ckpt / CHECKPOINT_META).write_text(
            _json.dumps(
                {
                    "format": "repro.checkpoint",
                    "version": 1,
                    "wal_seq": 0,
                    "config": config_to_dict(store.config),
                    "schema": schema_to_dict(store.schema),
                }
            )
        )
        queries = probe_queries(pipeline.materialized_files())
        live = fingerprints(store, queries)
        pipeline.close()
        recovered = recover(ckpt, wal_path=tmp / "wal.jsonl")
        assert fingerprints(recovered.store, queries) == live
        recovered.close()

    def test_not_a_checkpoint_rejected(self, tmp_path):
        (tmp_path / "ckpt").mkdir()
        (tmp_path / "ckpt" / CHECKPOINT_META).write_text('{"format": "nope"}')
        with pytest.raises(ValueError):
            recover(tmp_path / "ckpt")


class TestCrashAtArbitraryOffset:
    def test_torn_wal_tail_recovers_prefix(self, deployment):
        """Kill the log mid-record: recovery equals the surviving prefix."""
        files, store, pipeline, tmp = deployment
        pipeline.checkpoint(tmp / "ckpt")
        generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=19)
        stream = generator.mutation_stream(8, 4, 0, shuffle=False)
        for kind, f in stream:
            getattr(pipeline, kind)(f)
        pipeline.close()

        # Simulate the crash: chop the log at an arbitrary byte offset that
        # tears the final record.
        wal_path = tmp / "wal.jsonl"
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[: len(data) - 40])
        surviving = WriteAheadLog.scan(wal_path)
        assert surviving.truncated
        n_survived = len(surviving.records)
        assert 0 < n_survived < len(stream)

        # The uncrashed reference: a pipeline that applied only the prefix.
        ref_store = SmartStore.build(files, CONFIG)
        with IngestPipeline(ref_store) as reference:
            for kind, f in stream[:n_survived]:
                getattr(reference, kind)(f)
            queries = probe_queries(reference.materialized_files())
            expected = fingerprints(ref_store, queries)

        recovered = recover(tmp / "ckpt", wal_path=wal_path)
        assert recovered.mutations == n_survived
        assert fingerprints(recovered.store, queries) == expected
        recovered.close()

    @pytest.mark.parametrize("cut", [1, 17, 123])
    def test_recovery_is_prefix_consistent_at_any_cut(self, deployment, cut):
        """Whatever byte the crash lands on, recovery equals *some* prefix."""
        files, store, pipeline, tmp = deployment
        pipeline.checkpoint(tmp / "ckpt")
        generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=23)
        stream = generator.mutation_stream(6, 3, 0, shuffle=False)
        for kind, f in stream:
            getattr(pipeline, kind)(f)
        pipeline.close()
        wal_path = tmp / "wal.jsonl"
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[: max(len(data) - cut, 0)])
        n_survived = len(WriteAheadLog.scan(wal_path).records)

        recovered = recover(tmp / "ckpt", wal_path=wal_path)
        ref_store = SmartStore.build(files, CONFIG)
        with IngestPipeline(ref_store) as reference:
            for kind, f in stream[:n_survived]:
                getattr(reference, kind)(f)
            queries = probe_queries(reference.materialized_files(), per_type=4)
            assert fingerprints(recovered.store, queries) == fingerprints(
                ref_store, queries
            )
        recovered.close()

    def test_recovered_pipeline_keeps_ingesting(self, deployment):
        files, store, pipeline, tmp = deployment
        pipeline.checkpoint(tmp / "ckpt")
        generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=29)
        stream = generator.mutation_stream(4, 0, 0, shuffle=False)
        for kind, f in stream[:2]:
            pipeline.insert(f)
        last_seq = pipeline.wal.last_seq
        pipeline.close()

        recovered = recover(tmp / "ckpt", wal_path=tmp / "wal.jsonl")
        receipt = recovered.insert(stream[2][1])
        assert receipt.seq == last_seq + 1  # sequence numbering resumes
        assert recovered.store.point_query(stream[2][1].filename).found
        recovered.close()
