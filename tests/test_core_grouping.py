"""Tests for semantic grouping."""

import numpy as np
import pytest

from repro.core.grouping import (
    build_group_levels,
    group_by_correlation,
    grouping_quality,
    optimal_threshold,
    partition_files,
)
from repro.metadata.attributes import DEFAULT_SCHEMA

from helpers import make_files


def cluster_vectors(n_clusters=4, per=6, seed=0):
    """Well-separated unit-ish vectors for grouping tests."""
    rng = np.random.default_rng(seed)
    directions = rng.normal(size=(n_clusters, 5))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    vectors = []
    for c in range(n_clusters):
        vectors.append(directions[c] + rng.normal(0, 0.05, size=(per, 5)))
    return np.vstack(vectors)


class TestPartitionFiles:
    def test_labels_cover_all_files(self):
        files = make_files(60)
        part = partition_files(files, 6, DEFAULT_SCHEMA, seed=0)
        assert part.labels.shape == (60,)
        assert part.n_groups <= 6
        assert part.semantic_vectors.shape[0] == 60

    def test_num_units_clamped_to_population(self):
        files = make_files(5)
        part = partition_files(files, 50, DEFAULT_SCHEMA, seed=0)
        assert part.n_groups <= 5

    def test_single_unit(self):
        files = make_files(20)
        part = partition_files(files, 1, DEFAULT_SCHEMA)
        assert set(part.labels.tolist()) == {0}

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            partition_files([], 4, DEFAULT_SCHEMA)

    def test_groups_respect_clusters(self):
        # Files from the same synthetic cluster should mostly share units.
        files = make_files(80, clusters=4)
        part = partition_files(files, 8, DEFAULT_SCHEMA, seed=1)
        clusters = np.array([f.extra["cluster"] for f in files])
        purity = []
        for unit in range(part.n_groups):
            members = clusters[part.labels == unit]
            if len(members):
                purity.append(np.bincount(members).max() / len(members))
        assert np.mean(purity) > 0.8

    def test_quality_and_bounds_exposed(self):
        part = partition_files(make_files(40), 4, DEFAULT_SCHEMA)
        assert part.quality >= 0.0
        assert part.norm_lower.shape == (DEFAULT_SCHEMA.dimension,)
        assert part.center.shape == (DEFAULT_SCHEMA.dimension,)


class TestGroupByCorrelation:
    def test_no_items(self):
        assert group_by_correlation(np.empty((0, 3)), 0.5) == []

    def test_single_item(self):
        assert group_by_correlation(np.ones((1, 3)), 0.5) == [[0]]

    def test_all_items_preserved(self):
        vectors = cluster_vectors()
        groups = group_by_correlation(vectors, 0.5)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(vectors.shape[0]))

    def test_recovers_clusters_at_moderate_threshold(self):
        vectors = cluster_vectors(n_clusters=4, per=5, seed=1)
        groups = group_by_correlation(vectors, 0.8, max_group_size=8)
        # Each group must be cluster-pure (never mixes two separated clusters).
        for g in groups:
            clusters = {i // 5 for i in g}
            assert len(clusters) == 1

    def test_threshold_one_keeps_singletons(self):
        vectors = cluster_vectors()
        groups = group_by_correlation(vectors, 1.0)
        assert len(groups) == vectors.shape[0]

    def test_max_group_size_respected(self):
        vectors = np.tile(np.array([1.0, 0.0]), (20, 1))
        groups = group_by_correlation(vectors, 0.5, max_group_size=4)
        assert all(len(g) <= 4 for g in groups)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            group_by_correlation(np.ones((3, 2)), 1.5)

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            group_by_correlation(np.ones((3, 2)), 0.5, max_group_size=0)


class TestBuildGroupLevels:
    def test_reaches_single_root(self):
        vectors = cluster_vectors()
        levels = build_group_levels(vectors, thresholds=[0.8, 0.5], max_fanout=8)
        assert len(levels[-1]) == 1
        assert len(levels[0]) == vectors.shape[0]

    def test_level_zero_is_singletons(self):
        vectors = cluster_vectors(n_clusters=2, per=3)
        levels = build_group_levels(vectors, thresholds=[0.5], max_fanout=4)
        assert all(len(g) == 1 for g in levels[0])

    def test_identical_vectors_terminate(self):
        vectors = np.ones((10, 3))
        levels = build_group_levels(vectors, thresholds=[0.9], max_fanout=4)
        assert len(levels[-1]) == 1

    def test_requires_threshold(self):
        with pytest.raises(ValueError):
            build_group_levels(np.ones((3, 2)), thresholds=[], max_fanout=4)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            build_group_levels(np.empty((0, 2)), thresholds=[0.5])

    def test_fanout_bound_respected(self):
        vectors = cluster_vectors(n_clusters=3, per=10, seed=2)
        levels = build_group_levels(vectors, thresholds=[0.3], max_fanout=5)
        for level in levels[1:]:
            assert all(len(g) <= 5 for g in level)


class TestQualityAndThreshold:
    def test_quality_zero_for_singleton_groups(self):
        points = np.random.default_rng(0).random((10, 3))
        labels = np.arange(10)
        assert grouping_quality(points, labels) == pytest.approx(0.0)

    def test_quality_positive_for_one_group(self):
        points = np.random.default_rng(1).random((10, 3))
        assert grouping_quality(points, np.zeros(10, dtype=int)) > 0

    def test_quality_length_mismatch(self):
        with pytest.raises(ValueError):
            grouping_quality(np.ones((5, 2)), np.zeros(4))

    def test_good_grouping_beats_random_grouping(self):
        vectors = cluster_vectors(n_clusters=4, per=10, seed=3)
        true_labels = np.repeat(np.arange(4), 10)
        rng = np.random.default_rng(0)
        random_labels = rng.permutation(true_labels)
        assert grouping_quality(vectors, true_labels) < grouping_quality(vectors, random_labels)

    def test_optimal_threshold_in_range(self):
        vectors = cluster_vectors()
        threshold, quality = optimal_threshold(vectors, max_fanout=8)
        assert 0.0 <= threshold <= 1.0
        assert quality >= 0.0

    def test_optimal_threshold_tiny_input(self):
        threshold, quality = optimal_threshold(np.ones((1, 3)))
        assert threshold == 1.0 and quality == 0.0
