"""Tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace(SyntheticTraceConfig(n_files=300, n_requests=1500, n_projects=6, seed=1))


class TestConfigValidation:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(read_fraction=0.9, write_fraction=0.9,
                                 stat_fraction=0.0, create_fraction=0.0)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(read_fraction=-0.1, write_fraction=0.6,
                                 stat_fraction=0.4, create_fraction=0.1)

    def test_projects_bounded_by_files(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(n_files=5, n_projects=10)

    def test_zero_files_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(n_files=0)


class TestGeneration:
    def test_population_sizes(self, small_trace):
        assert len(small_trace.files) == 300
        assert len(small_trace.records) == 1500

    def test_every_file_has_full_schema(self, small_trace):
        for f in small_trace.files[:50]:
            for name in DEFAULT_SCHEMA.names:
                assert name in f.attributes

    def test_records_reference_generated_files(self, small_trace):
        paths = {f.path for f in small_trace.files}
        assert all(r.path in paths for r in small_trace.records)

    def test_timestamps_within_duration(self, small_trace):
        duration = 6.0 * 3600
        assert all(0 <= r.timestamp <= duration for r in small_trace.records)

    def test_project_annotation_present(self, small_trace):
        projects = {f.extra["project"] for f in small_trace.files}
        assert projects <= set(range(6))
        assert len(projects) > 1

    def test_deterministic_for_same_seed(self):
        cfg = SyntheticTraceConfig(n_files=50, n_requests=100, n_projects=5, seed=9)
        a = generate_trace(cfg)
        b = generate_trace(cfg)
        assert [f.path for f in a.files] == [f.path for f in b.files]
        assert [r.path for r in a.records] == [r.path for r in b.records]

    def test_different_seeds_differ(self):
        a = generate_trace(SyntheticTraceConfig(n_files=50, n_requests=100, n_projects=5, seed=1))
        b = generate_trace(SyntheticTraceConfig(n_files=50, n_requests=100, n_projects=5, seed=2))
        assert [r.path for r in a.records] != [r.path for r in b.records]

    def test_popularity_is_skewed(self, small_trace):
        counts = {}
        for r in small_trace.records:
            counts[r.path] = counts.get(r.path, 0) + 1
        values = sorted(counts.values(), reverse=True)
        top_decile = sum(values[: max(1, len(values) // 10)])
        assert top_decile > 0.2 * len(small_trace.records)

    def test_zero_requests_allowed(self):
        trace = generate_trace(SyntheticTraceConfig(n_files=20, n_requests=0, n_projects=4))
        assert len(trace.records) == 0
        assert len(trace.files) == 20


class TestSemanticCorrelation:
    def test_projects_cluster_in_attribute_space(self, small_trace):
        """Within-project attribute variance must be well below the global one."""
        files = small_trace.files
        sizes = np.log1p(np.array([f.attributes["size"] for f in files]))
        projects = np.array([f.extra["project"] for f in files])
        within = np.mean([sizes[projects == p].std() for p in np.unique(projects)])
        assert within < 0.8 * sizes.std()

    def test_ctimes_cluster_per_project(self, small_trace):
        files = small_trace.files
        ctimes = np.array([f.attributes["ctime"] for f in files])
        projects = np.array([f.extra["project"] for f in files])
        within = np.mean([ctimes[projects == p].std() for p in np.unique(projects)])
        assert within < 0.5 * ctimes.std()

    def test_owner_constant_within_project(self, small_trace):
        files = small_trace.files
        for p in set(f.extra["project"] for f in files):
            owners = {f.attributes["owner"] for f in files if f.extra["project"] == p}
            assert len(owners) == 1
