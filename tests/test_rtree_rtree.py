"""Tests for the Guttman R-tree."""

import numpy as np
import pytest

from repro.rtree.rtree import RTree


def build_tree(points, max_entries=4):
    tree = RTree(dimension=points.shape[1], max_entries=max_entries)
    for i, p in enumerate(points):
        tree.insert(p, i)
    return tree


def brute_force_range(points, lower, upper):
    lower = np.asarray(lower)
    upper = np.asarray(upper)
    mask = np.all((points >= lower) & (points <= upper), axis=1)
    return set(np.nonzero(mask)[0].tolist())


@pytest.fixture(scope="module")
def random_points():
    return np.random.default_rng(7).random((200, 3)) * 100


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RTree(dimension=0)
        with pytest.raises(ValueError):
            RTree(dimension=2, max_entries=1)
        with pytest.raises(ValueError):
            RTree(dimension=2, max_entries=4, min_entries=3)

    def test_empty_tree(self):
        tree = RTree(dimension=2)
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.search_range([0, 0], [1, 1]) == []

    def test_wrong_dimension_insert(self):
        tree = RTree(dimension=2)
        with pytest.raises(ValueError):
            tree.insert([1, 2, 3], "x")

    def test_size_tracks_inserts(self, random_points):
        tree = build_tree(random_points[:50])
        assert len(tree) == 50

    def test_bulk_load(self, random_points):
        tree = RTree(dimension=3)
        tree.bulk_load(random_points[:20], list(range(20)))
        assert len(tree) == 20

    def test_bulk_load_length_mismatch(self):
        tree = RTree(dimension=2)
        with pytest.raises(ValueError):
            tree.bulk_load(np.ones((3, 2)), [1, 2])


class TestStructureInvariants:
    def test_height_grows_logarithmically(self, random_points):
        tree = build_tree(random_points, max_entries=4)
        assert tree.height <= 8

    def test_fanout_bounds_respected(self, random_points):
        tree = build_tree(random_points, max_entries=4)
        for node in tree.iter_nodes():
            assert len(node) <= tree.max_entries
            if node is not tree.root and len(node) > 0:
                assert len(node) >= 1

    def test_parent_mbr_covers_children(self, random_points):
        tree = build_tree(random_points, max_entries=4)
        for node in tree.iter_nodes():
            if node.is_leaf:
                for e in node.entries:
                    assert node.mbr.contains_point(e.point)
            else:
                for child in node.children:
                    assert node.mbr.contains(child.mbr)

    def test_all_entries_reachable(self, random_points):
        tree = build_tree(random_points)
        payloads = {e.payload for e in tree.iter_entries()}
        assert payloads == set(range(len(random_points)))

    def test_node_count_positive(self, random_points):
        tree = build_tree(random_points)
        assert tree.node_count() >= 1


class TestRangeSearch:
    def test_matches_brute_force(self, random_points):
        tree = build_tree(random_points)
        rng = np.random.default_rng(11)
        for _ in range(20):
            lo = rng.random(3) * 80
            hi = lo + rng.random(3) * 30
            got = {e.payload for e in tree.search_range(lo, hi)}
            assert got == brute_force_range(random_points, lo, hi)

    def test_full_window_returns_everything(self, random_points):
        tree = build_tree(random_points)
        hits = tree.search_range([0, 0, 0], [100, 100, 100])
        assert len(hits) == len(random_points)

    def test_empty_window(self, random_points):
        tree = build_tree(random_points)
        assert tree.search_range([200, 200, 200], [300, 300, 300]) == []

    def test_search_point(self):
        pts = np.array([[1.0, 1.0], [2.0, 2.0], [1.0, 1.0]])
        tree = build_tree(pts)
        hits = tree.search_point([1.0, 1.0])
        assert {e.payload for e in hits} == {0, 2}

    def test_count_in_range(self, random_points):
        tree = build_tree(random_points)
        assert tree.count_in_range([0, 0, 0], [100, 100, 100]) == len(random_points)


class TestDeletion:
    def test_delete_existing(self, random_points):
        pts = random_points[:60]
        tree = build_tree(pts)
        assert tree.delete(pts[10], 10) is True
        assert len(tree) == 59
        assert 10 not in {e.payload for e in tree.iter_entries()}

    def test_delete_missing_returns_false(self, random_points):
        tree = build_tree(random_points[:20])
        assert tree.delete(np.array([999.0, 999.0, 999.0]), 77) is False

    def test_delete_all_then_empty(self):
        pts = np.random.default_rng(3).random((30, 2))
        tree = build_tree(pts)
        for i, p in enumerate(pts):
            assert tree.delete(p, i)
        assert len(tree) == 0
        assert tree.search_range([0, 0], [1, 1]) == []

    def test_range_search_correct_after_deletions(self, random_points):
        pts = random_points[:100]
        tree = build_tree(pts)
        removed = set(range(0, 100, 3))
        for i in sorted(removed):
            tree.delete(pts[i], i)
        remaining = np.array([p for i, p in enumerate(pts) if i not in removed])
        got = {e.payload for e in tree.search_range([0, 0, 0], [100, 100, 100])}
        assert got == set(range(100)) - removed
        assert len(got) == len(remaining)


class TestAccessCounter:
    def test_counter_invoked_on_search(self, random_points):
        counter = {"n": 0}
        tree = RTree(dimension=3, max_entries=4, access_counter=lambda: counter.__setitem__("n", counter["n"] + 1))
        for i, p in enumerate(random_points[:50]):
            tree.insert(p, i)
        before = counter["n"]
        tree.search_range([0, 0, 0], [100, 100, 100])
        assert counter["n"] > before
