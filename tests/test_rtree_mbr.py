"""Tests for minimum bounding rectangles."""

import numpy as np
import pytest

from repro.rtree.mbr import MBR


class TestConstruction:
    def test_basic(self):
        m = MBR([0, 0], [2, 3])
        assert m.dimension == 2
        assert m.area() == 6.0

    def test_lower_above_upper_rejected(self):
        with pytest.raises(ValueError):
            MBR([1, 5], [2, 3])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            MBR([1, 2], [3])

    def test_zero_dimension_rejected(self):
        with pytest.raises(ValueError):
            MBR([], [])

    def test_from_point_is_degenerate(self):
        m = MBR.from_point([1, 2, 3])
        assert m.area() == 0.0
        assert m.contains_point([1, 2, 3])

    def test_from_points(self):
        m = MBR.from_points(np.array([[0, 5], [2, 1], [1, 3]]))
        assert np.allclose(m.lower, [0, 1])
        assert np.allclose(m.upper, [2, 5])

    def test_from_points_empty_rejected(self):
        with pytest.raises(ValueError):
            MBR.from_points(np.empty((0, 2)))

    def test_union_of(self):
        m = MBR.union_of([MBR([0, 0], [1, 1]), MBR([2, 2], [3, 3])])
        assert np.allclose(m.lower, [0, 0])
        assert np.allclose(m.upper, [3, 3])

    def test_union_of_empty_rejected(self):
        with pytest.raises(ValueError):
            MBR.union_of([])

    def test_immutable_bounds(self):
        m = MBR([0], [1])
        with pytest.raises(ValueError):
            m.lower[0] = 5


class TestPredicates:
    def test_contains_point(self):
        m = MBR([0, 0], [2, 2])
        assert m.contains_point([1, 1])
        assert m.contains_point([0, 0])   # boundary counts
        assert not m.contains_point([3, 1])

    def test_contains_mbr(self):
        outer = MBR([0, 0], [10, 10])
        inner = MBR([2, 2], [3, 3])
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_intersects(self):
        a = MBR([0, 0], [2, 2])
        b = MBR([1, 1], [3, 3])
        c = MBR([5, 5], [6, 6])
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c)

    def test_touching_rectangles_intersect(self):
        a = MBR([0], [1])
        b = MBR([1], [2])
        assert a.intersects(b)


class TestMeasures:
    def test_margin(self):
        assert MBR([0, 0], [2, 3]).margin() == 5.0

    def test_union(self):
        u = MBR([0, 0], [1, 1]).union(MBR([2, 2], [3, 3]))
        assert u.area() == 9.0

    def test_intersection_area(self):
        a = MBR([0, 0], [2, 2])
        b = MBR([1, 1], [3, 3])
        assert a.intersection_area(b) == 1.0
        assert a.intersection_area(MBR([5, 5], [6, 6])) == 0.0

    def test_enlargement(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([2, 2], [3, 3])
        assert a.enlargement(b) == pytest.approx(9.0 - 1.0)
        assert a.enlargement(MBR([0, 0], [1, 1])) == 0.0

    def test_extend_point(self):
        m = MBR([0, 0], [1, 1]).extend_point([5, -1])
        assert np.allclose(m.lower, [0, -1])
        assert np.allclose(m.upper, [5, 1])

    def test_center(self):
        assert np.allclose(MBR([0, 0], [2, 4]).center(), [1, 2])

    def test_min_distance_zero_inside(self):
        m = MBR([0, 0], [2, 2])
        assert m.min_distance([1, 1]) == 0.0

    def test_min_distance_outside(self):
        m = MBR([0, 0], [1, 1])
        assert m.min_distance([4, 1]) == pytest.approx(3.0)
        assert m.min_distance([4, 5]) == pytest.approx(5.0)

    def test_max_distance_at_least_min(self):
        m = MBR([0, 0], [1, 1])
        for p in ([0.5, 0.5], [3, 3], [-1, 0.2]):
            assert m.max_distance(p) >= m.min_distance(p)


class TestDunder:
    def test_equality_and_hash(self):
        a = MBR([0, 1], [2, 3])
        b = MBR([0, 1], [2, 3])
        c = MBR([0, 1], [2, 4])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_as_tuple(self):
        lo, hi = MBR([0, 1], [2, 3]).as_tuple()
        assert lo == (0.0, 1.0) and hi == (2.0, 3.0)

    def test_repr_mentions_bounds(self):
        assert "MBR" in repr(MBR([0], [1]))
