"""Tests for the change-audit application."""

import pytest

from repro.apps.audit import ChangeAuditor
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.eval.recall import ground_truth_range

from helpers import make_files


@pytest.fixture(scope="module")
def files():
    # make_files gives cluster c mtimes around 1000*(c+1) + 60.
    return make_files(200, clusters=5)


@pytest.fixture(scope="module")
def store(files):
    return SmartStore.build(files, SmartStoreConfig(num_units=10, seed=4))


@pytest.fixture(scope="module")
def auditor(store):
    return ChangeAuditor(store)


class TestWindowQuery:
    def test_basic_window(self, auditor):
        q = auditor.window_query(1000.0, 2000.0)
        assert q.attributes == ("mtime",)
        assert q.lower == (1000.0,)
        assert q.upper == (2000.0,)

    def test_with_write_volume_and_owner(self, auditor):
        q = auditor.window_query(0.0, 10.0, min_write_bytes=1024.0, owner=3)
        assert q.attributes == ("mtime", "write_bytes", "owner")
        assert q.lower[1] == 1024.0
        assert q.lower[2] == q.upper[2] == 3.0

    def test_invalid_window_rejected(self, auditor):
        with pytest.raises(ValueError):
            auditor.window_query(100.0, 50.0)


class TestAudit:
    def test_audit_finds_changed_cluster(self, auditor, files):
        # Cluster 2 files were modified around t = 3060.
        report = auditor.audit(3000.0, 3200.0)
        assert report.num_flagged > 0
        expected = {
            f.file_id
            for f in files
            if 3000.0 <= f.get("mtime") <= 3200.0
        }
        flagged = {f.file_id for f in report.flagged}
        assert flagged <= expected | flagged  # sanity
        assert report.recall >= 0.9
        assert all(3000.0 <= f.get("mtime") <= 3200.0 for f in report.flagged)

    def test_audit_summaries(self, auditor):
        report = auditor.audit(1000.0, 5200.0)
        assert sum(report.by_directory.values()) == report.num_flagged
        assert sum(report.by_owner.values()) == report.num_flagged
        top_dirs = report.top_directories(2)
        assert len(top_dirs) <= 2
        assert all(isinstance(name, str) and count > 0 for name, count in top_dirs)
        d = report.as_dict()
        assert d["num_flagged"] == report.num_flagged
        assert d["recall"] == report.recall

    def test_audit_empty_window(self, auditor):
        report = auditor.audit(9_000_000.0, 9_000_001.0)
        assert report.num_flagged == 0
        assert report.recall == 1.0
        assert report.top_owners() == []

    def test_audit_with_owner_filter(self, auditor, files):
        report = auditor.audit(0.0, 10_000.0, owner=2)
        assert all(int(f.get("owner")) == 2 for f in report.flagged)

    def test_audit_with_write_volume_filter(self, auditor, files):
        threshold = 5_000.0
        report = auditor.audit(0.0, 10_000.0, min_write_bytes=threshold)
        assert all(f.get("write_bytes") >= threshold for f in report.flagged)

    def test_audit_since(self, auditor, files):
        latest = max(f.get("mtime") for f in files)
        report = auditor.audit_since(latest - 100.0)
        expected = ground_truth_range(files, report.query)
        assert report.query.upper[0] == pytest.approx(latest)
        assert len(expected) >= report.num_flagged > 0


class TestComparison:
    def test_smartstore_beats_directory_walk(self, auditor):
        comparison = auditor.compare_with_directory_walk(3000.0, 3200.0)
        assert comparison["speedup"] > 1.0
        assert comparison["smartstore_latency_s"] < comparison["directory_walk_latency_s"]
        assert 0.0 <= comparison["result_agreement"] <= 1.0
        assert comparison["result_agreement"] >= 0.9

    def test_comparison_keys(self, auditor):
        comparison = auditor.compare_with_directory_walk(0.0, 10_000.0)
        assert {
            "smartstore_latency_s",
            "directory_walk_latency_s",
            "speedup",
            "result_agreement",
        } <= set(comparison)
