"""Shared helpers importable by individual test modules.

Kept separate from ``conftest.py`` so that test modules can ``import`` it
without relying on pytest's conftest module-name handling (which can clash
when several suites are collected in one run).
"""

from __future__ import annotations

import numpy as np

from repro.metadata.file_metadata import FileMetadata


def make_files(n: int = 60, seed: int = 0, clusters: int = 4) -> list:
    """A small, deterministic file population with obvious cluster structure."""
    rng = np.random.default_rng(seed)
    files = []
    for i in range(n):
        cluster = i % clusters
        base_time = 1000.0 * (cluster + 1)
        size = float(2 ** (10 + cluster) * rng.uniform(0.8, 1.2))
        files.append(
            FileMetadata(
                path=f"/data/proj{cluster}/file{i:04d}.dat",
                attributes={
                    "size": size,
                    "ctime": base_time + rng.uniform(0, 50),
                    "mtime": base_time + 60 + rng.uniform(0, 50),
                    "atime": base_time + 120 + rng.uniform(0, 50),
                    "read_bytes": size * rng.uniform(0.5, 1.5),
                    "write_bytes": size * rng.uniform(0.1, 0.4),
                    "access_count": float(rng.integers(1, 20)),
                    "owner": float(cluster),
                },
                extra={"cluster": cluster},
            )
        )
    return files


