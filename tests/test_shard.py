"""Tests for the horizontal sharding layer (partitioner + scatter-gather router)."""

import numpy as np
import pytest

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.metadata.file_metadata import FileMetadata
from repro.service import QueryService, ServiceConfig
from repro.service.cache import result_fingerprint
from repro.shard import (
    HashShardPartitioner,
    SemanticShardPartitioner,
    ShardRouter,
    build_shard_router,
    corpus_index_bounds,
    make_partitioner,
)
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

from helpers import make_files

CONFIG = SmartStoreConfig(num_units=8, seed=2, search_breadth=64)


@pytest.fixture(scope="module")
def files():
    return make_files(120, clusters=4)


@pytest.fixture(scope="module")
def baseline(files):
    return SmartStore.build(files, CONFIG)


@pytest.fixture(scope="module")
def workload(files):
    generator = QueryWorkloadGenerator(files, seed=17)
    return (
        generator.point_queries(8, existing_fraction=0.75)
        + generator.range_queries(8, distribution="zipf")
        + generator.topk_queries(8, k=6, distribution="zipf")
    )


# ---------------------------------------------------------------------------- partitioners
class TestPartitioners:
    def test_semantic_labels_are_deterministic_and_cover_all_shards(self, files):
        a = SemanticShardPartitioner(files, 4, seed=5)
        b = SemanticShardPartitioner(files, 4, seed=5)
        assert np.array_equal(a.labels, b.labels)
        counts = np.bincount(a.labels, minlength=4)
        assert counts.min() > 0  # every slice carries load

    def test_kmeans_strategy_balances_file_counts(self, files):
        part = SemanticShardPartitioner(files, 4, seed=5, strategy="kmeans")
        counts = np.bincount(part.labels, minlength=4)
        assert counts.min() > 0
        assert counts.max() <= 2 * counts.min() + 1  # roughly balanced

    def test_slice_labels_follow_component_order(self, files):
        # Slices are contiguous intervals of the principal LSI component:
        # sorting files by that component must sort their shard labels.
        part = SemanticShardPartitioner(files, 4, seed=5)
        component = part._lsi.item_vectors()[:, 0]
        labels = part.labels[np.argsort(component, kind="stable")]
        assert np.all(np.diff(labels) >= 0)

    def test_semantic_shard_for_is_deterministic_and_in_range(self, files):
        part = SemanticShardPartitioner(files, 4, seed=5)
        new = FileMetadata(path="/new/record.dat", attributes=dict(files[0].attributes))
        assert part.shard_for(new) == part.shard_for(new)
        assert 0 <= part.shard_for(new) < 4

    def test_semantic_routes_build_files_to_their_own_region(self, files):
        # A record identical to a build-time file must land on a shard whose
        # members include that file's cluster (nearest-centroid routing).
        part = SemanticShardPartitioner(files, 3, seed=5)
        hits = sum(
            1
            for i, f in enumerate(files)
            if part.shard_for(f) == int(part.labels[i])
        )
        assert hits / len(files) > 0.8

    def test_hash_partitioner_stable(self, files):
        part = HashShardPartitioner(5)
        labels = part.assign(files)
        assert np.array_equal(labels, part.assign(files))
        assert all(part.shard_for(f) == int(l) for f, l in zip(files, labels))

    def test_assign_rejects_foreign_corpus(self, files):
        part = SemanticShardPartitioner(files, 3, seed=5)
        with pytest.raises(ValueError):
            part.assign(files[:10])

    def test_factory(self, files):
        assert make_partitioner(files, 2, kind="semantic").kind == "semantic"
        assert make_partitioner(files, 2, kind="hash").kind == "hash"
        with pytest.raises(ValueError):
            make_partitioner(files, 2, kind="nope")

    def test_corpus_bounds_match_unsharded_build(self, files, baseline):
        lower, upper = corpus_index_bounds(files)
        assert np.allclose(lower, baseline.index_lower)
        assert np.allclose(upper, baseline.index_upper)


# ---------------------------------------------------------------------------- router
class TestShardRouter:
    @pytest.fixture(scope="class")
    def router(self, files):
        router = build_shard_router(files, 4, CONFIG)
        yield router
        router.close()

    def test_every_query_type_matches_baseline(self, router, baseline, workload):
        for query in workload:
            assert result_fingerprint(router.execute(query)) == result_fingerprint(
                baseline.execute(query)
            )

    def test_missing_filename_contacts_no_shard(self, router):
        before = router.stats()["shards_contacted"]
        result = router.point_query(PointQuery("definitely-not-there.bin"))
        assert not result.found and result.files == []
        assert router.stats()["shards_contacted"] == before

    def test_summary_pruning_happens(self, router, workload):
        for query in workload:
            router.execute(query)
        stats = router.stats()
        assert stats["shards_pruned"] > 0
        assert stats["queries_routed"]["topk"] > 0

    def test_out_of_bounds_topk_matches_baseline(self, router, baseline, files):
        # Regression: MINDIST used to normalise the query point *without*
        # the [0, 1] clip that actual distances apply, so a query far
        # outside the corpus bounds inflated every non-primary shard's
        # MINDIST above the shipped MaxD bound and pruned shards holding
        # the true neighbours.
        for values in ((1e15, 0.0), (0.0, 1e12), (1e18, 1e18)):
            q = TopKQuery(("size", "mtime"), values, k=8)
            assert result_fingerprint(router.execute(q)) == result_fingerprint(
                baseline.execute(q)
            )

    def test_shards_use_corpus_bounds(self, router, files):
        lower, upper = corpus_index_bounds(files)
        for shard in router.shards:
            assert np.allclose(shard.index_lower, lower)
            assert np.allclose(shard.index_upper, upper)

    def test_hash_partitioner_router_matches_baseline(self, files, baseline, workload):
        with build_shard_router(files, 3, CONFIG, partitioner="hash") as router:
            for query in workload:
                assert result_fingerprint(
                    router.execute(query)
                ) == result_fingerprint(baseline.execute(query))

    def test_mismatched_bounds_rejected(self, files):
        # Shards built independently derive different per-shard bounds; the
        # router must refuse to merge their (incomparable) distances.
        half = len(files) // 2
        a = SmartStore.build(files[:half], CONFIG)
        b = SmartStore.build(files[half:], CONFIG)
        with pytest.raises(ValueError):
            ShardRouter([a, b], HashShardPartitioner(2))

    def test_units_are_split_across_shards(self, router):
        assert all(s.cluster.num_units == CONFIG.num_units // 4 for s in router.shards)


class TestShardedMutations:
    @pytest.fixture()
    def router(self, files):
        router = build_shard_router(files, 3, CONFIG)
        yield router
        router.close()

    def test_insert_routes_by_partitioner_and_is_queryable(self, router, files):
        new = FileMetadata(path="/ingest/fresh.dat", attributes=dict(files[7].attributes))
        receipt = router.insert(new)
        assert receipt.known
        assert router.owner_of(new.file_id) == router.partitioner.shard_for(new)
        assert router.point_query(PointQuery("fresh.dat")).found

    def test_known_file_mutations_route_to_owner(self, router, files):
        victim = files[30]
        owner = router.owner_of(victim.file_id)
        updated = victim.with_updates(size=victim.attributes["size"] * 1.5)
        receipt = router.modify(updated)
        assert receipt.known
        assert router.owner_of(victim.file_id) == owner

    def test_delete_then_reinsert_nets_on_same_shard(self, router, files):
        victim = files[31]
        owner = router.owner_of(victim.file_id)
        assert router.delete(victim).known
        assert not router.point_query(PointQuery(victim.filename)).found
        assert router.insert(victim).known
        assert router.owner_of(victim.file_id) == owner
        assert router.point_query(PointQuery(victim.filename)).found

    def test_unknown_delete_is_observable_noop(self, router):
        ghost = FileMetadata(path="/nowhere/ghost.dat", attributes={
            "size": 1.0, "ctime": 1.0, "mtime": 1.0, "atime": 1.0,
            "read_bytes": 1.0, "write_bytes": 1.0, "access_count": 1.0, "owner": 0.0,
        })
        receipt = router.delete(ghost)
        assert not receipt.known
        assert router.owner_of(ghost.file_id) is None

    def test_wal_per_shard(self, files, tmp_path):
        with build_shard_router(files, 3, CONFIG, wal_dir=tmp_path) as router:
            new = FileMetadata(
                path="/ingest/durable.dat", attributes=dict(files[3].attributes)
            )
            router.insert(new)
            wals = sorted(p.name for p in tmp_path.glob("shard-*.wal"))
            assert wals == ["shard-0.wal", "shard-1.wal", "shard-2.wal"]
            owner = router.owner_of(new.file_id)
            assert router.pipelines[owner].wal.appended == 1

    def test_drain_applies_everything(self, router, files):
        generator = QueryWorkloadGenerator(files, seed=41)
        for kind, file in generator.mutation_stream(6, 4, 3):
            getattr(router, kind)(file)
        assert sum(router.stats()["staged_per_shard"]) > 0
        router.compactor.drain()
        assert sum(router.stats()["staged_per_shard"]) == 0


class TestServiceOverRouter:
    def test_service_results_and_cache_epochs(self, files, baseline, workload):
        reference = [result_fingerprint(baseline.execute(q)) for q in workload]
        with build_shard_router(files, 3, CONFIG) as router:
            with QueryService(
                router, ServiceConfig(max_workers=3, batch_window=6, seed=9)
            ) as service:
                results = service.execute_many(list(workload) * 2)
                got = [result_fingerprint(r) for r in results]
                assert got == reference * 2
                assert service.cache.stats.hits > 0

                # A mutation on one shard must flush the service cache (the
                # epoch is the tuple of per-shard change clocks).
                new = FileMetadata(
                    path="/ingest/epoch.dat", attributes=dict(files[11].attributes)
                )
                epoch_before = router.versioning.change_clock
                service.submit_insert(new).result()
                service.drain()
                assert router.versioning.change_clock != epoch_before
                assert service.cache.stats.invalidations >= 1
                assert service.execute(PointQuery("epoch.dat")).found


class TestScalingRowSkew:
    """Degenerate-partition detection on ShardScalingRow (pure arithmetic,
    no store builds): the skew satellite the CLI warning hangs off."""

    @staticmethod
    def _row(shards, populations, busy):
        from repro.shard.benchmarking import ShardScalingRow

        return ShardScalingRow(
            shards=shards,
            build_seconds=0.0,
            complex_seconds=0.0,
            busy_makespan=max(busy) if busy else 0.0,
            scatter_qps=0.0,
            mutations_per_second=0.0,
            shards_contacted=0,
            shards_pruned=0,
            identical=True,
            shard_populations=populations,
            shard_busy=busy,
        )

    def test_balanced_partition_is_not_degenerate(self):
        row = self._row(4, [250, 250, 250, 250], [0.1, 0.1, 0.1, 0.1])
        assert row.busy_share == pytest.approx(0.25)
        assert row.busy_utilization == pytest.approx(1.0)
        assert not row.degenerate

    def test_single_shard_is_never_degenerate(self):
        row = self._row(1, [1000], [0.4])
        assert not row.degenerate

    def test_cli_default_shape_is_degenerate(self):
        # The seed-42 / 16-unit / 4-shard CLI default: half the busy time
        # on the 70-file shard, half the corpus cold on one shard -> the
        # 0.99x "speedup" measures one machine.
        row = self._row(4, [644, 339, 70, 197], [0.0076, 0.0259, 0.0553, 0.0249])
        assert row.degenerate
        assert row.busy_utilization < 0.55

    def test_empty_shard_is_degenerate(self):
        row = self._row(4, [500, 500, 0, 250], [0.1, 0.1, 0.0, 0.1])
        assert row.degenerate

    def test_population_concentration_is_degenerate(self):
        # Busy time level-ish but half the corpus piled on one shard.
        row = self._row(4, [700, 200, 200, 150], [0.1, 0.09, 0.08, 0.1])
        assert row.degenerate

    def test_mild_imbalance_is_not_degenerate(self):
        row = self._row(4, [350, 300, 300, 300], [0.12, 0.1, 0.09, 0.11])
        assert not row.degenerate

    def test_table_row_marks_degenerate_share(self):
        row = self._row(4, [644, 339, 70, 197], [0.0076, 0.0259, 0.0553, 0.0249])
        cells = row.as_table_row(0.99)
        assert any(cell.endswith("!") for cell in cells)
