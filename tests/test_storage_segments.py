"""Property tests for the immutable segment layer: checksum-before-trust.

The contract under test (docs/INVARIANTS.md §12): a damaged segment file
— any single flipped byte, any truncation — is *detected* at open time
and surfaces as :class:`SegmentCorruptError`; recovery quarantines the
file and falls back to WAL replay.  Damage never becomes a wrong answer
and never hangs a query.
"""

import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.ingest.pipeline import IngestPipeline, recover_from_storage
from repro.ingest.wal import WriteAheadLog
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.storage import (
    Segment,
    SegmentCorruptError,
    SegmentStore,
    write_segment,
)
from repro.workloads.types import PointQuery

from helpers import make_files

# tmp_path is function-scoped but every example writes to a distinct
# filename, so cross-example contamination cannot happen.
_SETTINGS = settings(
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def segment_payload(tmp_path_factory):
    """One real segment's bytes, written once and reused per example."""
    root = tmp_path_factory.mktemp("seg")
    files = make_files(18, seed=3)
    units = [(0, files[:7]), (1, files[7:12]), (2, files[12:])]
    info = write_segment(root / "golden.seg", 0, units, DEFAULT_SCHEMA)
    return (root / "golden.seg").read_bytes(), info


class TestChecksumBeforeTrust:
    def test_pristine_segment_opens_and_roundtrips(self, tmp_path, segment_payload):
        payload, info = segment_payload
        path = tmp_path / "ok.seg"
        path.write_bytes(payload)
        seg = Segment.open(path, expected_crc=info.data_crc)
        assert seg.count == 18 and len(seg.units) == 3
        seg.close()

    @given(data=st.data())
    @_SETTINGS
    def test_any_single_flipped_byte_is_detected(
        self, tmp_path, segment_payload, data
    ):
        payload, info = segment_payload
        offset = data.draw(st.integers(0, len(payload) - 1), label="offset")
        flip = data.draw(st.integers(1, 255), label="xor")
        damaged = bytearray(payload)
        damaged[offset] ^= flip
        path = tmp_path / f"flip-{offset}-{flip}.seg"
        path.write_bytes(bytes(damaged))
        with pytest.raises(SegmentCorruptError):
            seg = Segment.open(path, expected_crc=info.data_crc)
            seg.close()

    @given(data=st.data())
    @_SETTINGS
    def test_any_truncation_is_detected(self, tmp_path, segment_payload, data):
        payload, info = segment_payload
        keep = data.draw(st.integers(0, len(payload) - 1), label="keep")
        path = tmp_path / f"trunc-{keep}.seg"
        path.write_bytes(payload[:keep])
        with pytest.raises(SegmentCorruptError):
            seg = Segment.open(path, expected_crc=info.data_crc)
            seg.close()

    def test_manifest_crc_cross_check_catches_swapped_file(
        self, tmp_path, segment_payload
    ):
        # A *valid* segment under the wrong name: its own checksums pass,
        # but the manifest's recorded CRC must reject it.
        payload, info = segment_payload
        other = write_segment(
            tmp_path / "other.seg", 0, [(0, make_files(5, seed=9))], DEFAULT_SCHEMA
        )
        assert other.data_crc != info.data_crc
        with pytest.raises(SegmentCorruptError):
            Segment.open(tmp_path / "other.seg", expected_crc=info.data_crc)

    def test_missing_file_is_corrupt_not_crash(self, tmp_path):
        with pytest.raises(SegmentCorruptError):
            Segment.open(tmp_path / "never-written.seg")


def _publish(tmp_path, files):
    """Durable pipeline + snapshot + a small WAL tail; returns paths."""
    config = SmartStoreConfig(num_units=4, seed=0, search_breadth=64)
    store = SmartStore.build(files[:40], config)
    wal_path = tmp_path / "wal.jsonl"
    pipeline = IngestPipeline(store, WriteAheadLog(wal_path))
    pipeline.attach_storage(SegmentStore(tmp_path / "snap", resident_segments=64))
    pipeline.checkpoint()
    for f in files[40:]:
        pipeline.insert(f)
    tail = len(files) - 40
    pipeline.close()
    return tmp_path / "snap", wal_path, tail


class TestQuarantineFallback:
    @given(data=st.data())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_corrupt_segment_quarantined_never_wrong(self, tmp_path_factory, data):
        """End to end: damage one on-disk segment, recover, query everything.

        The damaged group is quarantined (detected, listed, file moved
        aside), the WAL tail still replays, and every point query either
        finds the *correct* record or finds nothing — never garbage, never
        an exception, never a hang.
        """
        tmp_path = tmp_path_factory.mktemp("quarantine")
        files = make_files(52, seed=5)
        snap_root, wal_path, tail = _publish(tmp_path, files)

        victims = sorted(p for p in (snap_root / "segments").iterdir())
        victim = victims[data.draw(st.integers(0, len(victims) - 1), label="segment")]
        payload = bytearray(victim.read_bytes())
        offset = data.draw(st.integers(0, len(payload) - 1), label="offset")
        payload[offset] ^= data.draw(st.integers(1, 255), label="xor")
        victim.write_bytes(bytes(payload))

        pipeline, report = recover_from_storage(snap_root, wal_path=wal_path)
        try:
            assert report.segments_quarantined == [victim.name]
            assert len(report.groups_quarantined) == 1
            # Quarantine means moved aside, not deleted: the damaged bytes
            # stay inspectable but can never be mmap'd as truth again.
            assert not victim.exists()
            assert (snap_root / "quarantine" / victim.name).exists()
            # O(tail) replay still happened on the surviving groups.
            assert report.wal_records_replayed == tail

            by_name = {f.filename: f for f in files}
            for name, original in by_name.items():
                result = pipeline.store.execute(PointQuery(name))
                assert len(result.files) <= 1
                for found in result.files:
                    assert found.filename == name
                    assert found.attributes == original.attributes
            # The WAL tail (never checkpointed into a segment) survives
            # regardless of which segment was damaged.
            tail_names = {f.filename for f in files[40:]}
            recovered_names = {
                f.filename for f in pipeline.materialized_files()
            }
            assert tail_names <= recovered_names
        finally:
            pipeline.close()

    def test_republish_after_quarantine_heals(self, tmp_path):
        """A checkpoint after quarantined recovery publishes a clean set a
        second recovery reads back in full (minus the lost rows)."""
        files = make_files(52, seed=6)
        snap_root, wal_path, _ = _publish(tmp_path, files)
        victim = sorted((snap_root / "segments").iterdir())[0]
        payload = bytearray(victim.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        victim.write_bytes(bytes(payload))

        pipeline, report = recover_from_storage(snap_root, wal_path=wal_path)
        assert report.segments_quarantined
        survivors = sorted(
            f.filename for f in pipeline.materialized_files()
        )
        pipeline.checkpoint()
        pipeline.close()

        healed, report2 = recover_from_storage(snap_root, wal_path=wal_path)
        try:
            assert report2.segments_quarantined == []
            assert (
                sorted(f.filename for f in healed.materialized_files())
                == survivors
            )
        finally:
            healed.close()

    def test_crc32_is_the_checksum_in_play(self, segment_payload):
        # Guard against the checksum silently becoming a no-op: the header
        # advertises the same CRC32 the data actually hashes to.
        payload, info = segment_payload
        header_end = payload.index(b"\n")
        line2_end = payload.index(b"\n", header_end + 1)
        data = payload[line2_end + 1 :]
        assert zlib.crc32(data) & 0xFFFFFFFF == info.data_crc
