"""Tests for the incremental LSI fold-in / refresh machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsi.incremental import DriftReport, IncrementalLSI
from repro.lsi.model import LSIModel


def _clustered_matrix(n_per_cluster=20, clusters=3, dim=6, seed=0, spread=0.05):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.5, 2.0, size=(clusters, dim))
    rows = []
    for c in range(clusters):
        rows.append(centers[c] + rng.normal(0, spread, size=(n_per_cluster, dim)))
    return np.vstack(rows)


@pytest.fixture()
def base_matrix():
    return _clustered_matrix(seed=3)


@pytest.fixture()
def inc(base_matrix):
    return IncrementalLSI(base_matrix, rank=3)


class TestConstruction:
    def test_initial_state(self, inc, base_matrix):
        assert inc.n_items == len(base_matrix)
        assert inc.n_attributes == base_matrix.shape[1]
        assert inc.item_vectors().shape == (len(base_matrix), 3)
        drift = inc.drift()
        assert drift.folded_items == 0
        assert drift.mean_residual == 0.0
        assert not inc.needs_refresh()

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            IncrementalLSI(np.empty((0, 4)), rank=2)
        with pytest.raises(ValueError):
            IncrementalLSI(np.ones(5), rank=2)

    def test_matches_plain_lsi(self, base_matrix):
        inc = IncrementalLSI(base_matrix, rank=3)
        plain = LSIModel.fit_items(base_matrix, 3)
        assert np.allclose(np.abs(inc.item_vectors()), np.abs(plain.item_vectors()))


class TestFoldIn:
    def test_add_items_grows_view(self, inc, base_matrix):
        new = base_matrix[:5] * 1.01
        folded = inc.add_items(new)
        assert folded.shape == (5, 3)
        assert inc.n_items == len(base_matrix) + 5
        assert inc.drift().folded_items == 5

    def test_add_single_vector(self, inc, base_matrix):
        folded = inc.add_items(base_matrix[0])
        assert folded.shape == (1, 3)

    def test_wrong_dimensionality_rejected(self, inc):
        with pytest.raises(ValueError):
            inc.add_items(np.ones((2, 99)))

    def test_in_subspace_items_have_tiny_residual(self, inc, base_matrix):
        # An item identical to a fitted one is (nearly) inside the subspace.
        inc.add_items(base_matrix[:3])
        assert inc.drift().mean_residual < 0.05

    def test_orthogonal_item_has_large_residual(self, base_matrix):
        inc = IncrementalLSI(base_matrix, rank=2)
        weird = np.zeros(base_matrix.shape[1])
        # Construct a vector orthogonal to the top-2 subspace by removing the
        # projection of a random vector.
        rng = np.random.default_rng(7)
        v = rng.normal(size=base_matrix.shape[1])
        u = inc.model.u
        v -= u @ (u.T @ v)
        if np.linalg.norm(v) > 1e-9:
            inc.add_items(v)
            assert inc.drift().max_residual > 0.9

    def test_folded_similarity_close_to_refit(self, inc, base_matrix):
        """Fold-in of near-duplicate items lands them near their originals."""
        original_vec = inc.item_vectors()[0]
        folded = inc.add_items(base_matrix[0] * 1.02)[0]
        assert inc.similarity(original_vec, folded) > 0.99


class TestRemoveAndUpdate:
    def test_remove_item(self, inc, base_matrix):
        n = inc.n_items
        inc.remove_item(0)
        assert inc.n_items == n - 1
        assert inc.item_vectors().shape[0] == n - 1

    def test_remove_folded_item_updates_drift(self, inc, base_matrix):
        inc.add_items(base_matrix[:2])
        assert inc.drift().folded_items == 2
        inc.remove_item(inc.n_items - 1)
        assert inc.drift().folded_items == 1

    def test_remove_out_of_range(self, inc):
        with pytest.raises(IndexError):
            inc.remove_item(10_000)

    def test_update_item(self, inc, base_matrix):
        before = inc.item_vectors()[2].copy()
        inc.update_item(2, base_matrix[2] * 3.0)
        after = inc.item_vectors()[2]
        assert not np.allclose(before, after)
        assert len(inc._rows) == len(base_matrix)

    def test_update_validation(self, inc):
        with pytest.raises(ValueError):
            inc.update_item(0, np.ones(99))
        with pytest.raises(IndexError):
            inc.update_item(10_000, np.ones(inc.n_attributes))


class TestDriftAndRefresh:
    def test_folded_fraction_triggers_refresh_policy(self, inc, base_matrix):
        inc.add_items(np.tile(base_matrix[:10], (3, 1)))
        drift = inc.drift()
        assert drift.folded_fraction > 0.25
        assert inc.needs_refresh(max_folded_fraction=0.25)
        assert not inc.needs_refresh(max_folded_fraction=0.9, max_mean_residual=0.9)

    def test_refresh_resets_drift(self, inc, base_matrix):
        inc.add_items(base_matrix[:10])
        model = inc.refresh()
        drift = inc.drift()
        assert drift.folded_items == 0
        assert drift.fitted_items == inc.n_items
        assert model.n_items == inc.n_items
        assert inc.item_vectors().shape == (inc.n_items, model.rank)

    def test_refresh_with_new_rank(self, inc):
        inc.refresh(rank=2)
        assert inc.model.rank == 2
        assert inc.item_vectors().shape[1] == 2

    def test_refresh_restores_fold_in_accuracy(self, base_matrix):
        """After refresh the added items are represented exactly (zero residual)."""
        inc = IncrementalLSI(base_matrix[:30], rank=3)
        shifted = _clustered_matrix(seed=99) + 5.0
        inc.add_items(shifted[:20])
        stale_drift = inc.drift().mean_residual
        inc.refresh()
        # Re-adding one of the now-fitted items must produce a small residual.
        inc.add_items(shifted[0])
        assert inc.drift().mean_residual <= stale_drift + 1e-9

    def test_drift_report_exceeds(self):
        report = DriftReport(100, 10, 0.09, 0.5, 0.8)
        assert report.exceeds(max_mean_residual=0.4)
        assert not report.exceeds(max_folded_fraction=0.5, max_mean_residual=0.9)

    def test_repr(self, inc):
        assert "IncrementalLSI" in repr(inc)


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=30),
        dim=st.integers(min_value=2, max_value=8),
        extra=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_item_count_invariant(self, n, dim, extra, seed):
        rng = np.random.default_rng(seed)
        base = rng.uniform(0.1, 2.0, size=(n, dim))
        inc = IncrementalLSI(base, rank=min(3, dim))
        inc.add_items(rng.uniform(0.1, 2.0, size=(extra, dim)))
        assert inc.n_items == n + extra
        assert inc.item_vectors().shape[0] == n + extra
        drift = inc.drift()
        assert 0.0 <= drift.folded_fraction <= 1.0
        assert 0.0 <= drift.mean_residual <= drift.max_residual <= 1.0 + 1e-9
        inc.refresh()
        assert inc.drift().folded_items == 0
