"""Tests for the SmartStore facade (build, updates, accounting)."""

import numpy as np
import pytest

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.metadata.file_metadata import FileMetadata
from repro.workloads.types import RangeQuery

from helpers import make_files


class TestConfig:
    def test_defaults_match_prototype(self):
        cfg = SmartStoreConfig()
        assert cfg.num_units == 60
        assert cfg.bloom_bits == 1024
        assert cfg.bloom_hashes == 7
        assert cfg.lazy_update_threshold == 0.05
        assert cfg.autoconfig_threshold == 0.10
        assert cfg.mode == "offline"
        assert cfg.versioning_enabled is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_units": 0},
            {"lsi_rank": 0},
            {"max_fanout": 1},
            {"mode": "sideways"},
            {"version_ratio": 0},
            {"lazy_update_threshold": 0.0},
            {"search_breadth": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SmartStoreConfig(**kwargs)


class TestBuild:
    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            SmartStore.build([], SmartStoreConfig(num_units=4))

    def test_all_files_placed(self, built_store, msn_small_files):
        assert built_store.cluster.total_files() == len(msn_small_files)

    def test_unit_count_respected(self, built_store):
        assert built_store.cluster.num_units <= 16

    def test_units_approximately_balanced(self, built_store):
        sizes = [len(s) for s in built_store.cluster]
        assert max(sizes) <= 2.0 * (sum(sizes) / len(sizes)) + 1

    def test_tree_covers_all_units(self, built_store):
        assert sorted(built_store.tree.root.descendant_unit_ids()) == built_store.cluster.unit_ids()

    def test_index_units_mapped_to_servers(self, built_store):
        valid = set(built_store.cluster.unit_ids())
        for node in built_store.tree.index_units():
            assert node.hosted_on in valid

    def test_root_multi_mapped(self, built_store):
        root = built_store.tree.root
        assert len(root.replica_hosts) >= 1

    def test_stats_keys(self, built_store):
        stats = built_store.stats()
        for key in ("num_units", "num_files", "tree_height", "num_index_units",
                    "first_level_groups", "index_space_bytes", "mode", "versioning"):
            assert key in stats

    def test_more_units_than_files_clamped(self):
        files = make_files(5)
        store = SmartStore.build(files, SmartStoreConfig(num_units=50, seed=0))
        assert store.cluster.num_units <= 5

    def test_explicit_thresholds_used(self):
        files = make_files(40)
        store = SmartStore.build(
            files, SmartStoreConfig(num_units=6, thresholds=(0.9, 0.6, 0.3), seed=0)
        )
        assert store.tree.thresholds[:3] == [0.9, 0.6, 0.3]

    def test_repr(self, built_store):
        assert "SmartStore(" in repr(built_store)


class TestUpdates:
    def make_new_file(self, i=0):
        return FileMetadata(
            path=f"/new/late-file-{i}.dat",
            attributes={
                "size": 5000.0, "ctime": 5000.0, "mtime": 5100.0, "atime": 5200.0,
                "read_bytes": 3000.0, "write_bytes": 800.0, "access_count": 2.0, "owner": 1.0,
            },
        )

    def test_insert_visible_with_versioning(self, tiny_store):
        new = self.make_new_file()
        tiny_store.insert_file(new)
        result = tiny_store.point_query(new.filename)
        assert result.found

    def test_insert_not_in_servers_until_reconfigure(self, tiny_store):
        new = self.make_new_file(1)
        before = tiny_store.cluster.total_files()
        tiny_store.insert_file(new)
        assert tiny_store.cluster.total_files() == before
        assert tiny_store._pending_insertions == 1

    def test_insert_invisible_without_versioning(self, small_files):
        store = SmartStore.build(
            small_files, SmartStoreConfig(num_units=6, seed=1, versioning_enabled=False)
        )
        new = self.make_new_file(2)
        store.insert_file(new)
        assert not store.point_query(new.filename).found

    def test_reconfigure_applies_pending(self, tiny_store):
        new = self.make_new_file(3)
        before = tiny_store.cluster.total_files()
        tiny_store.insert_file(new)
        applied = tiny_store.reconfigure()
        assert applied == 1
        assert tiny_store.cluster.total_files() == before + 1
        assert tiny_store._pending_insertions == 0
        # After reconfiguration the file is served by the primary index path.
        assert tiny_store.point_query(new.filename).found

    def test_range_query_sees_pending_with_versioning(self, tiny_store):
        new = self.make_new_file(4)
        tiny_store.insert_file(new)
        q = RangeQuery(("mtime",), (5050.0,), (5150.0,))
        result = tiny_store.range_query(q)
        assert any(f.file_id == new.file_id for f in result.files)

    def test_modify_serves_fresh_values_with_versioning(self, tiny_store):
        target = tiny_store.files[0]
        old = target.get("mtime")
        tiny_store.modify_file(target.with_updates(mtime=old + 0.25))
        q = RangeQuery(("mtime",), (old - 1.0,), (old + 1.0,))
        served = next(
            f for f in tiny_store.range_query(q).files if f.file_id == target.file_id
        )
        # The version-chain copy is fresher than the indexed copy and wins.
        assert served.get("mtime") == old + 0.25

    def test_modify_after_pending_delete_rejected(self, tiny_store):
        # The pending delete is the file's logical truth even though the
        # record is still physically applied: the modify must be rejected
        # exactly as it would be after the delete compacts.
        victim = tiny_store.files[0]
        tiny_store.delete_file(victim)
        from repro.core.smartstore import UNKNOWN_GROUP

        assert tiny_store.modify_file(victim.with_updates(mtime=1.0)) == UNKNOWN_GROUP
        tiny_store.reconfigure()
        assert tiny_store.file_by_id(victim.file_id) is None

    def test_delete_file_recorded(self, tiny_store):
        victim = tiny_store.files[0]
        tiny_store.delete_file(victim)
        assert tiny_store._pending_deletions == 1
        applied = tiny_store.reconfigure()
        assert applied >= 1
        assert all(f.file_id != victim.file_id for server in tiny_store.cluster for f in server.files)

    def test_file_semantic_vector_shape(self, tiny_store):
        vec = tiny_store.file_semantic_vector(tiny_store.files[0])
        assert vec.shape == (tiny_store.lsi.rank,)


class TestSpaceAccounting:
    def test_per_unit_space_positive(self, built_store):
        per_unit = built_store.index_space_bytes_per_unit()
        assert set(per_unit.keys()) == set(built_store.cluster.unit_ids())
        assert all(v > 0 for v in per_unit.values())

    def test_total_is_sum(self, built_store):
        per_unit = built_store.index_space_bytes_per_unit()
        assert built_store.total_index_space_bytes() == sum(per_unit.values())

    def test_versions_add_space(self, tiny_store):
        before = tiny_store.total_index_space_bytes()
        for i in range(20):
            tiny_store.insert_file(
                FileMetadata(
                    path=f"/bulk/file{i}.dat",
                    attributes={n: float(i + 1) for n in tiny_store.schema.names},
                )
            )
        assert tiny_store.total_index_space_bytes() > before
