"""Remote client over the wire: topology equivalence, pagination, lifecycle.

The tentpole contract of the network front door: ``connect("tcp://...")``
is a drop-in for the local client.  Specifically:

* for **all five topology shapes** (plus process execution) the remote
  client's result fingerprints are byte-identical to the local client's
  for the same workload;
* pagination over the wire: concatenated pages equal the unpaginated
  result, cursors survive the round-trip, and mutations in flight do not
  corrupt an open pinned stream;
* ``close()`` is idempotent on both clients — double-close and
  close-with-open-cursors never raise, and closing deterministically
  releases pinned snapshots (the satellite regression for
  :meth:`repro.api.client.Client.close`).
"""

import pytest

from repro.api import DeploymentSpec, RequestOptions, connect
from repro.core.smartstore import SmartStoreConfig
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.server import RemoteClient, StoreServer, serve_spec
from repro.service.cache import result_fingerprint
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery, RangeQuery

from helpers import make_files

CONFIG = SmartStoreConfig(num_units=6, seed=3, search_breadth=64)
TOPOLOGIES = ("plain", "durable", "sharded", "replicated", "sharded_replicated")


def spec_for(topology: str, tmp_path, **overrides) -> DeploymentSpec:
    kwargs = {"topology": topology, "store": CONFIG, "shards": 2, "replicas": 1}
    if topology == "durable":
        kwargs["wal_dir"] = str(tmp_path / "wal")
    kwargs.update(overrides)
    return DeploymentSpec(**kwargs)


@pytest.fixture(scope="module")
def population():
    return make_files(80, clusters=4)


@pytest.fixture(scope="module")
def workload(population):
    generator = QueryWorkloadGenerator(population, DEFAULT_SCHEMA, seed=17)
    queries = []
    queries.extend(generator.point_queries(4))
    queries.extend(generator.range_queries(4))
    queries.extend(generator.topk_queries(4, k=5))
    return queries


def fingerprints(client, workload):
    return [result_fingerprint(client.execute(q).result) for q in workload]


class TestTopologyEquivalence:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_remote_fingerprints_match_local(
        self, topology, population, workload, tmp_path
    ):
        local = connect(spec_for(topology, tmp_path), population)
        reference = fingerprints(local, workload)
        local.close()

        server = serve_spec(spec_for(topology, tmp_path / "srv"), population)
        try:
            remote = connect(server.address)
            try:
                assert fingerprints(remote, workload) == reference
            finally:
                remote.close()
        finally:
            server.close()

    def test_process_execution_matches_threads(self, population, workload, tmp_path):
        threads = serve_spec(spec_for("sharded", tmp_path), population)
        procs = serve_spec(
            spec_for("sharded", tmp_path, execution="processes"), population
        )
        try:
            with connect(threads.address) as a, connect(procs.address) as b:
                assert b.topology == "sharded"
                assert fingerprints(a, workload) == fingerprints(b, workload)
        finally:
            procs.close()
            threads.close()


@pytest.fixture(scope="module")
def server(population):
    srv = serve_spec(
        DeploymentSpec(topology="sharded", shards=2, store=CONFIG), population
    )
    yield srv
    srv.close()


@pytest.fixture()
def remote(server):
    client = connect(server.address)
    yield client
    client.close()


SCAN = RangeQuery(("size",), (0.0,), (1e12,))


class TestRemotePagination:
    def test_page_concat_equals_unpaginated(self, remote):
        full = remote.execute(SCAN)
        paged_files, paged_distances = [], []
        for page in remote.pages(SCAN, page_size=7):
            paged_files.extend(f.path for f in page.files)
            paged_distances.extend(page.distances)
        assert paged_files == [f.path for f in full.result.files]
        assert paged_distances == full.result.distances

    def test_manual_cursor_walk(self, remote):
        response = remote.execute(SCAN, RequestOptions(page_size=5))
        assert response.page is not None
        pages = [response.page]
        while pages[-1].cursor is not None:
            pages.append(
                remote.execute(SCAN, RequestOptions(cursor=pages[-1].cursor)).page
            )
        full = remote.execute(SCAN)
        walked = [f.path for page in pages for f in page.files]
        assert walked == [f.path for f in full.result.files]

    def test_mutation_in_flight_does_not_corrupt_pinned_stream(
        self, remote, population
    ):
        """Start a paginated read, mutate under it, finish the read: the
        pinned snapshot keeps serving the pre-mutation view."""
        first = remote.execute(SCAN, RequestOptions(page_size=6))
        expected = [f.path for f in remote.execute(SCAN).result.files]

        victim = population[11]
        receipt = remote.delete(victim).receipt
        assert receipt.kind == "delete"

        walked = [f.path for f in first.page.files]
        cursor = first.page.cursor
        while cursor is not None:
            page = remote.execute(SCAN, RequestOptions(cursor=cursor)).page
            walked.extend(f.path for f in page.files)
            cursor = page.cursor
        assert walked == expected  # snapshot view, deletion not visible

    def test_mutations_round_trip_and_bump_epoch(self, remote, population):
        before = remote.epoch()
        extra = FileMetadata(
            path="/data/proj0/remote-insert.dat",
            attributes=dict(population[0].attributes),
        )
        receipt = remote.insert(extra).receipt
        assert receipt.kind == "insert"
        assert remote.epoch() != before
        changed = FileMetadata(
            path=population[3].path, attributes=dict(population[3].attributes)
        )
        assert remote.modify(changed).receipt.kind == "modify"

    def test_execute_many_and_submit(self, remote, workload):
        sync = [result_fingerprint(remote.execute(q).result) for q in workload[:6]]
        batched = [
            result_fingerprint(r.result) for r in remote.execute_many(workload[:6])
        ]
        futures = [remote.submit(q) for q in workload[:6]]
        async_prints = [result_fingerprint(f.result().result) for f in futures]
        assert batched == sync
        assert async_prints == sync

    def test_stats_and_ping(self, remote):
        assert remote.ping() is True
        stats = remote.stats()
        network = stats["service"]["telemetry"]["network"]
        assert network["requests_served"] >= 1
        assert network["connections_accepted"] >= 1


class TestCloseSemantics:
    """Satellite: close() idempotence + deterministic snapshot release."""

    def test_local_double_close_is_silent(self, population, tmp_path):
        client = connect(spec_for("sharded", tmp_path), population)
        client.close()
        client.close()  # must not raise

    def test_local_close_with_open_cursors_releases_snapshots(
        self, population, tmp_path
    ):
        client = connect(spec_for("plain", tmp_path), population)
        response = client.execute(SCAN, RequestOptions(page_size=4))
        assert response.page.cursor is not None  # stream left open
        stream = client.pages(SCAN, page_size=3)
        next(stream)  # second open cursor, mid-iteration
        assert len(client._snapshots) > 0
        client.close()
        assert len(client._snapshots) == 0  # deterministic release
        client.close()  # and still idempotent afterwards

    def test_context_manager_exit_after_explicit_close(self, population, tmp_path):
        with connect(spec_for("plain", tmp_path), population) as client:
            client.execute(SCAN, RequestOptions(page_size=4))
            client.close()
        # __exit__ double-closes: must not raise.

    def test_remote_double_close_is_silent(self, server):
        client = connect(server.address)
        client.ping()
        client.close()
        client.close()

    def test_remote_close_with_open_cursor(self, server):
        client = connect(server.address)
        response = client.execute(SCAN, RequestOptions(page_size=4))
        assert response.page.cursor is not None
        client.close()
        client.close()

    def test_remote_context_manager(self, server):
        with connect(server.address) as client:
            assert isinstance(client, RemoteClient)
            assert client.ping() is True
        with pytest.raises(Exception):
            client.ping()  # closed client must not silently work

    def test_server_close_is_idempotent(self, population):
        client = connect(
            DeploymentSpec(topology="plain", store=CONFIG), population
        )
        srv = StoreServer(client, owns_client=True).start()
        srv.close()
        srv.close()


class TestConnectValidation:
    def test_connect_rejects_non_tcp_string(self):
        with pytest.raises(ValueError, match="tcp://"):
            connect("http://127.0.0.1:1")

    def test_connect_rejects_files_with_remote_address(self, population, server):
        with pytest.raises(ValueError, match="files"):
            connect(server.address, population)
