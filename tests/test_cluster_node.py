"""Tests for the simulated storage server."""

import numpy as np
import pytest

from repro.cluster.metrics import Metrics
from repro.cluster.node import StorageServer
from repro.metadata.attributes import DEFAULT_SCHEMA

from helpers import make_files


@pytest.fixture()
def server():
    s = StorageServer(unit_id=0, schema=DEFAULT_SCHEMA)
    s.add_files(make_files(20))
    return s


class TestContent:
    def test_add_and_len(self, server):
        assert len(server) == 20

    def test_filenames(self, server):
        assert len(server.filenames()) == 20
        assert all(name.endswith(".dat") for name in server.filenames())

    def test_bloom_contains_local_filenames(self, server):
        for name in server.filenames():
            assert server.bloom.contains(name)

    def test_remove_file(self, server):
        victim = server.files[0]
        removed = server.remove_file(victim.file_id)
        assert removed is victim
        assert len(server) == 19
        assert server.lookup_filename(victim.filename) == []

    def test_remove_unknown_returns_none(self, server):
        assert server.remove_file(999999) is None

    def test_empty_server_summaries(self):
        s = StorageServer(0)
        assert s.mbr() is None
        assert s.centroid() is None
        assert len(s) == 0


class TestMatrices:
    def test_matrix_shapes(self, server):
        assert server.matrix().shape == (20, DEFAULT_SCHEMA.dimension)
        assert server.index_matrix().shape == (20, DEFAULT_SCHEMA.dimension)

    def test_index_matrix_log_transform(self, server):
        raw = server.matrix()
        idx = server.index_matrix()
        size_col = DEFAULT_SCHEMA.index("size")
        ctime_col = DEFAULT_SCHEMA.index("ctime")
        assert np.allclose(idx[:, size_col], np.log1p(raw[:, size_col]))
        assert np.allclose(idx[:, ctime_col], raw[:, ctime_col])

    def test_normalized_matrix_requires_bounds(self, server):
        with pytest.raises(RuntimeError):
            server.normalized_matrix()

    def test_normalized_matrix_in_unit_range(self, server):
        idx = server.index_matrix()
        server.set_normalization(idx.min(axis=0), idx.max(axis=0))
        norm = server.normalized_matrix()
        assert norm.min() >= 0.0 and norm.max() <= 1.0

    def test_mbr_covers_all_points(self, server):
        mbr = server.mbr()
        for row in server.index_matrix():
            assert mbr.contains_point(row)

    def test_centroid_is_mean(self, server):
        assert np.allclose(server.centroid(), server.index_matrix().mean(axis=0))


class TestScans:
    def test_scan_range_matches_brute_force(self, server):
        idx_cols = [DEFAULT_SCHEMA.index("mtime")]
        values = server.index_matrix()[:, idx_cols[0]]
        lo, hi = np.percentile(values, [25, 75])
        metrics = Metrics()
        hits = server.scan_range(idx_cols, [lo], [hi], metrics)
        expected = int(np.sum((values >= lo) & (values <= hi)))
        assert len(hits) == expected
        assert metrics.memory_records_scanned == len(server)
        assert 0 in metrics.units_visited

    def test_scan_range_on_disk_flag(self, server):
        metrics = Metrics()
        server.scan_range([0], [0], [1e20], metrics, on_disk=True)
        assert metrics.disk_records_scanned == len(server)
        assert metrics.memory_records_scanned == 0

    def test_scan_range_empty_server(self):
        s = StorageServer(1)
        assert s.scan_range([0], [0], [1]) == []

    def test_scan_knn_returns_sorted_distances(self, server):
        idx = server.index_matrix()
        server.set_normalization(idx.min(axis=0), idx.max(axis=0))
        metrics = Metrics()
        query = np.full(2, 0.5)
        cols = [DEFAULT_SCHEMA.index("size"), DEFAULT_SCHEMA.index("mtime")]
        result = server.scan_knn(query, 5, metrics, attr_indices=cols)
        dists = [d for d, _ in result]
        assert len(result) == 5
        assert dists == sorted(dists)

    def test_scan_knn_k_larger_than_population(self, server):
        idx = server.index_matrix()
        server.set_normalization(idx.min(axis=0), idx.max(axis=0))
        result = server.scan_knn(np.full(DEFAULT_SCHEMA.dimension, 0.5), 100)
        assert len(result) == len(server)

    def test_scan_knn_requires_bounds(self, server):
        with pytest.raises(RuntimeError):
            server.scan_knn(np.zeros(DEFAULT_SCHEMA.dimension), 3)

    def test_lookup_filename(self, server):
        target = server.files[5]
        metrics = Metrics()
        hits = server.lookup_filename(target.filename, metrics)
        assert target in hits
        assert metrics.memory_records_scanned >= 1

    def test_lookup_missing_filename(self, server):
        assert server.lookup_filename("not-there.bin") == []


class TestSpace:
    def test_space_grows_with_files(self):
        a, b = StorageServer(0), StorageServer(1)
        a.add_files(make_files(10))
        b.add_files(make_files(40))
        assert b.space_bytes() > a.space_bytes()

    def test_repr(self, server):
        assert "StorageServer" in repr(server)
