"""Tests for the directory-tree baseline and the namespace-locality analysis."""

import numpy as np
import pytest

from repro.eval.recall import ground_truth_range, ground_truth_topk, recall
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.namespace.baseline import DirectoryTreeBaseline
from repro.namespace.builder import build_namespace
from repro.namespace.locality import (
    common_subtree,
    locality_ratio,
    query_locality_report,
)
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

from helpers import make_files


@pytest.fixture(scope="module")
def files():
    return make_files(200, clusters=5)


@pytest.fixture(scope="module")
def baseline(files):
    return DirectoryTreeBaseline(files, DEFAULT_SCHEMA)


class TestConstruction:
    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            DirectoryTreeBaseline([], DEFAULT_SCHEMA)

    def test_namespace_matches_population(self, baseline, files):
        assert len(baseline.tree) == len(files)

    def test_repr(self, baseline):
        assert "DirectoryTreeBaseline" in repr(baseline)


class TestPointQuery:
    def test_existing_filename_found(self, baseline, files):
        result = baseline.point_query(PointQuery(files[17].filename))
        assert result.found
        assert files[17] in result.files

    def test_missing_filename(self, baseline):
        assert not baseline.point_query(PointQuery("not-there.bin")).found

    def test_filename_query_walks_whole_namespace(self, baseline, files):
        result = baseline.point_query(PointQuery(files[0].filename))
        assert result.metrics.disk_index_accesses >= baseline.tree.num_directories
        assert result.metrics.disk_records_scanned == len(files)

    def test_path_lookup_is_cheap(self, baseline, files):
        by_name = baseline.point_query(PointQuery(files[3].filename))
        by_path = baseline.path_lookup(files[3].path)
        assert by_path.found
        assert files[3] in by_path.files
        assert by_path.latency < by_name.latency

    def test_path_lookup_missing(self, baseline):
        assert not baseline.path_lookup("/data/proj0/没有.dat").found

    def test_execute_dispatch(self, baseline, files):
        assert baseline.execute(PointQuery(files[0].filename)).found
        with pytest.raises(TypeError):
            baseline.execute(object())


class TestComplexQueries:
    def test_range_query_matches_ground_truth(self, baseline, files):
        q = RangeQuery(("mtime", "owner"), (2000.0, 1.0), (2400.0, 2.0))
        result = baseline.range_query(q)
        ideal = ground_truth_range(files, q)
        assert {f.file_id for f in result.files} == {f.file_id for f in ideal}
        assert recall(result.files, ideal) == 1.0

    def test_range_query_charges_full_scan(self, baseline, files):
        q = RangeQuery(("size",), (0.0,), (1e18,))
        result = baseline.range_query(q)
        assert result.metrics.disk_records_scanned == len(files)
        assert len(result.files) == len(files)

    def test_topk_query_matches_ground_truth(self, baseline, files):
        q = TopKQuery(("size", "mtime"), (float(files[5].get("size")), float(files[5].get("mtime"))), 8)
        result = baseline.topk_query(q)
        ideal = ground_truth_topk(files, q, DEFAULT_SCHEMA)
        assert len(result.files) == 8
        assert recall(result.files, ideal) >= 0.75  # ties at equal distance may differ
        assert result.distances == sorted(result.distances)

    def test_topk_k_larger_than_population(self, files):
        small = DirectoryTreeBaseline(files[:5], DEFAULT_SCHEMA)
        result = small.topk_query(TopKQuery(("size",), (1000.0,), 50))
        assert len(result.files) == 5

    def test_subtree_range_query_prunes_scan(self, baseline, files):
        q = RangeQuery(("size",), (0.0,), (1e18,))
        full = baseline.range_query(q)
        pruned = baseline.subtree_range_query("/data/proj0", q)
        assert pruned.metrics.disk_records_scanned < full.metrics.disk_records_scanned
        assert all(f.path.startswith("/data/proj0/") for f in pruned.files)

    def test_subtree_range_query_missing_root(self, baseline):
        q = RangeQuery(("size",), (0.0,), (1e18,))
        assert baseline.subtree_range_query("/no/such/dir", q).files == []


class TestSpaceAccounting:
    def test_index_space_positive_and_scales(self, files):
        small = DirectoryTreeBaseline(files[:50], DEFAULT_SCHEMA)
        large = DirectoryTreeBaseline(files, DEFAULT_SCHEMA)
        assert 0 < small.index_space_bytes() <= large.index_space_bytes()
        assert large.index_space_bytes_per_node() == large.index_space_bytes()


class TestLocality:
    def test_locality_ratio_bounds(self, files):
        tree = build_namespace(files)
        assert locality_ratio([], tree) == 0.0
        ratio = locality_ratio(files[:10], tree)
        assert 0.0 < ratio <= 1.0

    def test_locality_ratio_single_directory(self, files):
        tree = build_namespace(files)
        same_dir = [f for f in files if f.directory == files[0].directory]
        assert locality_ratio(same_dir, tree) == pytest.approx(1.0 / tree.num_directories)

    def test_common_subtree(self):
        a = FileMetadata("/p/x/a.dat", {"size": 1.0})
        b = FileMetadata("/p/x/b.dat", {"size": 1.0})
        c = FileMetadata("/p/y/c.dat", {"size": 1.0})
        d = FileMetadata("/q/d.dat", {"size": 1.0})
        assert common_subtree([a, b]) == "/p/x"
        assert common_subtree([a, b, c]) == "/p"
        assert common_subtree([a, d]) == "/"
        assert common_subtree([]) is None

    def test_query_locality_report(self, files):
        generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=5)
        queries = generator.mixed_complex_queries(15, 15, distribution="zipf", k=8)
        report = query_locality_report(files, queries)
        assert report.num_queries > 0
        assert 0.0 <= report.mean_locality_ratio <= 1.0
        assert 0.0 <= report.localizable_fraction <= 1.0
        assert 0.0 <= report.mean_subtree_fraction <= 1.0
        assert set(report.as_dict()) == {
            "num_queries",
            "mean_locality_ratio",
            "median_locality_ratio",
            "localizable_fraction",
            "mean_subtree_fraction",
        }

    def test_query_locality_report_point_queries_ignored(self, files):
        report = query_locality_report(files, [PointQuery("whatever.dat")])
        assert report.num_queries == 0
        assert report.mean_locality_ratio == 0.0


class TestCrossSystemAgreement:
    """The directory baseline must agree with the other exact systems."""

    def test_range_agrees_with_dbms(self, files, baseline):
        from repro.baselines.dbms import DBMSBaseline

        dbms = DBMSBaseline(files, DEFAULT_SCHEMA)
        q = RangeQuery(("read_bytes", "owner"), (0.0, 0.0), (1e7, 3.0))
        a = {f.file_id for f in baseline.range_query(q).files}
        b = {f.file_id for f in dbms.range_query(q).files}
        assert a == b

    def test_directory_walk_slower_than_smartstore(self, files):
        from repro.core.smartstore import SmartStore, SmartStoreConfig

        store = SmartStore.build(files, SmartStoreConfig(num_units=10, seed=1))
        baseline = DirectoryTreeBaseline(files, DEFAULT_SCHEMA)
        q = RangeQuery(("mtime",), (2000.0,), (2200.0,))
        assert baseline.range_query(q).latency > store.range_query(q).latency
