"""Tests for failure injection, availability accounting and root failover."""

import pytest

from repro.cluster.failures import FailureInjector
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import RangeQuery, TopKQuery

from helpers import make_files


@pytest.fixture(scope="module")
def files():
    return make_files(240, clusters=6)


@pytest.fixture()
def store(files):
    return SmartStore.build(files, SmartStoreConfig(num_units=12, seed=5))


@pytest.fixture()
def injector(store):
    return FailureInjector(store, seed=3)


class TestCrashRecover:
    def test_initially_everything_alive(self, injector, store):
        assert injector.failed_units == set()
        report = injector.availability_report()
        assert report.failed_units == 0
        assert report.alive_units == store.cluster.num_units
        assert report.file_availability == 1.0
        assert report.root_reachable

    def test_crash_and_recover_single_unit(self, injector):
        injector.crash_unit(0)
        assert not injector.is_alive(0)
        assert injector.failed_units == {0}
        injector.recover_unit(0)
        assert injector.is_alive(0)
        assert injector.failed_units == set()

    def test_crash_unknown_unit_rejected(self, injector):
        with pytest.raises(KeyError):
            injector.crash_unit(9999)

    def test_crash_random_units(self, injector, store):
        chosen = injector.crash_random_units(3)
        assert len(chosen) == len(set(chosen)) == 3
        assert all(0 <= u < store.cluster.num_units for u in chosen)

    def test_crash_more_than_alive_rejected(self, injector, store):
        with pytest.raises(ValueError):
            injector.crash_random_units(store.cluster.num_units + 1)

    def test_recover_all(self, injector):
        injector.crash_random_units(4)
        injector.recover_all()
        assert injector.failed_units == set()


class TestAvailabilityReport:
    def test_file_availability_decreases_with_crashes(self, injector):
        baseline = injector.availability_report().file_availability
        injector.crash_random_units(4)
        degraded = injector.availability_report().file_availability
        assert degraded < baseline == 1.0
        assert degraded > 0.0

    def test_report_counts_index_units(self, injector, store):
        # Crash every unit hosting an index unit: all of them lose their host.
        hosts = {n.hosted_on for n in store.tree.index_units() if n.hosted_on is not None}
        injector.crash_units(hosts)
        report = injector.availability_report()
        assert report.index_units_lost_host == len(store.tree.index_units())
        assert report.index_units_rehostable <= report.index_units_lost_host

    def test_orphaned_group_detection(self, injector, store):
        group = store.tree.first_level_groups()[0]
        injector.crash_units(group.descendant_unit_ids())
        report = injector.availability_report()
        assert report.orphaned_groups >= 1

    def test_as_dict_keys(self, injector):
        d = injector.availability_report().as_dict()
        assert {"failed_units", "file_availability", "root_reachable"} <= set(d)


class TestRootFailover:
    def test_root_survives_primary_crash_via_replicas(self, injector, store):
        primary = store.tree.root.hosted_on
        if store.tree.root.replica_hosts:
            injector.crash_unit(primary)
            assert injector.root_reachable()

    def test_failover_noop_when_primary_alive(self, injector, store):
        report = injector.root_failover()
        assert not report.failed_over
        assert report.new_host == store.tree.root.hosted_on
        assert report.messages == 0

    def test_failover_promotes_surviving_host(self, injector, store):
        primary = store.tree.root.hosted_on
        injector.crash_unit(primary)
        report = injector.root_failover()
        assert report.failed_over
        assert report.old_host == primary
        assert report.new_host is not None and report.new_host != primary
        assert injector.is_alive(report.new_host)
        assert report.messages >= len(store.tree.first_level_groups())
        assert store.tree.root.hosted_on == report.new_host

    def test_failover_with_no_survivors(self, injector, store):
        injector.crash_units(store.cluster.unit_ids())
        report = injector.root_failover()
        assert not report.failed_over
        assert report.new_host is None
        assert not injector.root_reachable()


class TestDegradedQueries:
    def test_no_failures_means_no_loss(self, injector, files):
        q = RangeQuery(("size",), (0.0,), (1e18,))
        degraded = injector.run_degraded_query(q)
        assert degraded.lost_files == []
        assert degraded.availability == 1.0
        assert len(degraded.available_files) == len(degraded.result.files)

    def test_crash_loses_that_units_results(self, injector, store):
        q = RangeQuery(("size",), (0.0,), (1e18,))
        full = store.range_query(q)
        # Crash the unit holding the first returned file.
        victim = injector.unit_of_file(full.files[0])
        assert victim is not None
        injector.crash_unit(victim)
        degraded = injector.run_degraded_query(q)
        assert degraded.lost_files
        assert all(injector.unit_of_file(f) == victim for f in degraded.lost_files)
        assert degraded.availability < 1.0

    def test_empty_result_availability_is_one(self, injector):
        q = RangeQuery(("size",), (1e17,), (1e18,))
        assert injector.run_degraded_query(q).availability == 1.0

    def test_degraded_recall_monotone_in_failures(self, injector, files):
        generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=11)
        queries = generator.mixed_complex_queries(10, 10, distribution="zipf", k=8)
        healthy = injector.degraded_recall(queries)
        injector.crash_random_units(6)
        degraded = injector.degraded_recall(queries)
        assert 0.0 <= degraded <= healthy <= 1.0

    def test_point_queries_ignored_by_degraded_recall(self, injector):
        from repro.workloads.types import PointQuery

        assert injector.degraded_recall([PointQuery("nothing.dat")]) == 1.0

    def test_repr(self, injector):
        injector.crash_unit(1)
        assert "failed=[1]" in repr(injector)
