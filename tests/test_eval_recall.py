"""Tests for the recall measure and brute-force ground truth."""

import numpy as np
import pytest

from repro.eval.recall import ground_truth_range, ground_truth_topk, recall
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.workloads.types import RangeQuery, TopKQuery

from helpers import make_files


@pytest.fixture(scope="module")
def files():
    return make_files(100, clusters=4)


class TestRecall:
    def test_perfect_recall(self, files):
        assert recall(files[:10], files[:10]) == 1.0

    def test_partial_recall(self, files):
        assert recall(files[:5], files[:10]) == 0.5

    def test_zero_recall(self, files):
        assert recall(files[10:20], files[:10]) == 0.0

    def test_empty_ideal_set_is_one(self, files):
        assert recall(files[:5], []) == 1.0

    def test_extra_reported_files_do_not_hurt(self, files):
        assert recall(files, files[:10]) == 1.0


class TestGroundTruthRange:
    def test_matches_predicate(self, files):
        q = RangeQuery(("mtime",), (2000.0,), (2300.0,))
        ideal = ground_truth_range(files, q)
        assert ideal
        for f in ideal:
            assert 2000.0 <= f.attributes["mtime"] <= 2300.0
        for f in files:
            if f not in ideal:
                assert not f.matches_ranges(q.attributes, q.lower, q.upper)

    def test_empty_window(self, files):
        q = RangeQuery(("mtime",), (9e9,), (1e10,))
        assert ground_truth_range(files, q) == []


class TestGroundTruthTopK:
    def test_returns_k_files(self, files):
        q = TopKQuery(("size", "mtime"), (4096.0, 2100.0), k=7)
        assert len(ground_truth_topk(files, q, DEFAULT_SCHEMA)) == 7

    def test_k_capped_at_population(self, files):
        q = TopKQuery(("size",), (1.0,), k=10_000)
        assert len(ground_truth_topk(files, q, DEFAULT_SCHEMA)) == len(files)

    def test_empty_population(self):
        q = TopKQuery(("size",), (1.0,), k=3)
        assert ground_truth_topk([], q, DEFAULT_SCHEMA) == []

    def test_anchor_is_its_own_nearest_neighbour(self, files):
        anchor = files[17]
        q = TopKQuery(
            ("size", "mtime", "owner"),
            (anchor.attributes["size"], anchor.attributes["mtime"], anchor.attributes["owner"]),
            k=1,
        )
        ideal = ground_truth_topk(files, q, DEFAULT_SCHEMA)
        assert ideal[0].file_id == anchor.file_id

    def test_results_ordered_by_distance(self, files):
        q = TopKQuery(("size", "mtime"), (8192.0, 3100.0), k=10)
        ideal = ground_truth_topk(files, q, DEFAULT_SCHEMA)
        sizes = np.array([np.log1p(f.attributes["size"]) for f in ideal])
        mtimes = np.array([f.attributes["mtime"] for f in ideal])
        all_sizes = np.log1p([f.attributes["size"] for f in files])
        all_mtimes = [f.attributes["mtime"] for f in files]
        lo = np.array([min(all_sizes), min(all_mtimes)])
        hi = np.array([max(all_sizes), max(all_mtimes)])
        span = hi - lo
        target = (np.array([np.log1p(8192.0), 3100.0]) - lo) / span
        pts = (np.stack([sizes, mtimes], axis=1) - lo) / span
        dists = np.linalg.norm(pts - target, axis=1)
        assert np.all(np.diff(dists) >= -1e-9)

    def test_explicit_bounds_accepted(self, files):
        q = TopKQuery(("size",), (4096.0,), k=5)
        lower = np.zeros(DEFAULT_SCHEMA.dimension)
        upper = np.full(DEFAULT_SCHEMA.dimension, 20.0)
        ideal = ground_truth_topk(files, q, DEFAULT_SCHEMA, raw_lower=lower, raw_upper=upper)
        assert len(ideal) == 5
