"""Backwards compatibility: every legacy entry point keeps working.

The unified client API (``repro.api``) is the front door new code should
use; the legacy call-site patterns below — the facades of PRs 1-4 — must
keep answering identically while announcing their deprecation.
"""

import warnings

import pytest

from repro.api import DeploymentSpec, connect
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.replication.group import ReplicationConfig, build_replica_group
from repro.service.cache import result_fingerprint
from repro.service.service import QueryService
from repro.shard.router import ShardRouter, build_shard_router
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

from helpers import make_files

CONFIG = SmartStoreConfig(num_units=6, seed=3, search_breadth=64)


@pytest.fixture(scope="module")
def population():
    return make_files(60, clusters=4)


@pytest.fixture(scope="module")
def store(population):
    return SmartStore.build(population, CONFIG)


def deprecated_call(fn, *args, **kwargs):
    """Run a legacy call, asserting it both works and warns."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = fn(*args, **kwargs)
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    ), f"{fn} did not emit a DeprecationWarning"
    return result


class TestLegacyFacadeMethods:
    """Every historical SmartStore call-site pattern still passes."""

    def test_point_query_with_string(self, store, population):
        result = deprecated_call(store.point_query, population[0].filename)
        assert result.found

    def test_point_query_with_object(self, store, population):
        result = deprecated_call(store.point_query, PointQuery(population[0].filename))
        assert result.found

    def test_range_query_with_sequences(self, store):
        result = deprecated_call(
            store.range_query, ("size", "mtime"), (0.0, 0.0), (1e12, 1e7)
        )
        assert result.found

    def test_range_query_with_object(self, store):
        query = RangeQuery(("size",), (0.0,), (1e12,))
        assert deprecated_call(store.range_query, query).found

    def test_topk_query_with_sequences(self, store):
        result = deprecated_call(
            store.topk_query, ("size", "mtime"), (8192.0, 2100.0), k=5
        )
        assert len(result.files) == 5

    def test_topk_query_with_object(self, store):
        query = TopKQuery(("size", "mtime"), (8192.0, 2100.0), 5)
        assert len(deprecated_call(store.topk_query, query).files) == 5

    def test_deprecated_answers_match_execute(self, store):
        query = RangeQuery(("size",), (0.0,), (1e12,))
        legacy = deprecated_call(store.range_query, query)
        assert result_fingerprint(legacy) == result_fingerprint(store.execute(query))

    def test_execute_itself_does_not_warn(self, store):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            store.execute(RangeQuery(("size",), (0.0,), (1e12,)))

    def test_serve_still_builds_a_service(self, store):
        service = deprecated_call(store.serve)
        try:
            assert isinstance(service, QueryService)
            assert service.execute(RangeQuery(("size",), (0.0,), (1e12,))).found
        finally:
            service.close()


class TestLegacyBuilders:
    def test_build_shard_router_still_works(self, population):
        router = deprecated_call(build_shard_router, population, 2, CONFIG)
        try:
            assert isinstance(router, ShardRouter)
            assert router.execute(RangeQuery(("size",), (0.0,), (1e12,))).found
        finally:
            router.close()

    def test_build_replica_group_still_works(self, population):
        group = deprecated_call(
            build_replica_group,
            population,
            CONFIG,
            replication=ReplicationConfig(replicas=1),
        )
        try:
            assert group.execute(RangeQuery(("size",), (0.0,), (1e12,))).found
        finally:
            group.close()

    def test_legacy_builders_match_the_new_front_door(self, population, tmp_path):
        query = TopKQuery(("size", "mtime"), (8192.0, 2100.0), 7)
        router = deprecated_call(build_shard_router, population, 2, CONFIG)
        try:
            legacy_fp = result_fingerprint(router.execute(query))
        finally:
            router.close()
        spec = DeploymentSpec(topology="sharded", store=CONFIG, shards=2)
        with connect(spec, population) as client:
            assert result_fingerprint(client.execute(query).result) == legacy_fp


class TestNewFrontDoorDoesNotWarn:
    def test_connect_and_execute_warn_free(self, population, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            spec = DeploymentSpec(topology="sharded_replicated", store=CONFIG, shards=2)
            with connect(spec, population) as client:
                client.execute(RangeQuery(("size",), (0.0,), (1e12,)))
                client.execute(PointQuery(population[0].filename))
