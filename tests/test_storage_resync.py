"""Snapshot-shipping resync: divergent replicas are repaired by shipping
the primary's published segments, not by rebuilding the whole index.

The legacy repair (``_resync_rebuild``) re-indexes the primary's full
materialised population — O(corpus) of SVD/k-means per repair.  With
tiered storage on both ends the group ships the manifest plus whatever
segments the member is missing, cold-starts the member from the copy and
replays only the WAL tail.  These tests pin the *choice* (ship counters
up, rebuild counter still zero), the metrics trail, and the fallback.
"""

from pathlib import Path

import pytest

from repro.api.client import connect
from repro.api.spec import DeploymentSpec
from repro.core.smartstore import SmartStoreConfig
from repro.obs.metrics import get_registry
from repro.storage import StorageConfig, has_snapshot

from helpers import make_files


def _spec(tmp_path, *, policy="checkpoint"):
    return DeploymentSpec(
        topology="replicated",
        store=SmartStoreConfig(num_units=4, seed=0, search_breadth=64),
        replicas=2,
        wal_dir=str(tmp_path / "wal"),
        storage=StorageConfig(
            root=str(tmp_path / "snap"),
            resident_segments=64,
            snapshot_policy=policy,
        ),
    )


def _diverge(group, member_id, file):
    """Plant a never-shipped record on one member (the ex-primary shape)."""
    member = group.members[member_id]
    with member.lock:
        member.pipeline.insert(file)


class TestSnapshotShipChosen:
    def test_resync_ships_instead_of_rebuilding(self, tmp_path):
        files = make_files(64, seed=1)
        registry = get_registry()
        ships_before = registry.counter("resync_snapshot_ship_total").value
        bytes_before = registry.counter("resync_snapshot_bytes_total").value

        client = connect(_spec(tmp_path), files[:60])
        group = client.store
        try:
            _diverge(group, 1, files[60])
            report = group.anti_entropy()
            assert report == {"checked": 2, "repaired": 1}

            # The choice under test: shipped, not rebuilt.
            assert group.snapshot_ships == 1
            assert group.rebuild_resyncs == 0
            assert group.snapshot_bytes > 0
            assert group.resyncs == 1

            # Metrics satellite: the registry counters moved too.
            assert (
                registry.counter("resync_snapshot_ship_total").value
                == ships_before + 1
            )
            assert (
                registry.counter("resync_snapshot_bytes_total").value
                == bytes_before + group.snapshot_bytes
            )

            # Repair actually converged, and the member now owns a real
            # snapshot root of its own (<root>/r1) it can cold-start from.
            prints = group.fingerprints()
            assert len(set(prints)) == 1 and None not in prints
            assert has_snapshot(Path(str(tmp_path / "snap")) / "r1")
        finally:
            client.close()

    def test_post_resync_writes_still_replicate(self, tmp_path):
        files = make_files(64, seed=2)
        client = connect(_spec(tmp_path), files[:56])
        group = client.store
        try:
            _diverge(group, 1, files[56])
            group.anti_entropy()
            assert group.snapshot_ships == 1

            for f in files[57:61]:
                client.insert(f)
            for member in group.members[1:]:
                group.pump(member)
            prints = group.fingerprints()
            assert len(set(prints)) == 1 and None not in prints
        finally:
            client.close()

    def test_second_resync_ships_incrementally(self, tmp_path):
        # Unchanged segments are skipped on the second ship: the bytes the
        # repeat repair moves stay below a fresh full copy's.
        files = make_files(72, seed=3)
        client = connect(_spec(tmp_path), files[:64])
        group = client.store
        try:
            _diverge(group, 1, files[64])
            group.anti_entropy()
            first = group.snapshot_bytes
            assert group.snapshot_ships == 1

            _diverge(group, 1, files[65])
            group.anti_entropy()
            second = group.snapshot_bytes - first
            assert group.snapshot_ships == 2
            assert group.rebuild_resyncs == 0
            assert 0 < second < first
        finally:
            client.close()


class TestRebuildFallback:
    def test_manual_policy_without_snapshot_falls_back(self, tmp_path):
        # "manual" never publishes inside resync; with no snapshot ever
        # published there is nothing to ship, so the legacy rebuild runs.
        files = make_files(56, seed=4)
        client = connect(_spec(tmp_path, policy="manual"), files[:52])
        group = client.store
        try:
            _diverge(group, 1, files[52])
            group.anti_entropy()
            assert group.snapshot_ships == 0
            assert group.rebuild_resyncs == 1
            prints = group.fingerprints()
            assert len(set(prints)) == 1 and None not in prints
        finally:
            client.close()

    def test_manual_policy_with_published_snapshot_ships(self, tmp_path):
        files = make_files(56, seed=5)
        client = connect(_spec(tmp_path, policy="manual"), files[:52])
        group = client.store
        try:
            client.checkpoint()
            _diverge(group, 1, files[52])
            group.anti_entropy()
            assert group.snapshot_ships == 1
            assert group.rebuild_resyncs == 0
        finally:
            client.close()
