"""Tests for the query service: execution, batching, admission, telemetry,
determinism and load generation."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.cluster.metrics import Metrics
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.service import (
    AdmissionController,
    LoadGenerator,
    QueryService,
    RequestBatcher,
    ServiceConfig,
    ServiceOverloadedError,
    ServiceRequest,
    kind_of,
    repeated_stream,
    replay_point_stream,
    result_fingerprint,
)
from repro.service.telemetry import QueryClassStats, ServiceTelemetry
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.replay import TraceReplayer
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

from helpers import make_files


@pytest.fixture(scope="module")
def population():
    return make_files(120, clusters=4)


@pytest.fixture(scope="module")
def mixed_stream(population):
    generator = QueryWorkloadGenerator(population, seed=5)
    return (
        generator.point_queries(10, existing_fraction=0.7)
        + generator.range_queries(6, distribution="zipf")
        + generator.topk_queries(6, k=5)
    )


def build_store(population, **overrides):
    config = SmartStoreConfig(num_units=8, seed=3, **overrides)
    return SmartStore.build(population, config)


# ---------------------------------------------------------------------------- config
class TestServiceConfig:
    def test_defaults_valid(self):
        config = ServiceConfig()
        assert config.max_in_flight >= config.batch_window

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_workers": 0},
            {"batch_window": 0},
            {"max_in_flight": 4, "batch_window": 8},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)


# ---------------------------------------------------------------------------- basic serving
class TestQueryServiceBasics:
    def test_execute_matches_direct_store(self, population, mixed_stream):
        direct = build_store(population)
        expected = [result_fingerprint(direct.execute(q)) for q in mixed_stream]
        with QueryService(build_store(population)) as service:
            got = [result_fingerprint(service.execute(q)) for q in mixed_stream]
        assert got == expected

    def test_execute_many_preserves_order(self, population, mixed_stream):
        direct = build_store(population)
        expected = [result_fingerprint(direct.execute(q)) for q in mixed_stream]
        with QueryService(build_store(population)) as service:
            results = service.execute_many(mixed_stream)
        assert [result_fingerprint(r) for r in results] == expected

    @pytest.mark.parametrize("cache_on,batching_on", [(True, True), (True, False), (False, True), (False, False)])
    def test_all_ablations_identical(self, population, mixed_stream, cache_on, batching_on):
        direct = build_store(population)
        expected = [result_fingerprint(direct.execute(q)) for q in mixed_stream]
        stream = repeated_stream(mixed_stream, 2, seed=1)
        expected_rep = [result_fingerprint(direct.execute(q)) for q in stream]
        config = ServiceConfig(
            max_workers=2, batch_window=8,
            cache_enabled=cache_on, batching_enabled=batching_on,
        )
        with QueryService(build_store(population), config) as service:
            results = service.execute_many(stream)
        assert [result_fingerprint(r) for r in results] == expected_rep
        # the original one-pass expectation is a prefix sanity check
        assert len(expected) == len(mixed_stream)

    def test_submit_returns_future(self, population, mixed_stream):
        with QueryService(build_store(population)) as service:
            future = service.submit(mixed_stream[0])
            service.drain()
            result = future.result()
        assert result is not None

    def test_submit_does_not_block_on_full_window(self, population, mixed_stream):
        """Filling the batching window hands the batch to the dispatcher;
        the submitter must get its futures back before any drain."""
        config = ServiceConfig(max_workers=2, batch_window=4, max_in_flight=64)
        with QueryService(build_store(population), config) as service:
            futures = [service.submit(q) for q in mixed_stream]
            assert len(futures) == len(mixed_stream)
            service.drain()
            assert all(f.done() for f in futures)

    def test_serve_convenience(self, population):
        store = build_store(population)
        service = store.serve()
        try:
            assert isinstance(service, QueryService)
            assert service.store is store
        finally:
            service.close()

    def test_closed_service_rejects_work(self, population, mixed_stream):
        service = QueryService(build_store(population))
        service.close()
        with pytest.raises(RuntimeError):
            service.execute(mixed_stream[0])
        with pytest.raises(RuntimeError):
            service.submit(mixed_stream[0])

    def test_unsupported_query_type(self, population):
        with QueryService(build_store(population)) as service:
            with pytest.raises(TypeError):
                service.execute("not-a-query")

    def test_cluster_metrics_accumulate(self, population, mixed_stream):
        store = build_store(population)
        with QueryService(store, ServiceConfig(cache_enabled=False)) as service:
            service.execute_many(mixed_stream)
        assert store.cluster.metrics.memory_index_accesses > 0


# ---------------------------------------------------------------------------- determinism
class TestDeterminism:
    def test_per_request_accounting_is_reproducible(self, population, mixed_stream):
        """Thread scheduling must not change any request's cost accounting."""
        stream = repeated_stream(mixed_stream, 2, seed=2)

        def run(workers):
            with QueryService(
                build_store(population),
                ServiceConfig(max_workers=workers, batch_window=8),
            ) as service:
                results = service.execute_many(stream)
            return [(r.metrics.messages, r.latency, result_fingerprint(r)) for r in results]

        assert run(1) == run(4)

    def test_home_units_derived_from_request_id(self, population):
        service_a = QueryService(build_store(population))
        service_b = QueryService(build_store(population))
        try:
            req_a = service_a._new_request(PointQuery("x"))
            req_b = service_b._new_request(PointQuery("x"))
            assert (req_a.request_id, req_a.seed, req_a.home_unit) == (
                req_b.request_id, req_b.seed, req_b.home_unit,
            )
        finally:
            service_a.close()
            service_b.close()


# ---------------------------------------------------------------------------- batching / admission
class TestRequestBatcher:
    def _request(self, i, query):
        return ServiceRequest(request_id=i, query=query, seed=i, home_unit=0)

    def test_window_fills(self):
        batcher = RequestBatcher(window=3)
        assert batcher.add(self._request(0, PointQuery("a"))) is None
        assert batcher.add(self._request(1, PointQuery("b"))) is None
        batch = batcher.add(self._request(2, PointQuery("c")))
        assert batch is not None and len(batch) == 3
        assert batcher.pending == 0

    def test_flush_partial(self):
        batcher = RequestBatcher(window=10)
        batcher.add(self._request(0, PointQuery("a")))
        assert len(batcher.flush()) == 1
        assert batcher.flush() == []

    def test_coalesce_groups_identical_queries(self):
        batcher = RequestBatcher(window=8)
        q1, q2 = PointQuery("same"), PointQuery("other")
        requests = [
            self._request(0, q1), self._request(1, q2),
            self._request(2, q1), self._request(3, PointQuery("same")),
        ]
        groups = batcher.coalesce(requests)
        assert [len(members) for _, members in groups] == [3, 1]
        assert groups[0][0] == q1
        assert batcher.coalesced_requests == 2

    def test_coalesce_same_window_range_queries(self):
        batcher = RequestBatcher(window=4)
        r1 = RangeQuery(("size",), (0.0,), (10.0,))
        r2 = RangeQuery(("size",), (0.0,), (10.0,))
        r3 = RangeQuery(("size",), (0.0,), (11.0,))
        groups = batcher.coalesce(
            [self._request(0, r1), self._request(1, r2), self._request(2, r3)]
        )
        assert [len(m) for _, m in groups] == [2, 1]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RequestBatcher(window=0)


class TestAdmissionController:
    def test_blocking_admit_and_release(self):
        controller = AdmissionController(2)
        assert controller.admit() and controller.admit()
        assert controller.in_flight == 2
        controller.release(2)
        assert controller.in_flight == 0
        assert controller.admitted == 2

    def test_non_blocking_rejects_at_limit(self):
        controller = AdmissionController(1, block=False)
        assert controller.admit()
        assert not controller.admit()
        assert controller.rejected == 1
        controller.release()
        assert controller.admit()

    def test_drain_returns_when_empty(self):
        controller = AdmissionController(4)
        controller.admit()
        controller.release()
        controller.drain()  # must not hang

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            AdmissionController(0)

    def test_service_overload_rejection(self, population, mixed_stream):
        config = ServiceConfig(
            max_in_flight=2, batch_window=2, block_on_overload=False
        )
        with QueryService(build_store(population), config) as service:
            # Occupy both admission slots out-of-band: the next submission
            # must be rejected rather than block.
            service.admission.admit()
            service.admission.admit()
            with pytest.raises(ServiceOverloadedError):
                service.execute(mixed_stream[0])
            assert service.telemetry.rejected == 1
            service.admission.release(2)


# ---------------------------------------------------------------------------- telemetry
class TestTelemetry:
    def test_kind_of(self):
        assert kind_of(PointQuery("f")) == "point"
        assert kind_of(RangeQuery(("size",), (0.0,), (1.0,))) == "range"
        assert kind_of(TopKQuery(("size",), (1.0,), 3)) == "topk"
        with pytest.raises(TypeError):
            kind_of(object())

    def test_percentiles_and_counts(self):
        stats = QueryClassStats("point")
        for latency in (0.001, 0.002, 0.003, 0.004):
            stats.observe(latency, Metrics())
        p = stats.percentiles()
        assert p["p50"] == pytest.approx(0.0025)
        assert p["p95"] >= p["p50"]
        assert p["p99"] >= p["p95"]
        assert stats.count == stats.engine_executions == 4

    def test_sources_tracked(self):
        stats = QueryClassStats("range")
        stats.observe(0.1, source="engine")
        stats.observe(0.0, source="cache")
        stats.observe(0.0, source="negative")
        stats.observe(0.1, source="coalesced")
        assert stats.cache_hits == 1 and stats.negative_hits == 1
        assert stats.coalesced == 1
        assert stats.cache_hit_rate == pytest.approx(0.5)
        with pytest.raises(ValueError):
            stats.observe(0.0, source="nonsense")

    def test_empty_percentiles_are_zero(self):
        stats = QueryClassStats("topk")
        assert stats.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert stats.mean_latency == 0.0

    def test_service_level_rollup(self, population, mixed_stream):
        with QueryService(build_store(population)) as service:
            service.execute_many(repeated_stream(mixed_stream, 2, seed=0))
            telemetry = service.telemetry
            assert telemetry.total_requests == 2 * len(mixed_stream)
            assert telemetry.wall_seconds > 0
            assert telemetry.throughput_qps > 0
            rows = telemetry.report_rows()
            assert {row[0] for row in rows} <= {"point", "range", "topk"}
            d = telemetry.as_dict()
            assert d["total_requests"] == 2 * len(mixed_stream)


# ---------------------------------------------------------------------------- load generation
class TestLoadGenerator:
    def test_closed_loop_matches_serial(self, population, mixed_stream):
        direct = build_store(population)
        expected = [result_fingerprint(direct.execute(q)) for q in mixed_stream]
        with QueryService(build_store(population)) as service:
            report = LoadGenerator(service, seed=1).closed_loop(
                mixed_stream, clients=3
            )
        assert report.mode == "closed"
        assert report.completed == len(mixed_stream)
        assert [result_fingerprint(r) for r in report.results] == expected

    def test_open_loop_matches_serial(self, population, mixed_stream):
        direct = build_store(population)
        expected = [result_fingerprint(direct.execute(q)) for q in mixed_stream]
        with QueryService(build_store(population)) as service:
            report = LoadGenerator(service, seed=1).open_loop(mixed_stream)
        assert report.mode == "open"
        assert report.rejected == 0
        assert [result_fingerprint(r) for r in report.results] == expected
        assert report.achieved_qps > 0
        assert report.total_simulated_latency > 0
        assert report.as_dict()["completed"] == len(mixed_stream)

    def test_open_loop_with_rate(self, population, mixed_stream):
        with QueryService(build_store(population)) as service:
            report = LoadGenerator(service, seed=1).open_loop(
                mixed_stream[:5], rate_qps=10_000.0
            )
        assert report.completed == 5

    def test_invalid_parameters(self, population):
        with QueryService(build_store(population)) as service:
            loadgen = LoadGenerator(service)
            with pytest.raises(ValueError):
                loadgen.closed_loop([], clients=0)
            with pytest.raises(ValueError):
                loadgen.open_loop([], rate_qps=0.0)

    def test_repeated_stream(self, mixed_stream):
        stream = repeated_stream(mixed_stream, 3, seed=4)
        assert len(stream) == 3 * len(mixed_stream)
        for query in mixed_stream:
            assert stream.count(query) >= 3  # identical queries may also repeat in base
        assert repeated_stream(mixed_stream, 3, seed=4) == stream
        with pytest.raises(ValueError):
            repeated_stream(mixed_stream, 0)

    def test_replay_point_stream(self):
        trace = generate_trace(
            SyntheticTraceConfig(name="t", n_files=50, n_requests=200, n_projects=4, seed=9)
        )
        replayer = TraceReplayer(trace)
        queries = replay_point_stream(replayer, limit=25)
        assert len(queries) <= 25
        assert all(isinstance(q, PointQuery) for q in queries)
        known = {f.filename for f in replayer.files}
        assert all(q.filename in known for q in queries)

    def test_replay_stream_through_service(self, population):
        trace = generate_trace(
            SyntheticTraceConfig(name="t", n_files=60, n_requests=150, n_projects=4, seed=2)
        )
        replayer = TraceReplayer(trace)
        store = SmartStore.build(replayer.files, SmartStoreConfig(num_units=6, seed=1))
        queries = replay_point_stream(replayer, limit=40)
        with QueryService(store) as service:
            results = service.execute_many(queries)
        assert all(r.found for r in results)


# ---------------------------------------------------------------------------- packaging sync
def test_pyproject_version_matches_package():
    """Satellite check: pyproject.toml version stays synced to repro.__init__."""
    import repro

    pyproject = Path(__file__).resolve().parent.parent / "pyproject.toml"
    text = pyproject.read_text(encoding="utf-8")
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE)
    assert match is not None, "pyproject.toml has no version field"
    assert match.group(1) == repro.__version__
