"""Wire protocol: framing robustness, lossless codecs, error envelopes.

The properties this file gates:

* **framing never hangs and never lies** — random, truncated, oversized
  and garbage byte streams surface as :class:`ProtocolError` /
  :class:`ConnectionClosed` promptly (hypothesis-driven), and a server
  fed garbage answers with a clean error envelope and drops the
  connection without applying anything;
* **codecs are lossless** — queries, options, results, receipts, pages
  and whole response envelopes round-trip byte-identically (result
  fingerprints are preserved exactly);
* **errors cross the wire as themselves** — a tampered cursor presented
  remotely raises :class:`InvalidCursorError` exactly as it does
  locally, and a mutation interrupted by a protocol error is never
  half-applied.
"""

import socket
import struct
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import DeploymentSpec, RequestOptions, connect
from repro.api.cursor import InvalidCursorError
from repro.api.options import DeadlineExceededError, PartialResultError
from repro.api.response import Response, ResultPage
from repro.cluster.metrics import Metrics
from repro.core.queries import QueryResult
from repro.core.smartstore import SmartStoreConfig
from repro.ingest.pipeline import MutationReceipt
from repro.server import protocol
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    ProtocolError,
    RemoteError,
    WireCodec,
    error_envelope,
    raise_remote_error,
    read_frame,
    write_frame,
)
from repro.server.server import StoreServer, parse_address
from repro.service.batching import ServiceOverloadedError
from repro.service.cache import result_fingerprint
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

from helpers import make_files

CODEC = WireCodec("json")
CONFIG = SmartStoreConfig(num_units=6, seed=3, search_breadth=64)


def socket_pair():
    return socket.socketpair()


def feed(raw: bytes):
    """A connected socket whose peer sent exactly ``raw`` then closed."""
    a, b = socket.socketpair()
    a.sendall(raw)
    a.close()
    return b


# ---------------------------------------------------------------------------- framing
class TestFraming:
    def test_round_trip(self):
        a, b = socket_pair()
        write_frame(a, {"id": 1, "op": "ping"}, CODEC)
        assert read_frame(b, CODEC) == {"id": 1, "op": "ping"}
        a.close(), b.close()

    def test_zero_length_frame_rejected(self):
        sock = feed(struct.pack("!I", 0))
        with pytest.raises(ProtocolError, match="empty frame"):
            read_frame(sock, CODEC)
        sock.close()

    def test_oversized_length_rejected_before_payload(self):
        # A hostile 4 GiB length prefix with no payload behind it must be
        # rejected from the prefix alone — instantly, no allocation.
        sock = feed(struct.pack("!I", 0xFFFFFFFF))
        with pytest.raises(ProtocolError, match="exceeds"):
            read_frame(sock, CODEC)
        sock.close()

    def test_outgoing_oversize_rejected(self):
        a, b = socket_pair()
        with pytest.raises(ProtocolError, match="outgoing frame"):
            write_frame(a, {"blob": "x" * 64}, CODEC, max_frame_bytes=32)
        a.close(), b.close()

    def test_eof_is_connection_closed(self):
        sock = feed(b"")
        with pytest.raises(ConnectionClosed):
            read_frame(sock, CODEC)
        sock.close()

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(raw=st.binary(min_size=0, max_size=64))
    def test_random_bytes_never_hang(self, raw):
        """Arbitrary bytes produce a clean error (or a dict for the rare
        accidentally-valid frame) — never a hang, never a crash."""
        sock = feed(raw)
        sock.settimeout(2.0)
        try:
            payload = read_frame(sock, CODEC)
            assert isinstance(payload, dict)
        except (ProtocolError, ConnectionClosed):
            pass
        finally:
            sock.close()

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(cut=st.integers(min_value=0, max_value=30))
    def test_truncated_frames_surface_as_closed(self, cut):
        raw = struct.pack("!I", 31) + b"{" + b"x" * 30
        sock = feed(raw[: 4 + cut])
        sock.settimeout(2.0)
        with pytest.raises((ProtocolError, ConnectionClosed)):
            read_frame(sock, CODEC)
        sock.close()

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(raw=st.binary(min_size=1, max_size=64))
    def test_garbage_payload_is_protocol_error(self, raw):
        """A well-framed but undecodable payload is a ProtocolError unless
        the bytes happen to be a valid JSON object."""
        sock = feed(struct.pack("!I", len(raw)) + raw)
        sock.settimeout(2.0)
        try:
            assert isinstance(read_frame(sock, CODEC), dict)
        except ProtocolError:
            pass
        finally:
            sock.close()

    def test_codec_rejects_non_object_payload(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            CODEC.decode(b"[1,2,3]")

    def test_msgpack_codec_gated(self):
        if not protocol.MSGPACK_AVAILABLE:
            with pytest.raises(ValueError, match="msgpack"):
                WireCodec("msgpack")
        with pytest.raises(ValueError, match="unknown codec"):
            WireCodec("xml")


# ---------------------------------------------------------------------------- codecs
def sample_result(files):
    metrics = Metrics()
    metrics.messages = 7
    metrics.units_visited = {0, 3}
    metrics.bloom_probes = 11
    return QueryResult(
        files=files[:3],
        metrics=metrics,
        latency=0.001234567890123,
        groups_visited=4,
        hops=2,
        found=True,
        distances=[0.125, 1.0 / 3.0, 2.7182818284590451],
        complete=False,
    )


class TestCodecs:
    @pytest.fixture(scope="class")
    def files(self):
        return make_files(20)

    def test_query_round_trip(self):
        for query in (
            PointQuery("/data/proj0/file0000.dat"),
            RangeQuery(("size", "mtime"), (0.0, 1e2), (1e9, 2e3)),
            TopKQuery(("size",), (1.0 / 3.0,), 5),
        ):
            assert protocol.query_from_wire(protocol.query_to_wire(query)) == query

    def test_query_from_wire_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            protocol.query_from_wire({"type": "warp"})
        with pytest.raises(ProtocolError):
            protocol.query_from_wire({"type": "range", "attributes": ["a"]})

    def test_options_round_trip(self):
        options = RequestOptions(
            deadline_s=0.25,
            on_deadline="fail",
            consistency="bounded",
            max_staleness=9,
            page_size=7,
            cursor="abc",
        )
        assert protocol.options_from_wire(protocol.options_to_wire(options)) == options
        assert protocol.options_to_wire(None) is None
        assert protocol.options_from_wire(None) is None

    def test_result_round_trip_preserves_fingerprint(self, files):
        result = sample_result(files)
        decoded = protocol.result_from_wire(protocol.result_to_wire(result))
        assert result_fingerprint(decoded) == result_fingerprint(result)
        assert decoded.distances == result.distances
        assert decoded.metrics.units_visited == result.metrics.units_visited
        assert decoded.complete is False

    def test_result_survives_json_serialisation(self, files):
        # The actual wire path: codec-encode the dict, decode, rebuild.
        result = sample_result(files)
        raw = CODEC.encode(protocol.result_to_wire(result))
        decoded = protocol.result_from_wire(CODEC.decode(raw))
        assert result_fingerprint(decoded) == result_fingerprint(result)

    def test_receipt_round_trip(self):
        receipt = MutationReceipt(
            seq=42, kind="modify", file_id=7, group_id=2, unit_id=5,
            known=True, latency=0.002,
        )
        assert protocol.receipt_from_wire(protocol.receipt_to_wire(receipt)) == receipt

    def test_response_round_trip_all_payloads(self, files):
        result = sample_result(files)
        for response in (
            Response(kind="query", latency_s=0.1, wall_s=0.2, result=result,
                     complete=False, deadline_expired=True,
                     attribution={"topology": "sharded", "shards": 2}),
            Response(kind="page", latency_s=0.1, wall_s=0.2,
                     page=ResultPage(files=files[:2], distances=[0.5, 0.75],
                                     index=3, cursor="tok", pinned=False)),
            Response(kind="mutation", latency_s=0.0, wall_s=0.0,
                     receipt=MutationReceipt(1, "insert", 9, 0, 1, False, 0.0)),
        ):
            decoded = protocol.response_from_wire(protocol.response_to_wire(response))
            assert decoded == response


# ---------------------------------------------------------------------------- error envelopes
class TestErrorEnvelopes:
    def test_known_errors_reraise_as_themselves(self):
        for exc in (
            InvalidCursorError("bad token"),
            DeadlineExceededError("too slow"),
            PartialResultError("shard down"),
            ServiceOverloadedError("full"),
            ProtocolError("bad frame"),
        ):
            envelope = error_envelope(3, exc)
            assert envelope == {
                "id": 3,
                "ok": False,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            }
            with pytest.raises(type(exc)):
                raise_remote_error(envelope["error"])

    def test_unknown_error_becomes_remote_error(self):
        with pytest.raises(RemoteError) as info:
            raise_remote_error({"type": "WeirdInternalError", "message": "boom"})
        assert info.value.error_type == "WeirdInternalError"
        assert info.value.remote_message == "boom"


# ---------------------------------------------------------------------------- live server robustness
@pytest.fixture(scope="module")
def server():
    files = make_files(60)
    client = connect(DeploymentSpec(topology="plain", store=CONFIG), files)
    srv = StoreServer(client, max_in_flight=8, owns_client=True).start()
    yield srv
    srv.close()


def dial(server):
    host, port = parse_address(server.address)
    conn = socket.create_connection((host, port), timeout=10.0)
    conn.settimeout(10.0)
    return conn


class TestServerRobustness:
    def test_parse_address(self):
        assert parse_address("tcp://127.0.0.1:7631") == ("127.0.0.1", 7631)
        for bad in ("127.0.0.1:1", "tcp://:1", "tcp://h", "tcp://h:x"):
            with pytest.raises(ValueError):
                parse_address(bad)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(raw=st.binary(min_size=1, max_size=48))
    def test_garbage_bytes_get_error_envelope_then_close(self, server, raw):
        """Whatever bytes arrive, the server answers (an envelope or a
        clean close) promptly — it never hangs the connection."""
        conn = dial(server)
        try:
            conn.sendall(struct.pack("!I", len(raw)) + raw)
            try:
                reply = read_frame(conn, CODEC)
            except (ConnectionClosed, ProtocolError):
                return  # server dropped us cleanly — acceptable for garbage
            if reply.get("ok"):
                return  # bytes happened to be a valid request
            assert "error" in reply
        finally:
            conn.close()

    def test_oversized_declared_frame_rejected(self, server):
        conn = dial(server)
        try:
            conn.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1))
            reply = read_frame(conn, CODEC)
            assert reply["ok"] is False
            assert reply["error"]["type"] == "ProtocolError"
        finally:
            conn.close()

    def test_unknown_op_is_protocol_error_and_connection_survives(self, server):
        conn = dial(server)
        try:
            write_frame(conn, {"id": 1, "op": "teleport"}, CODEC)
            reply = read_frame(conn, CODEC)
            assert reply["ok"] is False
            assert reply["error"]["type"] == "ProtocolError"
            # Same connection still serves valid requests afterwards.
            write_frame(conn, {"id": 2, "op": "ping"}, CODEC)
            assert read_frame(conn, CODEC)["ok"] is True
        finally:
            conn.close()

    def test_protocol_version_mismatch_rejected(self, server):
        conn = dial(server)
        try:
            write_frame(conn, {"id": 1, "op": "hello", "protocol": 99}, CODEC)
            reply = read_frame(conn, CODEC)
            assert reply["ok"] is False
        finally:
            conn.close()

    def test_garbage_never_half_applies_a_mutation(self, server):
        """A frame that dies mid-parse must not reach the write path."""
        epoch_before = server.client.epoch()
        conn = dial(server)
        try:
            # A mutation envelope with an undecodable body: framing is
            # fine, JSON is not.
            conn.sendall(struct.pack("!I", 24) + b'{"op":"mutate","kind":"i')
            try:
                read_frame(conn, CODEC)
            except (ConnectionClosed, ProtocolError):
                pass
        finally:
            conn.close()
        assert server.client.epoch() == epoch_before

    def test_malformed_mutation_payload_not_applied(self, server):
        epoch_before = server.client.epoch()
        conn = dial(server)
        try:
            write_frame(
                conn, {"id": 5, "op": "mutate", "kind": "insert", "file": {"nope": 1}},
                CODEC,
            )
            reply = read_frame(conn, CODEC)
            assert reply["ok"] is False
            assert reply["error"]["type"] == "ProtocolError"
        finally:
            conn.close()
        assert server.client.epoch() == epoch_before

    def test_max_in_flight_overload_envelope(self, files_server=None):
        """Requests beyond max_in_flight get ServiceOverloadedError."""
        files = make_files(40)
        client = connect(DeploymentSpec(topology="plain", store=CONFIG), files)
        srv = StoreServer(client, max_in_flight=1, owns_client=True).start()
        try:
            release = threading.Event()
            original = srv.client.execute

            def slow_execute(query, options=None):
                release.wait(5.0)
                return original(query, options)

            srv.client.execute = slow_execute
            c1, c2 = dial(srv), dial(srv)
            try:
                q = protocol.query_to_wire(PointQuery("/nope"))
                write_frame(c1, {"id": 1, "op": "execute", "query": q}, CODEC)
                # Give request 1 time to occupy the only slot.
                import time

                time.sleep(0.3)
                write_frame(c2, {"id": 2, "op": "execute", "query": q}, CODEC)
                reply2 = read_frame(c2, CODEC)
                assert reply2["ok"] is False
                assert reply2["error"]["type"] == "ServiceOverloadedError"
                release.set()
                assert read_frame(c1, CODEC)["ok"] is True
            finally:
                release.set()
                c1.close(), c2.close()
        finally:
            srv.close()


# ---------------------------------------------------------------------------- cursors over the wire
class TestRemoteCursors:
    @pytest.fixture(scope="class")
    def remote(self):
        files = make_files(80)
        client = connect(DeploymentSpec(topology="sharded", shards=2, store=CONFIG),
                         files)
        srv = StoreServer(client, owns_client=True).start()
        remote = connect(srv.address)
        yield remote
        remote.close()
        srv.close()

    QUERY = RangeQuery(("size",), (0.0,), (1e9,))

    def test_tampered_cursor_raises_invalid_cursor_error(self, remote):
        first = remote.execute(self.QUERY, RequestOptions(page_size=5))
        token = first.cursor
        assert token is not None
        tampered = token[:-4] + ("AAAA" if not token.endswith("AAAA") else "BBBB")
        with pytest.raises(InvalidCursorError):
            remote.execute(self.QUERY, RequestOptions(cursor=tampered))

    def test_cursor_for_wrong_query_rejected_remotely(self, remote):
        first = remote.execute(self.QUERY, RequestOptions(page_size=5))
        other = TopKQuery(("size",), (123.0,), 3)
        with pytest.raises(InvalidCursorError):
            remote.execute(other, RequestOptions(cursor=first.cursor))

    def test_garbage_cursor_rejected_remotely(self, remote):
        with pytest.raises(InvalidCursorError):
            remote.execute(self.QUERY, RequestOptions(cursor="!!not-base64!!"))
