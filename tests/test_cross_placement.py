"""Cross-placement equivalence: answers must not depend on where a request
lands or where records physically live.

Three layers of the guarantee, each exercised with distance ties and staged
mutations in flight:

* the same workload executed from **every home unit** of one deployment
  returns identical result fingerprints (the payload a client observes is
  a pure function of the logical population);
* two deployments with **different physical layouts** (unit counts, build
  seeds) over the same logical population answer identically under
  exhaustive search breadth — the property the PR 2 drain-equivalence gate
  and the sharded merge both rely on;
* a :class:`~repro.shard.router.ShardRouter` answers identically from
  every home unit and identically to its unsharded baseline.
"""

import numpy as np
import pytest

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.ingest.pipeline import IngestPipeline
from repro.metadata.file_metadata import FileMetadata
from repro.service.cache import result_fingerprint
from repro.shard import build_shard_router
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

from helpers import make_files

TIE_ATTRS = {
    "size": 8192.0,
    "ctime": 2000.0,
    "mtime": 2100.0,
    "atime": 2200.0,
    "read_bytes": 4096.0,
    "write_bytes": 1024.0,
    "access_count": 7.0,
    "owner": 2.0,
}


@pytest.fixture(scope="module")
def population():
    """A clustered population plus a block of identical records (exact ties)."""
    twins = [
        FileMetadata(path=f"/ties/twin{i:02d}.dat", attributes=dict(TIE_ATTRS))
        for i in range(10)
    ]
    return make_files(90, clusters=4) + twins


@pytest.fixture(scope="module")
def workload(population):
    generator = QueryWorkloadGenerator(population, seed=23)
    queries = (
        generator.point_queries(6, existing_fraction=0.7)
        + generator.range_queries(6, distribution="zipf")
        + generator.topk_queries(6, k=8, distribution="zipf")
    )
    # Tie-sensitive probes: anchored exactly on the twin block, with k below
    # the twin count so the result is decided purely by tie-breaking, plus a
    # range window covering all twins and a point query on a twin filename.
    queries.append(
        TopKQuery(("size", "mtime"), (TIE_ATTRS["size"], TIE_ATTRS["mtime"]), k=5)
    )
    queries.append(RangeQuery(("size",), (TIE_ATTRS["size"] - 1.0,), (TIE_ATTRS["size"] + 1.0,)))
    queries.append(PointQuery("twin03.dat"))
    return queries


@pytest.fixture(scope="module")
def mutations(population):
    return QueryWorkloadGenerator(population, seed=31).mutation_stream(8, 5, 4)


def _fingerprints(run_query, queries):
    return [result_fingerprint(run_query(q)) for q in queries]


def _engine_runner(store, home):
    def run(query):
        if isinstance(query, PointQuery):
            return store.engine.point_query(query, home_unit=home)
        if isinstance(query, RangeQuery):
            return store.engine.range_query(query, home_unit=home)
        return store.engine.topk_query(query, home_unit=home)

    return run


class TestSingleStoreCrossPlacement:
    def test_every_home_unit_answers_identically(self, population, workload, mutations):
        store = SmartStore.build(
            population, SmartStoreConfig(num_units=9, seed=1, search_breadth=64)
        )
        pipeline = IngestPipeline(store)
        homes = store.cluster.unit_ids()

        reference = _fingerprints(_engine_runner(store, homes[0]), workload)
        for home in homes[1:]:
            assert _fingerprints(_engine_runner(store, home), workload) == reference

        # Stage mutations (including a delete of a tie member, so deletion
        # masking participates in the tie-break) and re-check while they
        # are in flight, then again after the drain.
        tie_victim = next(f for f in population if f.path == "/ties/twin05.dat")
        pipeline.delete(tie_victim)
        for kind, file in mutations:
            getattr(pipeline, kind)(file)
        staged_reference = _fingerprints(_engine_runner(store, homes[0]), workload)
        for home in homes[1:]:
            assert (
                _fingerprints(_engine_runner(store, home), workload)
                == staged_reference
            )
        assert staged_reference != reference  # the mutations are visible

        pipeline.compactor.drain()
        drained_reference = _fingerprints(_engine_runner(store, homes[0]), workload)
        assert drained_reference == staged_reference
        for home in homes[1:]:
            assert (
                _fingerprints(_engine_runner(store, home), workload)
                == drained_reference
            )

    def test_different_layouts_answer_identically(self, population, workload):
        layouts = [
            SmartStoreConfig(num_units=9, seed=1, search_breadth=64),
            SmartStoreConfig(num_units=6, seed=11, search_breadth=64),
            SmartStoreConfig(num_units=13, seed=5, search_breadth=64),
        ]
        outcomes = []
        for config in layouts:
            store = SmartStore.build(population, config)
            outcomes.append(_fingerprints(store.execute, workload))
        assert outcomes[0] == outcomes[1] == outcomes[2]


class TestShardRouterCrossPlacement:
    @pytest.fixture(scope="class")
    def router(self, population):
        router = build_shard_router(
            population,
            3,
            SmartStoreConfig(num_units=9, seed=1, search_breadth=64),
        )
        yield router
        router.close()

    def test_router_matches_unsharded_baseline(self, population, workload, router, mutations):
        baseline = SmartStore.build(
            population, SmartStoreConfig(num_units=9, seed=1, search_breadth=64)
        )
        baseline_pipeline = IngestPipeline(baseline)
        assert _fingerprints(router.execute, workload) == _fingerprints(
            baseline.execute, workload
        )
        for kind, file in mutations:
            getattr(router, kind)(file)
            getattr(baseline_pipeline, kind)(file)
        assert _fingerprints(router.execute, workload) == _fingerprints(
            baseline.execute, workload
        )
        router.compactor.drain()
        baseline_pipeline.compactor.drain()
        assert _fingerprints(router.execute, workload) == _fingerprints(
            baseline.execute, workload
        )

    def test_router_answers_identically_from_every_home(self, workload, router):
        homes = router.cluster.unit_ids()
        reference = _fingerprints(_engine_runner(router, homes[0]), workload)
        for home in homes[1:]:
            assert _fingerprints(_engine_runner(router, home), workload) == reference
