"""Fixture tests for the repro-lint rules: every rule must fire on a
known-bad snippet and stay quiet on the matching known-good one, and the
engine's suppression + ratchet-baseline machinery must behave.

The last test is the self-hosting gate: the real tree under ``src/repro``
must lint clean against the committed baseline.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.engine import (
    load_baseline,
    run_lint,
    write_baseline,
)

REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"
BASELINE = REPO_SRC / "analysis" / "baseline.json"


def lint_tree(tmp_path, files):
    """Materialise {relpath: source} under tmp_path and lint it."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return run_lint(tmp_path)


def rules_fired(report):
    return sorted({f.rule for f in report.findings})


# ------------------------------------------------------------------ deadline


DEADLINE_CALLEE = """
def scan_groups(query, deadline=None):
    return query
"""


def test_deadline_drop_fires(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "core/q.py": DEADLINE_CALLEE,
            "shard/r.py": (
                "from core.q import scan_groups\n"
                "def route(query, deadline=None):\n"
                "    return scan_groups(query)\n"
            ),
        },
    )
    assert rules_fired(report) == ["deadline-propagation"]
    (finding,) = report.findings
    assert "scan_groups" in finding.message
    assert finding.symbol == "route"


@pytest.mark.parametrize(
    "call",
    [
        "scan_groups(query, deadline=deadline)",  # explicit keyword
        "scan_groups(query, deadline)",  # positional by name
        "scan_groups(query, **kwargs)",  # splat rides it through
        "scan_groups(query, request.deadline)",  # attribute by name
    ],
)
def test_deadline_forwarding_is_clean(tmp_path, call):
    report = lint_tree(
        tmp_path,
        {
            "core/q.py": DEADLINE_CALLEE,
            "shard/r.py": (
                "from core.q import scan_groups\n"
                "def route(query, request=None, deadline=None, **kwargs):\n"
                f"    return {call}\n"
            ),
        },
    )
    assert report.findings == []


def test_deadline_only_checked_when_caller_accepts_one(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "core/q.py": DEADLINE_CALLEE,
            "shard/r.py": (
                "from core.q import scan_groups\n"
                "def route(query):\n"
                "    return scan_groups(query)\n"
            ),
        },
    )
    assert report.findings == []


# ------------------------------------------------------------------ wal-first


def test_wal_first_fires_on_stage_before_append(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "ingest/p.py": (
                "class P:\n"
                "    def apply(self, kind, file):\n"
                "        self.store.stage_mutation(kind, file)\n"
                "        self.wal.append(kind, file)\n"
            ),
        },
    )
    assert rules_fired(report) == ["wal-first"]


def test_wal_first_clean_on_append_first_and_replay(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "ingest/p.py": (
                "class P:\n"
                "    def apply(self, kind, file):\n"
                "        self.wal.append(kind, file)\n"
                "        self.store.stage_mutation(kind, file)\n"
                "    def recover(self, records):\n"
                "        for kind, file in records:\n"
                "            self.store.stage_mutation(kind, file)\n"
                "    def collect(self, file, kept):\n"
                "        kept.append(file)\n"
                "        self.store.stage_mutation('insert', file)\n"
            ),
        },
    )
    assert report.findings == []


def test_wal_first_ignores_other_packages(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "service/s.py": (
                "def apply(store, wal, kind, file):\n"
                "    store.stage_mutation(kind, file)\n"
                "    wal.append(kind, file)\n"
            ),
        },
    )
    assert report.findings == []


# ------------------------------------------------------- lock-discipline


def test_lock_discipline_fires_on_fsync_under_lock(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "server/s.py": (
                "import os\n"
                "class S:\n"
                "    def flush(self, fd):\n"
                "        with self._lock:\n"
                "            os.fsync(fd)\n"
            ),
        },
    )
    assert rules_fired(report) == ["lock-discipline"]


def test_lock_discipline_clean_cases(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "server/s.py": (
                "import os\n"
                "class S:\n"
                "    def flush(self, fd):\n"
                "        with self._span('x'):\n"  # not a lock
                "            os.fsync(fd)\n"
                "    def defer(self, fd, pool):\n"
                "        with self._lock:\n"
                "            pool.submit(lambda: os.fsync(fd))\n"  # runs later
                "    def outside(self, fd):\n"
                "        with self._lock:\n"
                "            seq = self.next_seq()\n"
                "        os.fsync(fd)\n"
            ),
        },
    )
    assert report.findings == []


def test_lock_discipline_ignores_out_of_scope_dirs(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "replication/g.py": (
                "import time\n"
                "class G:\n"
                "    def slow(self):\n"
                "        with self.lock:\n"
                "            time.sleep(0.01)\n"  # deliberate fault injection
            ),
        },
    )
    assert report.findings == []


# -------------------------------------------------------- error-envelope


PROTOCOL_FIXTURE = """
_KNOWN_ERRORS = {
    "ValueError": ValueError,
    "ProtocolError": ValueError,
}
"""


def test_error_envelope_fires_on_unregistered_raise(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "server/protocol.py": PROTOCOL_FIXTURE,
            "server/w.py": (
                "def call(shard_id):\n"
                "    raise ShardUnavailableError(shard_id, 'gone')\n"
            ),
        },
    )
    assert rules_fired(report) == ["error-envelope"]
    (finding,) = report.findings
    assert "ShardUnavailableError" in finding.message


def test_error_envelope_clean_on_registered_and_transport(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "server/protocol.py": PROTOCOL_FIXTURE,
            "server/w.py": (
                "def call(payload):\n"
                "    if not payload:\n"
                "        raise ValueError('empty')\n"
                "    if payload == 'closed':\n"
                "        raise ConnectionClosed('eof')\n"
                "    raise ProtocolError('bad frame')\n"
            ),
            "replication/g.py": (
                "def fail():\n"
                "    raise GroupUnavailableError('out of scope dir')\n"
            ),
        },
    )
    assert report.findings == []


# --------------------------------------------------------- span-coverage


def test_span_coverage_fires_when_target_loses_its_span(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "server/server.py": (
                "class StoreServer:\n"
                "    def _execute(self, payload):\n"
                "        return payload\n"  # no span!
                "    def _mutate(self, payload):\n"
                "        with tracer.span('server.mutate'):\n"
                "            return payload\n"
            ),
        },
    )
    assert rules_fired(report) == ["span-coverage"]
    (finding,) = report.findings
    assert "StoreServer._execute" in finding.message


def test_span_coverage_fires_when_target_is_missing(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "server/server.py": (
                "class StoreServer:\n"
                "    def _execute(self, payload):\n"
                "        with tracer.span('server.execute'):\n"
                "            return payload\n"
                # _mutate renamed away entirely
            ),
        },
    )
    assert rules_fired(report) == ["span-coverage"]
    (finding,) = report.findings
    assert "StoreServer._mutate" in finding.message
    assert "catalog" in finding.message


# ------------------------------------------------------------ no-wall-clock


def test_wallclock_fires_in_core(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "core/c.py": (
                "import time, random\n"
                "def stamp():\n"
                "    return time.time(), random.random()\n"
            ),
        },
    )
    assert rules_fired(report) == ["no-wall-clock"]
    assert len(report.findings) == 2


def test_wallclock_clean_cases(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "core/c.py": (
                "import time\n"
                "import numpy as np\n"
                "def measure():\n"
                "    return time.perf_counter(), time.monotonic()\n"
                "def rng(seed):\n"
                "    return np.random.default_rng(seed)\n"
            ),
            "eval/e.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"  # out of scope: eval may timestamp
            ),
        },
    )
    assert report.findings == []


# ------------------------------------------------- bare-except / swallow


def test_bare_except_fires_anywhere(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "eval/e.py": (
                "def go():\n"
                "    try:\n"
                "        return 1\n"
                "    except:\n"
                "        return 0\n"
            ),
        },
    )
    assert rules_fired(report) == ["no-bare-except"]


def test_no_swallow_fires_on_silent_broad_handler(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "server/s.py": (
                "def loop(jobs):\n"
                "    for job in jobs:\n"
                "        try:\n"
                "            job()\n"
                "        except Exception:\n"
                "            continue\n"
            ),
        },
    )
    assert rules_fired(report) == ["no-swallow"]


def test_no_swallow_clean_cases(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "server/s.py": (
                "def loop(jobs, log):\n"
                "    for job in jobs:\n"
                "        try:\n"
                "            job()\n"
                "        except OSError:\n"  # narrow: deliberate
                "            pass\n"
                "        except Exception:\n"
                "            log.error('job failed')\n"  # recorded: fine
            ),
            "eval/e.py": (
                "def probe(run):\n"
                "    try:\n"
                "        run()\n"
                "    except Exception:\n"
                "        pass\n"  # out of scope: eval harness may sample
            ),
        },
    )
    assert report.findings == []


# ------------------------------------------------- suppression + baseline


def test_suppression_comment_waives_same_line_and_line_above(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "core/c.py": (
                "import time\n"
                "def stamp():\n"
                "    a = time.time()  # repro-lint: disable=no-wall-clock\n"
                "    # repro-lint: disable=no-wall-clock\n"
                "    b = time.time()\n"
                "    return a, b\n"
            ),
        },
    )
    assert report.findings == []
    assert len(report.suppressed) == 2


def test_suppression_is_per_rule(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "core/c.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()  # repro-lint: disable=lock-discipline\n"
            ),
        },
    )
    assert rules_fired(report) == ["no-wall-clock"]


def test_baseline_ratchets_but_does_not_grow(tmp_path):
    source = {
        "core/c.py": (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        ),
    }
    report = lint_tree(tmp_path, source)
    assert len(report.findings) == 1

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, report.findings)
    baseline = load_baseline(baseline_path)
    assert report.new_findings(baseline) == []

    # A second violation with the same fingerprint exceeds the allowance.
    (tmp_path / "core" / "c.py").write_text(
        "import time\n"
        "def stamp():\n"
        "    return time.time(), time.time()\n",
        encoding="utf-8",
    )
    grown = run_lint(tmp_path)
    assert len(grown.findings) == 2
    assert len(grown.new_findings(baseline)) == 1


def test_baseline_round_trip_format(tmp_path):
    source = {
        "core/c.py": "import time\ndef stamp():\n    return time.time()\n",
    }
    report = lint_tree(tmp_path, source)
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, report.findings)
    payload = json.loads(baseline_path.read_text())
    assert payload["version"] == 1
    assert payload["findings"] == [
        {
            "rule": "no-wall-clock",
            "path": "core/c.py",
            "symbol": "stamp",
            "count": 1,
        }
    ]


# ------------------------------------------------------------ self-hosting


def test_repo_lints_clean_against_committed_baseline():
    report = run_lint(REPO_SRC)
    baseline = load_baseline(BASELINE)
    fresh = report.new_findings(baseline)
    assert fresh == [], "\n".join(f.render() for f in fresh)
