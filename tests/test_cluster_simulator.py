"""Tests for the cluster simulator."""

import numpy as np
import pytest

from repro.cluster.simulator import ClusterSimulator
from repro.metadata.attributes import DEFAULT_SCHEMA

from helpers import make_files


class TestClusterSimulator:
    def test_server_creation(self):
        sim = ClusterSimulator(8)
        assert sim.num_units == 8
        assert sim.unit_ids() == list(range(8))
        assert len(list(sim)) == 8

    def test_invalid_unit_count(self):
        with pytest.raises(ValueError):
            ClusterSimulator(0)

    def test_random_home_unit_in_range(self):
        sim = ClusterSimulator(5, seed=1)
        homes = {sim.random_home_unit() for _ in range(50)}
        assert homes <= set(range(5))
        assert len(homes) > 1  # not stuck on one unit

    def test_total_files(self):
        sim = ClusterSimulator(3)
        files = make_files(12)
        for i, f in enumerate(files):
            sim.server(i % 3).add_file(f)
        assert sim.total_files() == 12

    def test_install_normalization_reaches_all_servers(self):
        sim = ClusterSimulator(4)
        files = make_files(8)
        for i, f in enumerate(files):
            sim.server(i % 4).add_file(f)
        lower = np.zeros(DEFAULT_SCHEMA.dimension)
        upper = np.full(DEFAULT_SCHEMA.dimension, 1e12)
        sim.install_normalization(lower, upper)
        for server in sim:
            server.normalized_matrix()  # must not raise

    def test_space_per_unit(self):
        sim = ClusterSimulator(2)
        for f in make_files(6):
            sim.server(0).add_file(f)
        space = sim.space_bytes_per_unit()
        assert space[0] > space[1]

    def test_metrics_snapshot_and_reset(self):
        sim = ClusterSimulator(2)
        sim.metrics.record_message(4)
        snap = sim.snapshot_metrics()
        assert snap.messages == 4
        sim.reset_metrics()
        assert sim.metrics.messages == 0
        assert snap.messages == 4  # snapshot unaffected

    def test_latency_uses_cost_model(self):
        sim = ClusterSimulator(2)
        sim.metrics.record_message(10)
        assert sim.latency() == pytest.approx(10 * sim.cost_model.network_hop_latency)

    def test_seeded_home_choice_reproducible(self):
        a = ClusterSimulator(10, seed=5)
        b = ClusterSimulator(10, seed=5)
        assert [a.random_home_unit() for _ in range(10)] == [b.random_home_unit() for _ in range(10)]
