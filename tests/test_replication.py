"""Tests for replica groups: shipping, lag, reads, failover, anti-entropy."""

import time

import pytest

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.wal import WALRecord
from repro.metadata.file_metadata import FileMetadata
from repro.replication import (
    FaultInjector,
    ReplicaGroup,
    ReplicationConfig,
    build_replica_group,
    population_fingerprint,
)
from repro.service import QueryService, ServiceConfig
from repro.service.cache import result_fingerprint
from repro.shard.router import build_shard_router
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery

from helpers import make_files

CONFIG = SmartStoreConfig(num_units=6, seed=2, search_breadth=64)


@pytest.fixture(scope="module")
def files():
    return make_files(100, clusters=4)


@pytest.fixture(scope="module")
def baseline(files):
    return SmartStore.build(files, CONFIG)


@pytest.fixture(scope="module")
def workload(files):
    generator = QueryWorkloadGenerator(files, seed=17)
    return (
        generator.point_queries(6, existing_fraction=0.75)
        + generator.range_queries(6, distribution="zipf")
        + generator.topk_queries(6, k=6, distribution="zipf")
    )


@pytest.fixture()
def group(files):
    group = build_replica_group(
        files, CONFIG, replication=ReplicationConfig(replicas=2, max_lag=8)
    )
    yield group
    group.close()


class TestReplicaGroupBasics:
    def test_members_are_identical_builds(self, group):
        prints = group.fingerprints()
        assert len(prints) == 3
        assert len(set(prints)) == 1

    def test_reads_match_unreplicated_baseline(self, group, baseline, workload):
        for query in workload:
            assert result_fingerprint(group.execute(query)) == result_fingerprint(
                baseline.execute(query)
            )

    def test_reads_rotate_across_members(self, group, workload):
        for query in workload:
            group.execute(query)
        # Round-robin rotation: every member served some reads, none
        # counted as degraded (everyone healthy).
        assert group.reads_served == len(workload)
        assert group.degraded_reads == 0
        assert all(m.tracker.successes > 0 for m in group.members)

    def test_rejects_single_member(self, files):
        store = SmartStore.build(files, CONFIG)
        from repro.replication.group import Replica

        with pytest.raises(ValueError):
            ReplicaGroup([Replica(0, store, IngestPipeline(store))])

    def test_replication_config_validation(self):
        with pytest.raises(ValueError):
            ReplicationConfig(replicas=0)
        with pytest.raises(ValueError):
            ReplicationConfig(mode="quorum")
        with pytest.raises(ValueError):
            ReplicationConfig(max_lag=0)


class TestShippingAndLag:
    def test_async_writes_ship_within_bounded_window(self, files):
        group = build_replica_group(
            files, CONFIG, replication=ReplicationConfig(replicas=1, max_lag=3)
        )
        try:
            generator = QueryWorkloadGenerator(files, seed=23)
            for kind, file in generator.mutation_stream(8, 3, 3):
                getattr(group, kind)(file)
            # The write path pumps the replica back inside the window.
            assert group.members[1].lag() <= 3
            assert group.max_observed_lag <= 3
        finally:
            group.close()

    def test_sync_mode_leaves_no_lag(self, files):
        group = build_replica_group(
            files, CONFIG, replication=ReplicationConfig(replicas=2, mode="sync")
        )
        try:
            generator = QueryWorkloadGenerator(files, seed=23)
            for kind, file in generator.mutation_stream(6, 2, 2):
                getattr(group, kind)(file)
            assert all(m.lag() == 0 for m in group.members)
            watermark = group.primary.applied_seq
            assert all(m.applied_seq == watermark for m in group.members)
        finally:
            group.close()

    def test_read_your_writes_from_any_replica(self, group, files):
        new = FileMetadata(
            path="/ingest/ryw.dat", attributes=dict(files[3].attributes)
        )
        group.insert(new)
        # Ask more times than there are members: every replica must serve
        # the staged insert (catch-up-on-read) even in async mode.
        for _ in range(len(group.members) + 1):
            assert group.execute(PointQuery("ryw.dat")).found

    def test_wal_first_primary_ships_logged_records(self, files, tmp_path):
        group = build_replica_group(
            files,
            CONFIG,
            replication=ReplicationConfig(replicas=1, mode="sync"),
            wal_path=tmp_path / "primary.wal",
        )
        try:
            new = FileMetadata(
                path="/ingest/durable.dat", attributes=dict(files[5].attributes)
            )
            receipt = group.insert(new)
            assert group.wal is not None and group.wal.appended == 1
            # The replica archived the shipped segment in its OWN log
            # (same sequence numbering), so a promotion stays durable.
            replica_wal = group.members[1].pipeline.wal
            assert replica_wal is not None
            assert replica_wal.path.name == "primary.wal.r1"
            assert replica_wal.appended == 1
            assert replica_wal.last_seq == receipt.seq
            assert group.members[1].applied_seq == receipt.seq
        finally:
            group.close()


class TestFailover:
    def test_write_failover_promotes_freshest_replica(self, group, files):
        generator = QueryWorkloadGenerator(files, seed=29)
        stream = generator.mutation_stream(6, 2, 2)
        for kind, file in stream[:5]:
            getattr(group, kind)(file)
        injector = FaultInjector(group)
        injector.crash_primary()
        for kind, file in stream[5:]:
            receipt = getattr(group, kind)(file)
            assert receipt is not None
        assert group.failovers == 1
        assert group.primary_id != 0
        # The promoted replica carries every acked write.
        assert group.primary.applied_seq == len(stream)

    def test_failover_is_invisible_to_readers(self, group, workload, files):
        reference = SmartStore.build(files, CONFIG)
        pipeline = IngestPipeline(reference)
        generator = QueryWorkloadGenerator(files, seed=31)
        stream = generator.mutation_stream(5, 2, 2)
        for kind, file in stream:
            getattr(group, kind)(file)
            getattr(pipeline, kind)(file)
        FaultInjector(group).crash_primary()
        for query in workload:
            assert result_fingerprint(group.execute(query)) == result_fingerprint(
                reference.execute(query)
            )
        assert group.degraded_reads > 0

    def test_promotion_stays_durable(self, files, tmp_path):
        group = build_replica_group(
            files,
            CONFIG,
            replication=ReplicationConfig(replicas=1, mode="sync"),
            wal_path=tmp_path / "group.wal",
        )
        try:
            first = FileMetadata(
                path="/ingest/pre.dat", attributes=dict(files[2].attributes)
            )
            group.insert(first)
            FaultInjector(group).crash_primary()
            second = FileMetadata(
                path="/ingest/post.dat", attributes=dict(files[4].attributes)
            )
            receipt = group.insert(second)
            # The promoted replica keeps writing WAL-first on its own log:
            # the pre-failover shipped segment AND the post-failover write
            # are both on its disk.
            promoted = group.primary
            assert promoted.replica_id == 1
            assert promoted.pipeline.wal is not None
            assert [r.seq for r in promoted.pipeline.wal.replay()] == [1, receipt.seq]
        finally:
            group.close()

    def test_group_unavailable_when_everyone_is_down(self, group):
        from repro.replication import GroupUnavailableError

        injector = FaultInjector(group)
        for replica_id in range(3):
            injector.crash(0, replica_id)
        with pytest.raises(GroupUnavailableError):
            group.execute(PointQuery("anything.dat"))
        with pytest.raises(GroupUnavailableError):
            group.insert(
                FileMetadata(path="/x/y.dat", attributes={"size": 1.0})
            )


class TestAntiEntropy:
    def test_clean_group_needs_no_repair(self, group, files):
        generator = QueryWorkloadGenerator(files, seed=37)
        for kind, file in generator.mutation_stream(4, 2, 1):
            getattr(group, kind)(file)
        outcome = group.anti_entropy()
        assert outcome == {"checked": 2, "repaired": 0}

    def test_diverged_replica_is_rebuilt(self, group, files):
        # Poison one replica behind the group's back (what a lost ship or
        # a rejoining ex-primary looks like).
        rogue = FileMetadata(
            path="/rogue/phantom.dat", attributes=dict(files[9].attributes)
        )
        group.members[2].pipeline.apply_replicated(
            WALRecord(seq=1, kind="insert", file=rogue)
        )
        prints = group.fingerprints()
        assert prints[2] != prints[0]
        outcome = group.anti_entropy()
        assert outcome["repaired"] == 1
        assert group.resyncs == 1
        prints = group.fingerprints()
        assert prints[2] == prints[0]

    def test_background_pass_repairs_poisoned_replica(self, group, files):
        rogue = FileMetadata(
            path="/rogue/bg-phantom.dat", attributes=dict(files[13].attributes)
        )
        group.members[1].pipeline.apply_replicated(
            WALRecord(seq=1, kind="insert", file=rogue)
        )
        group.start_anti_entropy(interval=0.01)
        try:
            deadline = 100
            while group.resyncs == 0 and deadline:
                time.sleep(0.01)
                deadline -= 1
        finally:
            group.stop_anti_entropy()
        assert group.resyncs == 1
        assert len(set(group.fingerprints())) == 1

    def test_resync_preserves_policy_and_recreates_the_log(self, files, tmp_path):
        from repro.ingest.compactor import CompactionPolicy

        policy = CompactionPolicy(max_staged_per_group=3, hot_group_factor=0.0)
        group = build_replica_group(
            files,
            CONFIG,
            replication=ReplicationConfig(replicas=1),
            wal_path=tmp_path / "group.wal",
            policy=policy,
        )
        try:
            group.insert(
                FileMetadata(path="/ingest/real.dat", attributes=dict(files[6].attributes))
            )
            member = group.members[1]
            member.pipeline.apply_replicated(
                WALRecord(
                    seq=9,
                    kind="insert",
                    file=FileMetadata(
                        path="/rogue/junk.dat", attributes=dict(files[8].attributes)
                    ),
                )
            )
            assert group.anti_entropy()["repaired"] == 1
            # The rebuilt member keeps the caller's compaction policy and
            # gets a fresh log at its old path (divergent records gone).
            assert member.pipeline.compactor.policy is policy
            assert member.pipeline.wal is not None
            assert member.pipeline.wal.path == tmp_path / "group.wal.r1"
            assert member.pipeline.wal.replay().records == []
            assert member.applied_seq == group.primary.applied_seq
        finally:
            group.close()

    def test_population_fingerprint_is_order_independent(self, files):
        assert population_fingerprint(files) == population_fingerprint(
            list(reversed(files))
        )
        assert population_fingerprint(files) != population_fingerprint(files[:-1])


class TestReplicatedRouter:
    def test_replicated_router_matches_baseline(self, files, baseline, workload):
        router = build_shard_router(
            files, 3, CONFIG, replication=ReplicationConfig(replicas=1)
        )
        try:
            assert router.replicated
            assert len(router.replica_groups()) == 3
            for query in workload:
                assert result_fingerprint(
                    router.execute(query)
                ) == result_fingerprint(baseline.execute(query))
        finally:
            router.close()

    def test_kill_every_primary_mid_workload(self, files, workload):
        reference = None
        router = build_shard_router(
            files, 2, CONFIG, replication=ReplicationConfig(replicas=2)
        )
        baseline = SmartStore.build(files, CONFIG)
        pipeline = IngestPipeline(baseline)
        try:
            generator = QueryWorkloadGenerator(files, seed=41)
            stream = generator.mutation_stream(8, 3, 3)
            for kind, file in stream[:7]:
                getattr(router, kind)(file)
                getattr(pipeline, kind)(file)
            FaultInjector(router).crash_primary()
            for kind, file in stream[7:]:
                getattr(router, kind)(file)
                getattr(pipeline, kind)(file)
            reference = [result_fingerprint(baseline.execute(q)) for q in workload]
            got = [result_fingerprint(router.execute(q)) for q in workload]
            assert got == reference
            router.compactor.drain()
            pipeline.compactor.drain()
            got = [result_fingerprint(router.execute(q)) for q in workload]
            reference = [result_fingerprint(baseline.execute(q)) for q in workload]
            assert got == reference
            stats = router.stats()["replication"]
            assert stats["failovers"] == 2
            assert router.anti_entropy()["repaired"] == 0
        finally:
            router.close()

    def test_service_telemetry_accounts_replication_events(self, files, workload):
        router = build_shard_router(
            files, 2, CONFIG, replication=ReplicationConfig(replicas=1)
        )
        try:
            with QueryService(
                router,
                # No result cache: every request must reach the replica
                # groups, or the post-kill round would be served from
                # cache and observe no replication events at all.
                ServiceConfig(
                    max_workers=2,
                    batching_enabled=False,
                    cache_enabled=False,
                    seed=9,
                ),
            ) as service:
                for query in workload:
                    service.execute(query)
                assert service.telemetry.degraded_reads == 0
                FaultInjector(router).crash_primary()
                for query in workload:
                    service.execute(query)
                assert service.telemetry.degraded_reads > 0
                stats = service.stats()
                assert stats["replication"]["degraded_reads"] > 0
                assert stats["telemetry"]["degraded_reads"] > 0
        finally:
            router.close()
