"""End-to-end integration tests: trace → deployment → workload → evaluation.

These tests exercise the same pipeline the benchmarks use, at a reduced
scale, and assert the *relationships* the paper's evaluation is built on
(SmartStore faster than the baselines, bounded search scope, versioning
recovering recall, distributed space footprint).
"""

import numpy as np
import pytest

from repro.baselines import DBMSBaseline, RTreeBaseline
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.eval.harness import run_query_workload
from repro.eval.recall import ground_truth_range, ground_truth_topk, recall
from repro.traces.msn import msn_trace
from repro.traces.scaleup import scale_up
from repro.workloads.generator import QueryWorkloadGenerator


@pytest.fixture(scope="module")
def trace():
    return msn_trace(scale=0.3, seed=11)


@pytest.fixture(scope="module")
def files(trace):
    return trace.file_metadata()


@pytest.fixture(scope="module")
def store(files):
    return SmartStore.build(files, SmartStoreConfig(num_units=20, seed=4))


@pytest.fixture(scope="module")
def baselines(files):
    return RTreeBaseline(files), DBMSBaseline(files)


@pytest.fixture(scope="module")
def generator(files):
    return QueryWorkloadGenerator(files, seed=9)


class TestTraceToDeployment:
    def test_trace_population_is_indexed(self, store, files):
        assert store.cluster.total_files() == len(files)

    def test_scaled_trace_builds_larger_deployment(self, trace):
        scaled = scale_up(trace, 2)
        store = SmartStore.build(scaled.file_metadata(), SmartStoreConfig(num_units=12, seed=0))
        assert store.cluster.total_files() == 2 * len(trace.file_metadata())

    def test_point_queries_resolve_against_trace_population(self, store, generator):
        queries = generator.point_queries(50, existing_fraction=1.0)
        hits = sum(1 for q in queries if store.point_query(q).found)
        assert hits / len(queries) > 0.95


class TestLatencyShape:
    """Table 4's qualitative result: SmartStore ≪ R-tree ≪ DBMS."""

    def test_range_latency_ordering(self, store, baselines, generator):
        rtree, dbms = baselines
        queries = generator.range_queries(10, distribution="zipf")
        smart = run_query_workload(store, queries).total_latency
        rt = run_query_workload(rtree, queries).total_latency
        db = run_query_workload(dbms, queries).total_latency
        assert smart < rt < db
        assert db / smart > 50  # orders of magnitude, not a few percent

    def test_topk_latency_ordering(self, store, baselines, generator):
        rtree, dbms = baselines
        queries = generator.topk_queries(10, k=8, distribution="zipf")
        smart = run_query_workload(store, queries).total_latency
        rt = run_query_workload(rtree, queries).total_latency
        db = run_query_workload(dbms, queries).total_latency
        assert smart < rt < db

    def test_point_latency_ordering(self, store, baselines, generator):
        rtree, dbms = baselines
        queries = generator.point_queries(20, existing_fraction=1.0)
        smart = run_query_workload(store, queries).total_latency
        rt = run_query_workload(rtree, queries).total_latency
        db = run_query_workload(dbms, queries).total_latency
        assert smart < rt
        assert smart < db


class TestSearchScope:
    def test_complex_queries_touch_few_groups(self, store, generator):
        queries = generator.mixed_complex_queries(20, 20, distribution="zipf")
        result = run_query_workload(store, queries)
        total_groups = len(store.tree.first_level_groups())
        assert max(result.hops) < total_groups - 1
        assert np.mean(result.hops) < 0.5 * total_groups

    def test_offline_mode_uses_fewer_messages_than_online(self, files, generator):
        queries = generator.range_queries(15, distribution="zipf")
        offline = SmartStore.build(files, SmartStoreConfig(num_units=20, seed=4, mode="offline"))
        online = SmartStore.build(files, SmartStoreConfig(num_units=20, seed=4, mode="online"))
        off = run_query_workload(offline, queries).total_messages
        on = run_query_workload(online, queries).total_messages
        assert off < on


class TestAccuracy:
    def test_static_range_recall_high(self, store, files, generator):
        queries = generator.range_queries(25, distribution="zipf", ensure_nonempty=True)
        recalls = []
        for q in queries:
            result = store.range_query(q)
            recalls.append(recall(result.files, ground_truth_range(files, q)))
        assert np.mean(recalls) > 0.9

    def test_static_topk_recall_high(self, store, files, generator):
        queries = generator.topk_queries(25, k=8, distribution="zipf")
        recalls = []
        for q in queries:
            result = store.topk_query(q)
            ideal = ground_truth_topk(
                files, q, raw_lower=store.index_lower, raw_upper=store.index_upper
            )
            recalls.append(recall(result.files, ideal))
        assert np.mean(recalls) > 0.9


class TestSpaceShape:
    """Figure 7's qualitative result: per-node index overhead ordering."""

    def test_space_ordering(self, store, baselines):
        rtree, dbms = baselines
        per_unit = store.index_space_bytes_per_unit()
        smart_mean = np.mean(list(per_unit.values()))
        assert smart_mean < rtree.index_space_bytes_per_node() < dbms.index_space_bytes_per_node()
        assert dbms.index_space_bytes_per_node() / smart_mean > 10
