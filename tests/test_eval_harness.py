"""Tests for the evaluation harness (workload runners, staleness experiment)."""

import pytest

from repro.core.smartstore import SmartStoreConfig
from repro.eval.harness import (
    StalenessExperiment,
    WorkloadResult,
    build_baselines,
    build_smartstore,
    hop_distribution,
    point_query_hit_rate,
    run_query_workload,
)
from repro.workloads.generator import QueryWorkloadGenerator

from helpers import make_files


@pytest.fixture(scope="module")
def files():
    return make_files(120, clusters=4)


@pytest.fixture(scope="module")
def store(files):
    return build_smartstore(files, SmartStoreConfig(num_units=10, seed=0))


@pytest.fixture(scope="module")
def generator(files):
    return QueryWorkloadGenerator(files, seed=1)


class TestWorkloadResult:
    def test_empty_result_defaults(self):
        r = WorkloadResult()
        assert r.num_queries == 0
        assert r.mean_latency == 0.0
        assert r.mean_recall == 1.0
        assert r.hit_rate == 0.0
        assert r.hop_histogram() == {}

    def test_as_dict(self):
        r = WorkloadResult(latencies=[1.0, 3.0], messages=[2, 4], hops=[0, 1],
                           recalls=[0.5, 1.0], found=[True, False])
        d = r.as_dict()
        assert d["queries"] == 2
        assert d["mean_latency_s"] == 2.0
        assert d["total_messages"] == 6
        assert d["mean_recall"] == 0.75
        assert d["hit_rate"] == 0.5

    def test_hop_histogram_fractions(self):
        r = WorkloadResult(hops=[0, 0, 1, 2], latencies=[0] * 4, messages=[0] * 4, found=[True] * 4)
        hist = r.hop_histogram()
        assert hist[0] == 0.5
        assert sum(hist.values()) == pytest.approx(1.0)


class TestRunners:
    def test_run_query_workload_with_recall(self, store, generator, files):
        queries = generator.range_queries(10, distribution="zipf", ensure_nonempty=True)
        result = run_query_workload(store, queries, ground_truth_files=files)
        assert result.num_queries == 10
        assert len(result.recalls) == 10
        assert 0.0 <= result.mean_recall <= 1.0
        assert result.total_latency > 0

    def test_run_query_workload_against_baselines(self, files, generator):
        rtree, dbms = build_baselines(files)
        queries = generator.topk_queries(5, k=4)
        assert run_query_workload(rtree, queries).num_queries == 5
        assert run_query_workload(dbms, queries).num_queries == 5

    def test_hop_distribution(self, store, generator):
        queries = generator.mixed_complex_queries(10, 10)
        hist = hop_distribution(store, queries)
        assert sum(hist.values()) == pytest.approx(1.0)
        assert min(hist.keys()) >= 0

    def test_point_query_hit_rate(self, store, generator):
        queries = generator.point_queries(40, existing_fraction=0.8)
        rate = point_query_hit_rate(store, queries)
        assert 0.9 <= rate <= 1.0

    def test_point_query_hit_rate_all_missing(self, store, generator):
        queries = generator.point_queries(10, existing_fraction=0.0)
        assert point_query_hit_rate(store, queries) == 1.0


class TestStalenessExperiment:
    def test_holdback_is_most_recent_files(self, files):
        exp = StalenessExperiment(files, update_fraction=0.2, config=SmartStoreConfig(num_units=8, seed=0))
        newest_initial = max(f.attributes["ctime"] for f in exp.initial_files)
        oldest_update = min(f.attributes["ctime"] for f in exp.update_files)
        assert oldest_update >= newest_initial
        assert len(exp.update_files) == int(len(files) * 0.2)

    def test_zero_update_fraction(self, files):
        exp = StalenessExperiment(files, update_fraction=0.0)
        assert exp.update_files == []
        assert len(exp.initial_files) == len(files)

    def test_invalid_fraction(self, files):
        with pytest.raises(ValueError):
            StalenessExperiment(files, update_fraction=1.0)

    def test_versioning_improves_or_matches_recall(self, files):
        exp = StalenessExperiment(
            files, update_fraction=0.25, config=SmartStoreConfig(num_units=8, seed=1), seed=2
        )
        results = {}
        for versioning in (False, True):
            store = exp.build(versioning=versioning)
            generator = QueryWorkloadGenerator(files, seed=5)
            queries = generator.range_queries(30, distribution="zipf", ensure_nonempty=True)
            results[versioning] = exp.run(store, queries).mean_recall
        assert results[True] >= results[False]
        assert results[False] < 1.0  # staleness must actually bite

    def test_recall_sweep_shape(self, files):
        exp = StalenessExperiment(
            files, update_fraction=0.2, config=SmartStoreConfig(num_units=8, seed=1), seed=3
        )
        table = exp.recall_with_and_without_versioning([10, 20], query_kind="topk", k=4)
        assert set(table.keys()) == {10, 20}
        for row in table.values():
            assert set(row.keys()) == {"without", "with"}
            assert row["with"] >= row["without"] - 1e-9
