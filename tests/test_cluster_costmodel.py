"""Tests for the cost model."""

import pytest

from repro.cluster.costmodel import DEFAULT_COST_MODEL, CostModel


class TestCostModel:
    def test_defaults_reflect_memory_vs_disk_gap(self):
        cm = DEFAULT_COST_MODEL
        # The disk/memory gap is what produces the paper's latency gap; it
        # must be several orders of magnitude.
        assert cm.disk_index_access / cm.memory_index_access > 1000
        assert cm.disk_record_scan > cm.memory_record_scan

    def test_network_slower_than_memory(self):
        cm = DEFAULT_COST_MODEL
        assert cm.network_hop_latency > cm.memory_index_access

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            CostModel(network_hop_latency=-1.0)

    def test_nonpositive_sizes_rejected(self):
        with pytest.raises(ValueError):
            CostModel(metadata_record_bytes=0)
        with pytest.raises(ValueError):
            CostModel(index_entry_bytes=-5)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.network_hop_latency = 1.0  # type: ignore

    def test_custom_model(self):
        cm = CostModel(network_hop_latency=1e-3, disk_index_access=1e-2)
        assert cm.network_hop_latency == 1e-3
        assert cm.disk_index_access == 1e-2
