"""Tests for the trace distribution samplers."""

import numpy as np
import pytest

from repro.traces.distributions import (
    bounded_gauss,
    clustered_timestamps,
    lognormal_sizes,
    sample_zipf_indices,
    zipf_popularity,
)


class TestZipf:
    def test_probabilities_sum_to_one(self):
        p = zipf_popularity(100, 1.0)
        assert p.shape == (100,)
        assert np.isclose(p.sum(), 1.0)

    def test_monotonically_decreasing(self):
        p = zipf_popularity(50, 1.2)
        assert np.all(np.diff(p) <= 0)

    def test_zero_exponent_is_uniform(self):
        p = zipf_popularity(10, 0.0)
        assert np.allclose(p, 0.1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_popularity(0)
        with pytest.raises(ValueError):
            zipf_popularity(10, -1.0)

    def test_sample_indices_within_range_and_skewed(self):
        rng = np.random.default_rng(0)
        idx = sample_zipf_indices(100, 5000, exponent=1.0, rng=rng)
        assert idx.min() >= 0 and idx.max() < 100
        counts = np.bincount(idx, minlength=100)
        assert counts[:10].sum() > counts[-10:].sum()


class TestSizes:
    def test_lognormal_sizes_bounds(self):
        sizes = lognormal_sizes(1000, rng=np.random.default_rng(1))
        assert sizes.min() >= 1.0
        assert sizes.max() <= 16 * 1024**3

    def test_median_approximately_respected(self):
        sizes = lognormal_sizes(20000, median_bytes=1e5, sigma=1.0, rng=np.random.default_rng(2))
        assert 0.5e5 < np.median(sizes) < 2e5

    def test_zero_size_request(self):
        assert lognormal_sizes(0).shape == (0,)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            lognormal_sizes(-1)


class TestTimestamps:
    def test_clustered_timestamps_within_duration(self):
        assignment = np.repeat(np.arange(5), 20)
        stamps = clustered_timestamps(100, assignment, 3600.0, rng=np.random.default_rng(3))
        assert stamps.min() >= 0.0 and stamps.max() <= 3600.0

    def test_within_cluster_spread_smaller_than_between(self):
        assignment = np.repeat(np.arange(10), 50)
        stamps = clustered_timestamps(
            500, assignment, 1e6, cluster_spread=0.001, rng=np.random.default_rng(4)
        )
        within = np.mean([stamps[assignment == c].std() for c in range(10)])
        assert within < stamps.std()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            clustered_timestamps(10, np.zeros(5, dtype=int), 100.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            clustered_timestamps(5, np.zeros(5, dtype=int), 0.0)


class TestBoundedGauss:
    def test_within_bounds(self):
        x = bounded_gauss(1000, 10.0, 20.0, rng=np.random.default_rng(5))
        assert x.min() >= 10.0 and x.max() <= 20.0

    def test_centered_inside(self):
        x = bounded_gauss(5000, 0.0, 100.0, rng=np.random.default_rng(6))
        assert 30.0 < x.mean() < 70.0

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            bounded_gauss(10, 5.0, 1.0)
