"""Property-based tests (hypothesis) for the core data structures.

Each property pins an invariant the rest of the system silently relies on:
MBR geometry, Bloom-filter one-sidedness, B+-tree/R-tree search correctness
against brute force, grouping conservation, and metric/cost monotonicity.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.bloom.bloom import BloomFilter
from repro.btree.bplustree import BPlusTree
from repro.cluster.costmodel import CostModel
from repro.cluster.metrics import Metrics
from repro.core.grouping import group_by_correlation, grouping_quality
from repro.eval.recall import recall
from repro.lsi.kmeans import balanced_kmeans, kmeans
from repro.lsi.svd import truncated_svd
from repro.metadata.file_metadata import FileMetadata
from repro.rtree.knn import knn_search
from repro.rtree.mbr import MBR
from repro.rtree.rtree import RTree

SETTINGS = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


# --------------------------------------------------------------------------- MBR
@given(
    points=npst.arrays(np.float64, (8, 3), elements=finite_floats),
    query=npst.arrays(np.float64, (3,), elements=finite_floats),
)
@SETTINGS
def test_mbr_covers_points_and_mindist_lower_bounds_true_distance(points, query):
    mbr = MBR.from_points(points)
    for p in points:
        assert mbr.contains_point(p)
    true_min = float(np.min(np.linalg.norm(points - query, axis=1)))
    assert mbr.min_distance(query) <= true_min + 1e-6
    assert mbr.max_distance(query) >= true_min - 1e-6


@given(
    a=npst.arrays(np.float64, (5, 2), elements=finite_floats),
    b=npst.arrays(np.float64, (5, 2), elements=finite_floats),
)
@SETTINGS
def test_mbr_union_contains_both_and_area_superadditive(a, b):
    ma, mb = MBR.from_points(a), MBR.from_points(b)
    union = ma.union(mb)
    assert union.contains(ma) and union.contains(mb)
    assert union.area() >= max(ma.area(), mb.area()) - 1e-12
    assert ma.enlargement(mb) >= -1e-12


# --------------------------------------------------------------------------- Bloom filter
@given(keys=st.lists(st.text(min_size=1, max_size=30), min_size=1, max_size=80, unique=True))
@SETTINGS
def test_bloom_filter_has_no_false_negatives(keys):
    bloom = BloomFilter()
    bloom.add_many(keys)
    assert all(k in bloom for k in keys)


@given(
    left=st.lists(st.text(min_size=1, max_size=20), min_size=1, max_size=40, unique=True),
    right=st.lists(st.text(min_size=1, max_size=20), min_size=1, max_size=40, unique=True),
)
@SETTINGS
def test_bloom_union_is_superset_of_both_sides(left, right):
    a, b = BloomFilter(), BloomFilter()
    a.add_many(left)
    b.add_many(right)
    union = a.union(b)
    assert all(k in union for k in left + right)
    assert union.fill_ratio() >= max(a.fill_ratio(), b.fill_ratio())


# --------------------------------------------------------------------------- B+-tree
@given(
    keys=st.lists(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False), min_size=1, max_size=200),
    window=st.tuples(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    ),
)
@SETTINGS
def test_bplustree_range_search_matches_brute_force(keys, window):
    lo, hi = min(window), max(window)
    tree = BPlusTree(order=8)
    for i, k in enumerate(keys):
        tree.insert(k, i)
    got = sorted(v for _, v in tree.range_search(lo, hi))
    expected = sorted(i for i, k in enumerate(keys) if lo <= k <= hi)
    assert got == expected
    assert [k for k, _ in tree.items()] == sorted(keys)


# --------------------------------------------------------------------------- R-tree
@given(
    points=npst.arrays(
        np.float64, st.tuples(st.integers(5, 60), st.just(2)),
        elements=st.floats(min_value=0, max_value=100, allow_nan=False),
    ),
    window=npst.arrays(np.float64, (2, 2), elements=st.floats(min_value=0, max_value=100, allow_nan=False)),
)
@SETTINGS
def test_rtree_range_search_matches_brute_force(points, window):
    lower = np.minimum(window[0], window[1])
    upper = np.maximum(window[0], window[1])
    tree = RTree(dimension=2, max_entries=4)
    for i, p in enumerate(points):
        tree.insert(p, i)
    got = sorted(e.payload for e in tree.search_range(lower, upper))
    mask = np.all((points >= lower) & (points <= upper), axis=1)
    assert got == sorted(np.nonzero(mask)[0].tolist())


@given(
    points=npst.arrays(
        np.float64, st.tuples(st.integers(5, 40), st.just(2)),
        elements=st.floats(min_value=0, max_value=100, allow_nan=False),
    ),
    query=npst.arrays(np.float64, (2,), elements=st.floats(min_value=0, max_value=100, allow_nan=False)),
    k=st.integers(1, 8),
)
@SETTINGS
def test_rtree_knn_matches_brute_force_distances(points, query, k):
    tree = RTree(dimension=2, max_entries=4)
    for i, p in enumerate(points):
        tree.insert(p, i)
    result = knn_search(tree, query, k)
    dists = np.sort(np.linalg.norm(points - query, axis=1))[: min(k, len(points))]
    assert np.allclose([d for d, _ in result], dists, atol=1e-9)


# --------------------------------------------------------------------------- SVD / LSI
@given(
    matrix=npst.arrays(
        np.float64, st.tuples(st.integers(2, 8), st.integers(2, 8)),
        elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
    rank=st.integers(1, 4),
)
@SETTINGS
def test_truncated_svd_error_bounded_and_values_sorted(matrix, rank):
    u, s, vt = truncated_svd(matrix, rank)
    assert np.all(np.diff(s) <= 1e-9)
    approx = u @ np.diag(s) @ vt
    # The rank-p truncation error never exceeds the full matrix norm.
    assert np.linalg.norm(matrix - approx) <= np.linalg.norm(matrix) + 1e-6


# --------------------------------------------------------------------------- grouping / k-means
@given(
    vectors=npst.arrays(
        np.float64, st.tuples(st.integers(2, 30), st.just(4)),
        elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
    ),
    threshold=st.floats(min_value=-1.0, max_value=1.0),
    max_size=st.integers(1, 10),
)
@SETTINGS
def test_grouping_conserves_items_and_respects_size_bound(vectors, threshold, max_size):
    groups = group_by_correlation(vectors, threshold, max_group_size=max_size)
    flat = sorted(i for g in groups for i in g)
    assert flat == list(range(vectors.shape[0]))
    assert all(1 <= len(g) <= max_size for g in groups)


@given(
    points=npst.arrays(
        np.float64, st.tuples(st.integers(4, 40), st.just(3)),
        elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
    ),
    k=st.integers(1, 6),
)
@SETTINGS
def test_kmeans_and_balanced_kmeans_assign_every_point(points, k):
    k = min(k, points.shape[0])
    for fn in (kmeans, balanced_kmeans):
        result = fn(points, k, seed=0)
        assert result.labels.shape == (points.shape[0],)
        assert result.labels.min() >= 0 and result.labels.max() < k
        assert result.inertia >= 0
        assert grouping_quality(points, result.labels) >= 0


# --------------------------------------------------------------------------- metrics / cost model
@given(
    messages=st.integers(0, 100),
    mem=st.integers(0, 1000),
    disk=st.integers(0, 100),
    scans=st.integers(0, 10000),
)
@SETTINGS
def test_metrics_latency_nonnegative_and_monotone(messages, mem, disk, scans):
    m = Metrics()
    m.record_message(messages)
    m.record_index_access(mem)
    m.record_index_access(disk, on_disk=True)
    m.record_scan(scans)
    base = m.latency()
    assert base >= 0
    m.record_message()
    assert m.latency() >= base
    merged = Metrics()
    merged.merge(m)
    assert merged.latency() == m.latency()


# --------------------------------------------------------------------------- recall
@given(
    reported=st.sets(st.integers(0, 30), max_size=20),
    ideal=st.sets(st.integers(0, 30), max_size=20),
)
@SETTINGS
def test_recall_is_bounded_and_monotone_in_reported_set(reported, ideal):
    def files(ids):
        return [FileMetadata(path=f"/f{i}", attributes={"size": 1.0}) for i in ids]

    value = recall(files(reported), files(ideal))
    assert 0.0 <= value <= 1.0
    fuller = recall(files(reported | ideal), files(ideal))
    assert fuller >= value
    assert recall(files(ideal), files(ideal)) == 1.0
