"""Tests for the MD5 Bloom filter."""

import pytest

from repro.bloom.bloom import DEFAULT_BITS, DEFAULT_HASHES, BloomFilter


class TestBasics:
    def test_default_parameters_match_prototype(self):
        f = BloomFilter()
        assert f.num_bits == DEFAULT_BITS == 1024
        assert f.num_hashes == DEFAULT_HASHES == 7

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(num_bits=4)
        with pytest.raises(ValueError):
            BloomFilter(num_hashes=0)

    def test_no_false_negatives(self):
        f = BloomFilter()
        keys = [f"file-{i}.dat" for i in range(100)]
        f.add_many(keys)
        assert all(k in f for k in keys)

    def test_empty_filter_rejects_everything(self):
        f = BloomFilter()
        assert "anything" not in f
        assert f.fill_ratio() == 0.0

    def test_count_tracks_insertions(self):
        f = BloomFilter()
        f.add("a")
        f.add("a")
        assert f.count == 2

    def test_contains_alias(self):
        f = BloomFilter()
        f.add("x")
        assert f.contains("x")

    def test_false_positive_rate_reasonable(self):
        # 1024 bits / 7 hashes with 50 keys: expected FP rate well below 5%.
        f = BloomFilter()
        f.add_many(f"present-{i}" for i in range(50))
        false_hits = sum(1 for i in range(2000) if f"absent-{i}" in f)
        assert false_hits / 2000 < 0.05

    def test_clear(self):
        f = BloomFilter()
        f.add("x")
        f.clear()
        assert "x" not in f
        assert f.count == 0


class TestComposition:
    def test_union_contains_both_sides(self):
        a, b = BloomFilter(), BloomFilter()
        a.add("alpha")
        b.add("beta")
        u = a.union(b)
        assert "alpha" in u and "beta" in u

    def test_union_inplace(self):
        a, b = BloomFilter(), BloomFilter()
        b.add("k")
        a.union_inplace(b)
        assert "k" in a

    def test_union_of_many(self):
        filters = []
        for i in range(5):
            f = BloomFilter()
            f.add(f"key-{i}")
            filters.append(f)
        u = BloomFilter.union_of(filters)
        assert all(f"key-{i}" in u for i in range(5))

    def test_union_of_empty_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter.union_of([])

    def test_union_incompatible_parameters_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(1024, 7).union(BloomFilter(2048, 7))
        with pytest.raises(ValueError):
            BloomFilter(1024, 7).union(BloomFilter(1024, 3))

    def test_copy_is_independent(self):
        a = BloomFilter()
        a.add("x")
        b = a.copy()
        b.add("y")
        assert "y" in b and "y" not in a


class TestAnalytics:
    def test_fill_ratio_monotone(self):
        f = BloomFilter()
        prev = 0.0
        for i in range(50):
            f.add(f"k{i}")
            ratio = f.fill_ratio()
            assert ratio >= prev
            prev = ratio

    def test_false_positive_probability_bounds(self):
        f = BloomFilter()
        assert f.false_positive_probability() == 0.0
        f.add_many(f"k{i}" for i in range(200))
        assert 0.0 < f.false_positive_probability() <= 1.0

    def test_size_bytes(self):
        assert BloomFilter(1024, 7).size_bytes() == 128

    def test_repr(self):
        assert "BloomFilter" in repr(BloomFilter())

    def test_md5_determinism_across_instances(self):
        a, b = BloomFilter(), BloomFilter()
        a.add("same-key")
        b.add("same-key")
        assert (a.bits == b.bits).all()
