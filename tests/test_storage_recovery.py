"""Cold-start equivalence: every topology restarts from segments + tail.

One ``connect(spec)`` deployment per topology takes writes, checkpoints
(publishing an immutable segment snapshot), takes more writes (the WAL
tail), fingerprints a probe workload, and dies.  A second
``connect(spec)`` with **no files at all** must come back byte-identical
— and must have done O(tail) work to get there, witnessed by
``RecoveryReport.wal_records_replayed``.
"""

from typing import List

import pytest

from repro.api.client import connect
from repro.api.spec import DeploymentSpec
from repro.core.smartstore import SmartStoreConfig
from repro.ingest.pipeline import recover_from_storage
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.service.cache import result_fingerprint
from repro.storage import StorageConfig, has_snapshot
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

from helpers import make_files

DURABLE_TOPOLOGIES = ("durable", "sharded", "replicated", "sharded_replicated")


def _spec(topology, tmp_path, resident_segments=64):
    wal_dir = None if topology == "plain" else str(tmp_path / "wal")
    return DeploymentSpec(
        topology=topology,
        store=SmartStoreConfig(num_units=4, seed=0, search_breadth=64),
        shards=2,
        replicas=1,
        wal_dir=wal_dir,
        storage=StorageConfig(
            root=str(tmp_path / "snap"), resident_segments=resident_segments
        ),
    )


def _probes(files) -> List[object]:
    attrs = tuple(DEFAULT_SCHEMA.names[:2])
    return [
        PointQuery(files[3].filename),
        PointQuery(files[17].filename),
        PointQuery("/no/such/file.dat"),
        RangeQuery(attrs, (0.0, 0.0), (1e9, 1e9)),
        TopKQuery(attrs, (2048.0, 1500.0), 12),
    ]


def _fingerprints(client, probes) -> List[str]:
    return [result_fingerprint(client.execute(q).result) for q in probes]


class TestColdStartEquivalence:
    @pytest.mark.parametrize("topology", DURABLE_TOPOLOGIES)
    def test_restart_with_tail_is_byte_identical(self, tmp_path, topology):
        files = make_files(64, seed=1)
        population, tail = files[:52], files[52:]
        probes = _probes(files)

        client = connect(_spec(topology, tmp_path), population)
        client.checkpoint()
        for f in tail:
            client.insert(f)
        live = _fingerprints(client, probes)
        client.close()

        # Cold start: no files passed — everything comes from disk.
        reborn = connect(_spec(topology, tmp_path))
        try:
            assert _fingerprints(reborn, probes) == live
        finally:
            reborn.close()

    def test_plain_restart_is_identical_at_checkpoint_boundary(self, tmp_path):
        # Plain has no WAL: post-checkpoint writes are volatile by design,
        # so equivalence holds exactly at the publish boundary.
        files = make_files(56, seed=2)
        probes = _probes(files)
        client = connect(_spec("plain", tmp_path), files)
        client.checkpoint()
        at_checkpoint = _fingerprints(client, probes)
        client.close()

        reborn = connect(_spec("plain", tmp_path))
        try:
            assert _fingerprints(reborn, probes) == at_checkpoint
        finally:
            reborn.close()

    def test_restart_without_snapshot_still_requires_files(self, tmp_path):
        with pytest.raises(ValueError):
            connect(_spec("durable", tmp_path))


class TestOTailGate:
    def test_recovery_replays_exactly_the_tail(self, tmp_path):
        """The O(tail) witness: records replayed == post-checkpoint writes,
        however large the checkpointed corpus."""
        files = make_files(72, seed=3)
        spec = _spec("durable", tmp_path)
        client = connect(spec, files[:60])
        client.checkpoint()
        for f in files[60:]:
            client.insert(f)
        client.close()

        assert has_snapshot(tmp_path / "snap")
        pipeline, report = recover_from_storage(
            tmp_path / "snap", wal_path=tmp_path / "wal" / "store.wal"
        )
        try:
            assert report.wal_records_replayed == 12
            assert report.segments_loaded > 0
            assert report.files_indexed == 60  # snapshot rows, not corpus re-reads
        finally:
            pipeline.close()

    def test_checkpoint_truncates_the_wal(self, tmp_path):
        files = make_files(48, seed=4)
        spec = _spec("durable", tmp_path)
        client = connect(spec, files[:40])
        for f in files[40:]:
            client.insert(f)
        client.checkpoint()
        client.close()

        _, report = recover_from_storage(
            tmp_path / "snap", wal_path=tmp_path / "wal" / "store.wal"
        )
        assert report.wal_records_replayed == 0


class TestResidencyPressure:
    def test_evicting_lru_stays_byte_identical(self, tmp_path):
        """resident_segments=1 forces every cross-group query to fault in
        and evict through the LRU — answers must not change."""
        files = make_files(64, seed=5)
        probes = _probes(files)

        client = connect(_spec("durable", tmp_path), files)
        client.checkpoint()
        live = _fingerprints(client, probes)
        client.close()

        starved_spec = _spec("durable", tmp_path, resident_segments=1)
        starved = connect(starved_spec)
        try:
            assert _fingerprints(starved, probes) == live
            storage = starved.service.pipeline.storage
            stats = storage.stats()
            assert stats["evictions"] > 0, "LRU never evicted; gate is vacuous"
            assert stats["faults"] > stats["evictions"]
        finally:
            starved.close()
