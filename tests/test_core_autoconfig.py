"""Tests for the automatic multi-tree configuration."""

import numpy as np
import pytest

from repro.core.autoconfig import AutoConfigurator
from repro.core.semantic_rtree import SemanticRTree, StorageUnitDescriptor
from repro.metadata.attributes import AttributeSchema, AttributeSpec
from repro.rtree.mbr import MBR

SCHEMA = AttributeSchema(
    (
        AttributeSpec("size", log_scale=True),
        AttributeSpec("mtime"),
        AttributeSpec("owner"),
        AttributeSpec("access_count", kind="behavioural"),
    )
)


def unit_matrix(num_units=16, seed=0):
    """Per-unit centroids where different attribute subsets group differently."""
    rng = np.random.default_rng(seed)
    m = rng.random((num_units, SCHEMA.dimension))
    # 'mtime' separates units into two far-apart bands; 'owner' into four.
    m[:, 1] += (np.arange(num_units) % 2) * 10.0
    m[:, 2] += (np.arange(num_units) % 4) * 5.0
    return m


def make_builder():
    def build_tree(vectors: np.ndarray) -> SemanticRTree:
        descriptors = []
        for i, vec in enumerate(vectors):
            descriptors.append(
                StorageUnitDescriptor(
                    unit_id=i,
                    mbr=MBR(vec, vec + 0.1),
                    centroid=vec,
                    semantic_vector=vec - vectors.mean(axis=0),
                    filenames=[],
                    file_count=1,
                )
            )
        return SemanticRTree.build(descriptors, thresholds=[0.6, 0.3], max_fanout=4)
    return build_tree


class TestConfiguration:
    def test_full_tree_always_first_and_retained(self):
        cfg = AutoConfigurator(SCHEMA, unit_matrix(), make_builder())
        trees = cfg.configure(max_subset_size=2)
        assert trees[0].is_full
        assert trees[0].attributes == SCHEMA.names

    def test_examines_expected_number_of_subsets(self):
        cfg = AutoConfigurator(SCHEMA, unit_matrix(), make_builder())
        cfg.configure(max_subset_size=2)
        # C(4,1) + C(4,2) = 4 + 6
        assert cfg.examined_subsets == 10

    def test_explicit_candidate_subsets(self):
        cfg = AutoConfigurator(SCHEMA, unit_matrix(), make_builder())
        cfg.configure(candidate_subsets=[("mtime",), ("owner", "mtime")])
        assert cfg.examined_subsets == 2

    def test_threshold_one_retains_only_full_tree(self):
        cfg = AutoConfigurator(SCHEMA, unit_matrix(), make_builder(), difference_threshold=1.0)
        trees = cfg.configure(max_subset_size=2)
        assert len(trees) == 1

    def test_threshold_zero_retains_any_differing_tree(self):
        lax = AutoConfigurator(SCHEMA, unit_matrix(), make_builder(), difference_threshold=0.0)
        strict = AutoConfigurator(SCHEMA, unit_matrix(), make_builder(), difference_threshold=0.9)
        assert len(lax.configure(max_subset_size=2)) >= len(strict.configure(max_subset_size=2))

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            AutoConfigurator(SCHEMA, unit_matrix(), make_builder(), difference_threshold=1.5)

    def test_matrix_shape_validated(self):
        with pytest.raises(ValueError):
            AutoConfigurator(SCHEMA, np.ones((4, 2)), make_builder())

    def test_summary(self):
        cfg = AutoConfigurator(SCHEMA, unit_matrix(), make_builder())
        cfg.configure(max_subset_size=2)
        summary = cfg.summary()
        assert summary["retained_trees"] >= 1
        assert summary["examined_subsets"] == 10


class TestSelection:
    def test_select_before_configure_rejected(self):
        cfg = AutoConfigurator(SCHEMA, unit_matrix(), make_builder())
        with pytest.raises(RuntimeError):
            cfg.select_tree(("size",))

    def test_exact_match_wins(self):
        cfg = AutoConfigurator(SCHEMA, unit_matrix(), make_builder(), difference_threshold=0.0)
        cfg.configure(max_subset_size=2)
        retained = [t for t in cfg.trees if not t.is_full]
        if retained:
            target = retained[0]
            chosen = cfg.select_tree(target.attributes)
            assert chosen.attributes == target.attributes

    def test_unmatched_query_falls_back_sensibly(self):
        cfg = AutoConfigurator(SCHEMA, unit_matrix(), make_builder(), difference_threshold=1.0)
        cfg.configure(max_subset_size=2)
        chosen = cfg.select_tree(("size", "mtime"))
        assert chosen.is_full

    def test_full_query_selects_full_tree(self):
        cfg = AutoConfigurator(SCHEMA, unit_matrix(), make_builder(), difference_threshold=0.0)
        cfg.configure(max_subset_size=2)
        assert cfg.select_tree(SCHEMA.names).is_full
