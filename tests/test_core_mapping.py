"""Tests for index-unit mapping and root multi-mapping."""

import numpy as np
import pytest

from repro.core.mapping import hosting_plan, map_index_units, multi_map_root
from repro.core.semantic_rtree import SemanticRTree

from test_core_semantic_rtree import make_descriptors


@pytest.fixture()
def tree():
    return SemanticRTree.build(make_descriptors(12), thresholds=[0.8, 0.5, 0.2], max_fanout=4)


class TestMapIndexUnits:
    def test_every_index_unit_assigned(self, tree):
        assignment = map_index_units(tree, np.random.default_rng(0))
        for node in tree.index_units():
            assert node.hosted_on is not None
            assert assignment[node.node_id] == node.hosted_on

    def test_leaves_host_themselves(self, tree):
        map_index_units(tree, np.random.default_rng(0))
        for unit_id, leaf in tree.leaves.items():
            assert leaf.hosted_on == unit_id

    def test_hosts_are_valid_storage_units(self, tree):
        map_index_units(tree, np.random.default_rng(1))
        valid = set(tree.leaves.keys())
        for node in tree.index_units():
            assert node.hosted_on in valid

    def test_index_units_prefer_descendant_hosts(self, tree):
        map_index_units(tree, np.random.default_rng(2))
        for node in tree.index_units():
            assert node.hosted_on in node.descendant_unit_ids() or True  # fallback allowed
        # First-level groups must host within their own subtree (they always
        # have unlabelled descendants available).
        for group in tree.first_level_groups():
            assert group.hosted_on in group.descendant_unit_ids()

    def test_no_double_hosting_when_enough_units(self, tree):
        map_index_units(tree, np.random.default_rng(3))
        hosts = [n.hosted_on for n in tree.index_units()]
        assert len(hosts) == len(set(hosts))

    def test_deterministic_given_rng(self, tree):
        a = map_index_units(tree, np.random.default_rng(7))
        tree2 = SemanticRTree.build(make_descriptors(12), thresholds=[0.8, 0.5, 0.2], max_fanout=4)
        b = map_index_units(tree2, np.random.default_rng(7))
        assert a == b


class TestRootMultiMapping:
    def test_replicas_cover_other_subtrees(self, tree):
        map_index_units(tree, np.random.default_rng(0))
        replicas = multi_map_root(tree, np.random.default_rng(0))
        assert replicas == tree.root.replica_hosts
        # One replica host per first-level subtree (minus the primary's own).
        assert len(replicas) >= len(tree.first_level_groups()) - 1 - 1

    def test_replica_hosts_are_distinct(self, tree):
        map_index_units(tree, np.random.default_rng(1))
        replicas = multi_map_root(tree, np.random.default_rng(1))
        assert len(replicas) == len(set(replicas))
        assert tree.root.hosted_on not in replicas


class TestHostingPlan:
    def test_plan_lists_every_index_unit_once(self, tree):
        map_index_units(tree, np.random.default_rng(0))
        multi_map_root(tree, np.random.default_rng(0))
        plan = hosting_plan(tree)
        hosted = [node_id for nodes in plan.values() for node_id in nodes]
        for node in tree.index_units():
            assert hosted.count(node.node_id) >= 1

    def test_plan_keys_are_units(self, tree):
        map_index_units(tree, np.random.default_rng(0))
        plan = hosting_plan(tree)
        assert set(plan.keys()) == set(tree.leaves.keys())
