"""The unified client front door: specs, connect(), the response envelope.

The acceptance property this file gates: one ``connect(DeploymentSpec)``
builds all five topology shapes, and on a shared workload the new
``Client`` returns byte-identical payloads to the legacy facades over
the same logical population.
"""

import json

import pytest

from repro.api import (
    Client,
    DeploymentSpec,
    RequestOptions,
    Response,
    connect,
    load_spec,
    save_spec,
)
from repro.api.spec import TOPOLOGIES, service_config_from_dict, service_config_to_dict
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.persistence.jsonl import save_files
from repro.service.cache import result_fingerprint
from repro.service.service import ServiceConfig
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

from helpers import make_files

CONFIG = SmartStoreConfig(num_units=6, seed=3, search_breadth=64)


@pytest.fixture(scope="module")
def population():
    return make_files(80, clusters=4)


@pytest.fixture(scope="module")
def workload(population):
    generator = QueryWorkloadGenerator(population, seed=17)
    return (
        generator.point_queries(4, existing_fraction=0.75)
        + generator.range_queries(4, distribution="zipf")
        + generator.topk_queries(4, k=6, distribution="zipf")
    )


def spec_for(topology: str, tmp_path) -> DeploymentSpec:
    kwargs = {"topology": topology, "store": CONFIG, "shards": 2, "replicas": 1}
    if topology == "durable":
        kwargs["wal_dir"] = str(tmp_path / "wal")
    return DeploymentSpec(**kwargs)


class TestDeploymentSpec:
    def test_json_round_trip_all_topologies(self, tmp_path):
        for topology in TOPOLOGIES:
            spec = spec_for(topology, tmp_path)
            again = DeploymentSpec.from_dict(spec.to_dict())
            assert again == spec
            path = tmp_path / f"{topology}.json"
            save_spec(spec, path)
            assert load_spec(path) == spec
            # The artefact is plain JSON a human (or the CLI) can edit.
            assert json.loads(path.read_text())["topology"] == topology

    def test_round_trip_preserves_nested_configs(self, tmp_path):
        spec = DeploymentSpec(
            topology="sharded_replicated",
            store=SmartStoreConfig(num_units=12, seed=9, search_breadth=5),
            shards=3,
            replicas=2,
            replication_mode="sync",
            max_lag=7,
            service=ServiceConfig(max_workers=2, batch_window=4, cache_enabled=False),
        )
        again = DeploymentSpec.from_dict(spec.to_dict())
        assert again.store.num_units == 12
        assert again.store.search_breadth == 5
        assert again.service.cache_enabled is False
        assert again.replication_config().mode == "sync"
        assert again.replication_config().max_lag == 7

    def test_service_config_dict_ignores_unknown_keys(self):
        payload = service_config_to_dict(ServiceConfig(max_workers=3))
        payload["future_knob"] = True
        assert service_config_from_dict(payload).max_workers == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"topology": "mesh"},
            {"topology": "sharded", "shards": 1},
            {"topology": "replicated", "replicas": 0},
            {"topology": "durable"},  # wal_dir required
            {"topology": "plain", "wal_dir": "/tmp/x"},
            {"topology": "replicated", "replication_mode": "psychic"},
            {"topology": "plain", "fsync_every": 0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DeploymentSpec(**kwargs)


class TestConnectAllTopologies:
    def test_client_matches_legacy_facade_everywhere(
        self, population, workload, tmp_path
    ):
        """The cross-placement acceptance gate: every topology's client
        answers fingerprint-identically to a plain legacy store."""
        legacy = SmartStore.build(population, CONFIG)
        reference = [result_fingerprint(legacy.execute(q)) for q in workload]
        for topology in TOPOLOGIES:
            with connect(spec_for(topology, tmp_path), population) as client:
                fingerprints = [
                    result_fingerprint(client.execute(q).result) for q in workload
                ]
                assert fingerprints == reference, topology

    def test_uniform_surface(self, population, tmp_path):
        for topology in TOPOLOGIES:
            with connect(spec_for(topology, tmp_path), population) as client:
                assert isinstance(client, Client)
                assert client.topology == topology
                response = client.execute(PointQuery(population[0].filename))
                assert isinstance(response, Response)
                assert response.kind == "query"
                assert response.complete and not response.deadline_expired
                assert response.attribution["topology"] == topology
                stats = client.stats()
                assert stats["topology"] == topology
                assert stats["spec"]["topology"] == topology
                assert "service" in stats and "store" in stats

    def test_attribution_names_shards_and_replicas(self, population, tmp_path):
        with connect(spec_for("sharded_replicated", tmp_path), population) as client:
            attribution = client.execute(PointQuery("nope.dat")).attribution
            assert attribution["shards"] == 2
            assert attribution["replicas_per_shard"] == 1
            assert attribution["primaries"] == [0, 0]
        with connect(spec_for("replicated", tmp_path), population) as client:
            attribution = client.execute(PointQuery("nope.dat")).attribution
            assert attribution["replicas"] == 1
            assert attribution["primary"] == 0


class TestConnectPopulationLoading:
    def test_connect_loads_population_from_spec(self, population, tmp_path):
        path = tmp_path / "population.jsonl"
        save_files(population, path)
        spec = DeploymentSpec(topology="plain", store=CONFIG, population=str(path))
        with connect(spec) as client:
            assert client.execute(PointQuery(population[0].filename)).found

    def test_connect_without_population_rejected(self):
        with pytest.raises(ValueError, match="population"):
            connect(DeploymentSpec(topology="plain", store=CONFIG))


class TestClientMutations:
    @pytest.mark.parametrize("topology", list(TOPOLOGIES))
    def test_mutations_round_trip_everywhere(self, population, tmp_path, topology):
        generator = QueryWorkloadGenerator(population, seed=29)
        stream = generator.mutation_stream(4, 2, 2)
        with connect(spec_for(topology, tmp_path), population) as client:
            for kind, file in stream:
                response = getattr(client, kind)(file)
                assert response.kind == "mutation"
                assert response.receipt is not None
                assert response.receipt.kind == kind
            # Every staged mutation is immediately visible through the
            # same client (read-your-writes through the envelope).
            inserted = next(file for kind, file in stream if kind == "insert")
            assert client.execute(PointQuery(inserted.filename)).found

    def test_delete_of_unknown_file_reports_unknown(self, population, tmp_path):
        from repro.metadata.file_metadata import FileMetadata

        with connect(spec_for("plain", tmp_path), population) as client:
            ghost = FileMetadata(path="/nowhere/ghost.dat", attributes={"size": 1.0})
            response = client.delete(ghost)
            assert response.receipt is not None and not response.receipt.known


class TestAsyncSubmit:
    def test_submit_resolves_to_response(self, population, workload, tmp_path):
        with connect(spec_for("plain", tmp_path), population) as client:
            futures = [client.submit(q) for q in workload]
            client.service.drain()
            responses = [f.result() for f in futures]
            direct = [client.execute(q) for q in workload]
            assert [result_fingerprint(r.result) for r in responses] == [
                result_fingerprint(r.result) for r in direct
            ]

    def test_execute_many_preserves_order(self, population, workload, tmp_path):
        with connect(spec_for("sharded", tmp_path), population) as client:
            responses = client.execute_many(workload)
            assert len(responses) == len(workload)
            direct = [result_fingerprint(client.execute(q).result) for q in workload]
            assert [result_fingerprint(r.result) for r in responses] == direct

    def test_submit_rejects_paginated_options(self, population, tmp_path):
        with connect(spec_for("plain", tmp_path), population) as client:
            with pytest.raises(ValueError, match="paginated"):
                client.submit(
                    RangeQuery(("size",), (0.0,), (1e9,)),
                    RequestOptions(page_size=5),
                )


class TestEnvelope:
    def test_topk_response_carries_distances(self, population, tmp_path):
        query = TopKQuery(("size", "mtime"), (8192.0, 2100.0), 5)
        with connect(spec_for("plain", tmp_path), population) as client:
            response = client.execute(query)
            assert len(response.files) == 5
            assert len(response.distances) == 5
            assert response.distances == sorted(response.distances)
            summary = response.as_dict()
            assert summary["kind"] == "query" and summary["files"] == 5

    def test_closed_client_is_idempotent(self, population, tmp_path):
        client = connect(spec_for("plain", tmp_path), population)
        client.close()
        client.close()  # second close is a no-op
