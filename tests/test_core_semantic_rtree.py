"""Tests for the semantic R-tree."""

import numpy as np
import pytest

from repro.cluster.metrics import Metrics
from repro.core.semantic_rtree import SemanticRTree, StorageUnitDescriptor
from repro.rtree.mbr import MBR


def make_descriptors(n_units=12, seed=0, dim=4):
    """Descriptors forming 3 obvious clusters in both MBR and semantic space."""
    rng = np.random.default_rng(seed)
    descriptors = []
    for i in range(n_units):
        cluster = i % 3
        center = np.full(dim, 10.0 * cluster)
        lower = center + rng.random(dim)
        upper = lower + 1.0
        sem = np.zeros(3)
        sem[cluster] = 1.0
        sem += rng.normal(0, 0.05, size=3)
        descriptors.append(
            StorageUnitDescriptor(
                unit_id=i,
                mbr=MBR(lower, upper),
                centroid=(lower + upper) / 2,
                semantic_vector=sem,
                filenames=[f"u{i}-f{j}.dat" for j in range(5)],
                file_count=5,
            )
        )
    return descriptors


@pytest.fixture(scope="module")
def tree():
    return SemanticRTree.build(make_descriptors(), thresholds=[0.8, 0.5, 0.2], max_fanout=4)


class TestBuild:
    def test_empty_build_rejected(self):
        with pytest.raises(ValueError):
            SemanticRTree.build([], thresholds=[0.5])

    def test_single_unit_tree(self):
        tree = SemanticRTree.build(make_descriptors(1), thresholds=[0.5])
        assert tree.num_storage_units == 1
        assert tree.root.is_leaf
        assert tree.height == 1

    def test_leaves_registered(self, tree):
        assert tree.num_storage_units == 12
        assert set(tree.leaves.keys()) == set(range(12))

    def test_root_reaches_every_unit(self, tree):
        assert sorted(tree.root.descendant_unit_ids()) == list(range(12))

    def test_first_level_groups_partition_leaves(self, tree):
        groups = tree.first_level_groups()
        covered = [u for g in groups for u in g.descendant_unit_ids()]
        assert sorted(covered) == list(range(12))
        assert len(covered) == len(set(covered))

    def test_group_of_unit_consistent(self, tree):
        for unit_id in range(12):
            group = tree.group_of_unit(unit_id)
            assert unit_id in group.descendant_unit_ids()

    def test_semantic_grouping_respects_clusters(self, tree):
        # Units of the same synthetic cluster (i % 3) should share groups.
        for group in tree.first_level_groups():
            clusters = {u % 3 for u in group.descendant_unit_ids()}
            assert len(clusters) == 1

    def test_index_units_counted(self, tree):
        assert tree.num_index_units == len(tree.index_units())
        assert tree.num_index_units >= 3

    def test_fanout_bound(self, tree):
        for node in tree.nodes:
            if not node.is_leaf:
                assert len(node.children) <= tree.max_fanout

    def test_parent_mbr_covers_children(self, tree):
        for node in tree.nodes:
            if node.is_leaf or node.mbr is None:
                continue
            for child in node.children:
                if child.mbr is not None:
                    assert node.mbr.contains(child.mbr)

    def test_parent_bloom_covers_children_filenames(self, tree):
        for leaf in tree.leaves.values():
            node = leaf.parent
            while node is not None:
                for j in range(5):
                    assert node.bloom.contains(f"u{leaf.unit_id}-f{j}.dat")
                node = node.parent

    def test_file_counts_aggregate(self, tree):
        assert tree.root.file_count == 12 * 5

    def test_height_consistent(self, tree):
        assert tree.height >= 2


class TestTraversal:
    def test_leaves_for_range_prunes(self, tree):
        metrics = Metrics()
        # A window covering only cluster 0's MBRs (values around 10-12).
        hits = tree.leaves_for_range([0, 1], [9.0, 9.0], [12.0, 12.0], metrics)
        assert hits
        assert all(leaf.unit_id % 3 == 1 for leaf in hits)
        assert metrics.memory_index_accesses > 0

    def test_leaves_for_range_empty_region(self, tree):
        hits = tree.leaves_for_range([0], [100.0], [200.0])
        assert hits == []

    def test_groups_for_range(self, tree):
        groups = tree.groups_for_range([0], [0.0], [3.0])
        assert groups
        for g in groups:
            assert any(u % 3 == 0 for u in g.descendant_unit_ids())

    def test_most_correlated_group(self, tree):
        query = np.array([0.0, 1.0, 0.0])
        group, sim = tree.most_correlated_group(query)
        assert sim > 0.8
        assert all(u % 3 == 1 for u in group.descendant_unit_ids())

    def test_route_filename_finds_owner(self, tree):
        metrics = Metrics()
        hits = tree.route_filename("u7-f3.dat", metrics)
        assert any(leaf.unit_id == 7 for leaf in hits)
        assert metrics.bloom_probes > 0

    def test_route_missing_filename_mostly_empty(self, tree):
        empty = sum(1 for i in range(50) if not tree.route_filename(f"missing-{i}.bin"))
        assert empty > 40


class TestMaintenance:
    def test_refresh_leaf_propagates_mbr(self):
        tree = SemanticRTree.build(make_descriptors(6), thresholds=[0.8, 0.3], max_fanout=4)
        new_mbr = MBR(np.full(4, -50.0), np.full(4, -49.0))
        tree.refresh_leaf(0, mbr=new_mbr, file_count=9, new_filenames=["brand-new.dat"])
        assert tree.leaves[0].file_count == 9
        assert tree.root.mbr.contains(new_mbr)
        assert tree.leaves[0].bloom.contains("brand-new.dat")

    def test_allocate_and_forget_node(self):
        tree = SemanticRTree.build(make_descriptors(4), thresholds=[0.5], max_fanout=4)
        before = len(tree.nodes)
        node = tree.allocate_node(1)
        assert len(tree.nodes) == before + 1
        tree.forget_node(node)
        assert len(tree.nodes) == before

    def test_index_size_bytes_positive(self, tree):
        assert tree.index_size_bytes() > 0
