"""Tests for the staging overlay, the compactor and the ingest pipeline.

Covers the write path's behavioural contract: read-your-writes before
compaction (including deletion masking), byte-identical answers after
draining, mutation edge cases (insert-then-delete, duplicate inserts,
unknown deletes) and the compaction policy triggers.
"""

import pytest

from repro.core.smartstore import SmartStore, SmartStoreConfig, UNKNOWN_GROUP
from repro.ingest import (
    CompactionPolicy,
    IngestPipeline,
    StagingOverlay,
    WriteAheadLog,
)
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.service.cache import result_fingerprint
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import RangeQuery, TopKQuery

from helpers import make_files

#: Exhaustive search breadth so equivalence checks compare exact answers.
CONFIG = SmartStoreConfig(num_units=6, seed=1, search_breadth=64)


def probe_queries(files, seed=5, per_type=6):
    generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=seed)
    return (
        generator.point_queries(per_type, existing_fraction=0.8)
        + generator.range_queries(per_type)
        + generator.topk_queries(per_type, k=8)
    )


@pytest.fixture()
def store():
    return SmartStore.build(make_files(80), CONFIG)


@pytest.fixture()
def pipeline(store, tmp_path):
    with IngestPipeline(
        store, WriteAheadLog(tmp_path / "wal.jsonl", fsync_every=0)
    ) as p:
        yield p


def new_file(i=0, base_time=2000.0):
    return FileMetadata(
        path=f"/ingest/test-new-{i}.dat",
        attributes={
            "size": 5000.0 + i, "ctime": base_time, "mtime": base_time + 100.0,
            "atime": base_time + 200.0, "read_bytes": 3000.0, "write_bytes": 800.0,
            "access_count": 2.0, "owner": 1.0,
        },
    )


class TestOverlay:
    def test_latest_mutation_wins(self):
        overlay = StagingOverlay()
        f = new_file()
        overlay.stage("insert", f, group_id=1, unit_id=0, seq=1)
        assert overlay.get(f.file_id).kind == "insert"
        assert not overlay.is_deleted(f.file_id)
        overlay.stage("delete", f, group_id=1, unit_id=0, seq=2)
        assert len(overlay) == 1
        assert overlay.is_deleted(f.file_id)
        assert overlay.files_named(f.filename) == []

    def test_group_indexing_and_discard(self):
        overlay = StagingOverlay()
        a, b = new_file(1), new_file(2)
        overlay.stage("insert", a, group_id=1, unit_id=0, seq=1)
        overlay.stage("insert", b, group_id=2, unit_id=1, seq=2)
        assert overlay.group_sizes() == {1: 1, 2: 1}
        dropped = overlay.discard_group(1)
        assert [m.file.file_id for m in dropped] == [a.file_id]
        assert overlay.get(a.file_id) is None
        assert overlay.get(b.file_id) is not None

    def test_group_age_counts_mutations_since(self):
        overlay = StagingOverlay()
        overlay.stage("insert", new_file(1), group_id=1, unit_id=0, seq=1)
        for i in range(2, 6):
            overlay.stage("insert", new_file(i), group_id=2, unit_id=0, seq=i)
        assert overlay.group_age(1) == 5   # oldest entry, 5 mutations ago
        assert overlay.group_age(2) == 4
        assert overlay.group_age(99) == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            StagingOverlay().stage("upsert", new_file(), group_id=1, unit_id=0, seq=1)


class TestReadYourWrites:
    def test_insert_visible_immediately(self, pipeline):
        f = new_file()
        receipt = pipeline.insert(f)
        assert receipt.known and receipt.seq == 1
        store = pipeline.store
        assert store.point_query(f.filename).found
        r = store.range_query(("mtime",), (2050.0,), (2150.0,))
        assert any(m.file_id == f.file_id for m in r.files)
        t = store.topk_query(("size", "mtime"), (5000.0, 2100.0), k=3)
        assert any(m.file_id == f.file_id for m in t.files)

    def test_delete_masked_immediately(self, pipeline):
        store = pipeline.store
        victim = store.files[0]
        pipeline.delete(victim)
        assert not store.point_query(victim.filename).found
        r = store.range_query(("size",), (0.0,), (1e12,))
        assert all(m.file_id != victim.file_id for m in r.files)
        t = store.topk_query(
            ("size", "mtime"),
            (victim.get("size"), victim.get("mtime")),
            k=len(store.files),
        )
        assert all(m.file_id != victim.file_id for m in t.files)

    def test_modify_serves_new_values(self, pipeline):
        store = pipeline.store
        target = store.files[0]
        updated = target.with_updates(mtime=9999.0)
        pipeline.modify(updated)
        r = store.range_query(("mtime",), (9000.0,), (10000.0,))
        assert any(m.file_id == target.file_id for m in r.files)
        served = next(m for m in r.files if m.file_id == target.file_id)
        assert served.get("mtime") == 9999.0

    def test_modify_masks_stale_copy_out_of_window(self, pipeline):
        # A staged modify that moves the file OUT of a window must hide the
        # stale indexed copy from range queries immediately.
        store = pipeline.store
        target = store.files[0]
        old_mtime = target.get("mtime")
        window = ((old_mtime - 1.0,), (old_mtime + 1.0,))
        before = store.range_query(("mtime",), *window)
        assert any(m.file_id == target.file_id for m in before.files)
        pipeline.modify(target.with_updates(mtime=old_mtime + 50_000.0))
        after = store.range_query(("mtime",), *window)
        assert all(m.file_id != target.file_id for m in after.files)
        # And compaction serves the same answer.
        pipeline.compactor.drain()
        drained = store.range_query(("mtime",), *window)
        assert all(m.file_id != target.file_id for m in drained.files)

    def test_read_your_writes_without_versioning(self, tmp_path):
        config = SmartStoreConfig(
            num_units=6, seed=1, search_breadth=64, versioning_enabled=False
        )
        store = SmartStore.build(make_files(60), config)
        with IngestPipeline(store) as pipeline:
            f = new_file()
            pipeline.insert(f)
            # The overlay serves staged records even with the paper's
            # versioning mechanism ablated away.
            assert store.point_query(f.filename).found


class TestStagedTopKExactness:
    def test_many_staged_deletes_do_not_break_maxd_pruning(self, tmp_path):
        """Regression: staged deletes' indexed copies must not tighten MaxD.

        With many uncompacted deletes, the deleted records still sit on the
        storage units; if they enter the candidate pool they make the k-th
        distance look smaller than it really is, the group scan stops early
        and true survivors are missed.  The staged store must answer every
        top-k exactly like a fresh build over the surviving population.
        """
        store = SmartStore.build(make_files(120), CONFIG)
        with IngestPipeline(store) as pipeline:
            generator = QueryWorkloadGenerator(store.files, DEFAULT_SCHEMA, seed=41)
            for kind, f in generator.mutation_stream(10, 40, 10):
                getattr(pipeline, kind)(f)
            assert len(pipeline.overlay) == 60  # nothing compacted
            survivors = pipeline.materialized_files()
            probe_gen = QueryWorkloadGenerator(survivors, DEFAULT_SCHEMA, seed=43)
            queries = probe_gen.topk_queries(12, k=8)
            fresh = SmartStore.build(survivors, CONFIG)
            staged_fp = [result_fingerprint(store.execute(q)) for q in queries]
            fresh_fp = [result_fingerprint(fresh.execute(q)) for q in queries]
            assert staged_fp == fresh_fp


class TestMutationEdgeCases:
    def test_insert_then_delete_before_compaction(self, pipeline):
        store = pipeline.store
        f = new_file()
        before = store.cluster.total_files()
        pipeline.insert(f)
        pipeline.delete(f)
        assert not store.point_query(f.filename).found
        applied = pipeline.compactor.drain()
        assert applied == 2  # both changes applied, netting out
        assert store.cluster.total_files() == before
        assert store.file_by_id(f.file_id) is None
        assert not store.point_query(f.filename).found

    def test_reinsert_after_pending_delete_stays_deletable(self, pipeline):
        # insert -> delete -> re-insert -> delete, all before compaction:
        # the re-insert must follow the pending history's placement (one
        # chain, record order), so the final delete is known and the file
        # ends up absent.
        store = pipeline.store
        f = new_file()
        pipeline.insert(f)
        pipeline.delete(f)
        again = f.with_updates(size=9999.0)
        pipeline.insert(again)
        assert store.point_query(f.filename).found
        final = pipeline.delete(again)
        assert final.known
        pipeline.compactor.drain()
        assert store.file_by_id(f.file_id) is None
        assert not store.point_query(f.filename).found

    def test_reinsert_after_pending_delete_survives_drain(self, pipeline):
        store = pipeline.store
        f = new_file()
        pipeline.insert(f)
        pipeline.delete(f)
        again = f.with_updates(size=8888.0)
        pipeline.insert(again)
        pipeline.compactor.drain()
        assert store.file_by_id(f.file_id).get("size") == 8888.0
        assert store.point_query(f.filename).found

    def test_duplicate_insert_replaces_not_duplicates(self, pipeline):
        store = pipeline.store
        f = new_file()
        pipeline.insert(f)
        pipeline.compactor.drain()
        before = store.cluster.total_files()
        again = f.with_updates(size=7777.0)
        pipeline.insert(again)
        pipeline.compactor.drain()
        assert store.cluster.total_files() == before  # replaced, not copied
        assert store.file_by_id(f.file_id).get("size") == 7777.0
        result = store.point_query(f.filename)
        assert len(result.files) == 1

    def test_delete_unknown_file_is_observable_noop(self, pipeline):
        store = pipeline.store
        ghost = new_file(999)
        before_total = store.cluster.total_files()
        before_pop = len(store.files)
        receipt = pipeline.delete(ghost)
        assert not receipt.known
        assert receipt.group_id == UNKNOWN_GROUP
        assert pipeline.rejected == 1
        assert len(pipeline.overlay) == 0
        applied = pipeline.compactor.drain()
        assert applied == 0
        assert store.cluster.total_files() == before_total
        assert len(store.files) == before_pop
        # Leaf file counts stay consistent with the servers.
        for unit_id, leaf in store.tree.leaves.items():
            assert leaf.file_count == len(store.cluster.server(unit_id))

    def test_facade_delete_unknown_returns_sentinel(self, store):
        assert store.delete_file(new_file(998)) == UNKNOWN_GROUP
        assert store._pending_deletions == 0
        assert store.reconfigure() == 0

    def test_modify_unknown_returns_sentinel(self, store):
        assert store.modify_file(new_file(997)) == UNKNOWN_GROUP


class TestCompaction:
    def test_drain_equivalence_with_fresh_build(self, pipeline):
        store = pipeline.store
        generator = QueryWorkloadGenerator(store.files, DEFAULT_SCHEMA, seed=11)
        for kind, f in generator.mutation_stream(12, 8, 4):
            getattr(pipeline, kind)(f)
        queries = probe_queries(pipeline.materialized_files())
        pre = [result_fingerprint(store.execute(q)) for q in queries]
        pipeline.compactor.drain()
        assert len(pipeline.overlay) == 0
        assert store.versioning.total_changes() == 0
        post = [result_fingerprint(store.execute(q)) for q in queries]
        assert pre == post  # compaction changes no answer
        fresh = SmartStore.build(pipeline.materialized_files(), CONFIG)
        fresh_fp = [result_fingerprint(fresh.execute(q)) for q in queries]
        assert post == fresh_fp  # byte-identical to a fresh build

    def test_policy_count_threshold(self, store, tmp_path):
        policy = CompactionPolicy(max_staged_per_group=3, max_staged_total=1000)
        with IngestPipeline(store, policy=policy) as pipeline:
            generator = QueryWorkloadGenerator(store.files, DEFAULT_SCHEMA, seed=3)
            for kind, f in generator.mutation_stream(30, 0, 0, shuffle=False):
                pipeline.insert(f)
                pipeline.compactor.run_once()
            # The policy keeps every group below its threshold.
            assert all(
                n < 3 + 1 for n in pipeline.overlay.group_sizes().values()
            )
            assert pipeline.compactor.stats.group_compactions > 0

    def test_policy_total_threshold_drains_everything(self, store):
        policy = CompactionPolicy(max_staged_per_group=10_000, max_staged_total=5)
        with IngestPipeline(store, policy=policy) as pipeline:
            generator = QueryWorkloadGenerator(store.files, DEFAULT_SCHEMA, seed=4)
            for kind, f in generator.mutation_stream(5, 0, 0):
                pipeline.insert(f)
            assert pipeline.compactor.due_groups()  # total budget exceeded
            pipeline.compactor.run_once()
            assert len(pipeline.overlay) == 0

    def test_background_compactor_thread(self, store):
        import time

        policy = CompactionPolicy(max_staged_per_group=1, max_staged_total=2)
        with IngestPipeline(store, policy=policy) as pipeline:
            pipeline.compactor.interval = 0.01
            pipeline.compactor.start()
            assert pipeline.compactor.running
            generator = QueryWorkloadGenerator(store.files, DEFAULT_SCHEMA, seed=6)
            for kind, f in generator.mutation_stream(10, 0, 0):
                pipeline.insert(f)
            deadline = time.time() + 5.0
            while len(pipeline.overlay) and time.time() < deadline:
                time.sleep(0.01)
            assert len(pipeline.overlay) == 0
        assert not pipeline.compactor.running  # close() stopped it

    def test_hot_group_split(self):
        # A tiny deployment with an aggressive hot factor: pouring every
        # insert into one group must eventually split it.
        files = make_files(40)
        store = SmartStore.build(
            files, SmartStoreConfig(num_units=4, seed=1, search_breadth=64)
        )
        policy = CompactionPolicy(
            max_staged_per_group=5, max_staged_total=50, hot_group_factor=1.5
        )
        with IngestPipeline(store, policy=policy) as pipeline:
            generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=9)
            groups_before = len(store.tree.first_level_groups())
            for kind, f in generator.mutation_stream(120, 0, 0):
                pipeline.insert(f)
                pipeline.compactor.run_once()
            pipeline.compactor.drain()
            stats = pipeline.compactor.stats
            if stats.group_splits:
                assert len(store.tree.first_level_groups()) > groups_before
                # Every new group is hosted and reachable by the router.
                for g in store.tree.first_level_groups():
                    assert g.hosted_on is not None
                    assert g.node_id in store.offline_router.replicas
            # Whether or not a split happened, queries must stay exact.
            queries = probe_queries(pipeline.materialized_files(), per_type=4)
            fresh = SmartStore.build(
                pipeline.materialized_files(),
                SmartStoreConfig(num_units=4, seed=1, search_breadth=64),
            )
            assert [result_fingerprint(store.execute(q)) for q in queries] == [
                result_fingerprint(fresh.execute(q)) for q in queries
            ]


class TestPipelinePlumbing:
    def test_wal_logged_before_staging(self, pipeline):
        f = new_file()
        pipeline.insert(f)
        replay = pipeline.wal.replay()
        assert [r.kind for r in replay] == ["insert"]
        assert replay.records[0].file.file_id == f.file_id

    def test_unknown_delete_still_logged(self, pipeline):
        # The intent was accepted and made durable even though it staged
        # nothing; recovery replays it into the same observable no-op.
        pipeline.delete(new_file(996))
        assert [r.kind for r in pipeline.wal.replay()] == ["delete"]

    def test_materialized_files_nets_staged_state(self, pipeline):
        store = pipeline.store
        base = len(store.files)
        f = new_file()
        pipeline.insert(f)
        pipeline.delete(store.files[0])
        files = pipeline.materialized_files()
        assert len(files) == base  # +1 insert, -1 delete
        ids = {m.file_id for m in files}
        assert f.file_id in ids

    def test_closed_pipeline_rejects_mutations(self, store, tmp_path):
        pipeline = IngestPipeline(
            store, WriteAheadLog(tmp_path / "wal.jsonl")
        )
        pipeline.close()
        with pytest.raises(RuntimeError):
            pipeline.insert(new_file())

    def test_stats_shape(self, pipeline):
        pipeline.insert(new_file())
        stats = pipeline.stats()
        assert stats["mutations"] == 1
        assert stats["overlay"]["staged"] == 1
        assert stats["wal"]["last_seq"] == 1
        assert "compaction" in stats
