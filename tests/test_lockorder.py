"""Lock-order witness tests: the instrumented lock must catch a
deliberately inverted acquisition pair and a lock-held-across-fsync, and
must stay quiet on well-ordered code (the clean-run guarantee the
concurrency and fault suites rely on via their autouse fixtures)."""

import os
import socket
import threading

import pytest

from repro.analysis.lockorder import (
    LockOrderFinding,
    LockOrderWitness,
    witness_locks,
)


@pytest.fixture()
def witness():
    return LockOrderWitness()


def test_inverted_pair_reports_cycle(witness):
    a = witness.wrap(threading.Lock(), "A")
    b = witness.wrap(threading.Lock(), "B")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    kinds = [f.kind for f in witness.findings]
    assert kinds == ["cycle"]
    (finding,) = witness.findings
    assert set(finding.chain) == {"A", "B"}


def test_inversion_across_threads_reports_cycle(witness):
    a = witness.wrap(threading.Lock(), "A")
    b = witness.wrap(threading.Lock(), "B")

    def forward():
        with a:
            with b:
                pass

    def backward():
        with b:
            with a:
                pass

    t = threading.Thread(target=forward)
    t.start()
    t.join()
    backward()
    assert [f.kind for f in witness.findings] == ["cycle"]


def test_consistent_order_is_clean(witness):
    a = witness.wrap(threading.Lock(), "A")
    b = witness.wrap(threading.Lock(), "B")
    for _ in range(3):
        with a:
            with b:
                pass
    witness.assert_clean()


def test_cycle_reported_once(witness):
    a = witness.wrap(threading.Lock(), "A")
    b = witness.wrap(threading.Lock(), "B")
    for _ in range(3):
        with a:
            with b:
                pass
        with b:
            with a:
                pass
    assert len(witness.findings) == 1


def test_reentrant_rlock_adds_no_edges(witness):
    lock = witness.wrap(threading.RLock(), "R")
    other = witness.wrap(threading.RLock(), "S")
    with lock:
        with other:
            with lock:  # re-entrant: must not create S -> R
                pass
    with other:
        pass
    witness.assert_clean()


def test_fsync_under_strict_lock_is_flagged(witness, tmp_path):
    witness.install()
    try:
        lock = witness.wrap(threading.Lock(), "strict")
        fd = os.open(tmp_path / "f", os.O_CREAT | os.O_WRONLY)
        try:
            with lock:
                os.fsync(fd)
        finally:
            os.close(fd)
    finally:
        witness.uninstall()
    (finding,) = witness.findings
    assert finding.kind == "blocking-under-lock"
    assert finding.chain == ("strict",)
    assert "os.fsync" in finding.detail


def test_fsync_under_allow_blocking_lock_is_clean(witness, tmp_path):
    witness.install()
    try:
        lock = witness.wrap(
            threading.RLock(), "wal_write_path", allow_blocking=True
        )
        fd = os.open(tmp_path / "f", os.O_CREAT | os.O_WRONLY)
        try:
            with lock:
                os.fsync(fd)
        finally:
            os.close(fd)
    finally:
        witness.uninstall()
    witness.assert_clean()


def test_socket_send_under_lock_is_flagged(witness):
    witness.install()
    try:
        lock = witness.wrap(threading.Lock(), "conn")
        left, right = socket.socketpair()
        try:
            with lock:
                left.sendall(b"ping")
            assert right.recv(4) == b"ping"  # outside any lock: clean
        finally:
            left.close()
            right.close()
    finally:
        witness.uninstall()
    kinds = [f.kind for f in witness.findings]
    assert kinds == ["blocking-under-lock"]
    assert "socket.sendall" in witness.findings[0].detail


def test_uninstall_restores_patches(witness):
    original_fsync = os.fsync
    original_sendall = socket.socket.sendall
    witness.install()
    witness.uninstall()
    assert os.fsync is original_fsync
    assert socket.socket.sendall is original_sendall


def test_condition_wait_notify_under_wrapped_lock(witness):
    lock = witness.wrap(threading.RLock(), "cond_lock")
    cond = threading.Condition(lock)
    ready = []

    def waiter():
        with cond:
            while not ready:
                cond.wait(timeout=5)

    t = threading.Thread(target=waiter)
    t.start()
    with cond:
        ready.append(True)
        cond.notify()
    t.join(timeout=5)
    assert not t.is_alive()
    witness.assert_clean()


def test_assert_clean_raises_with_rendered_findings(witness):
    a = witness.wrap(threading.Lock(), "A")
    b = witness.wrap(threading.Lock(), "B")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    with pytest.raises(AssertionError, match="cycle"):
        witness.assert_clean()


def test_report_structure(witness):
    a = witness.wrap(threading.Lock(), "A")
    b = witness.wrap(threading.Lock(), "B")
    with a:
        with b:
            pass
    report = witness.report()
    assert report["locks"] == ["A", "B"]
    assert report["edges"][0]["from"] == "A"
    assert report["edges"][0]["to"] == "B"
    assert report["findings"] == []


def test_finding_render():
    finding = LockOrderFinding(
        kind="cycle", detail="d", chain=("A", "B"), thread="T"
    )
    assert "A -> B" in finding.render()
    assert "cycle" in finding.render()


def test_witness_locks_wraps_repro_created_locks():
    """Factory patching must witness locks created by repro code (the
    service stack) and pass stdlib/test-created locks through raw."""
    from repro.core.smartstore import SmartStore, SmartStoreConfig
    from repro.service import QueryService
    from repro.workloads.types import PointQuery

    from helpers import make_files

    files = make_files(30, clusters=2)
    with witness_locks() as witness:
        local = threading.Lock()  # created from test code: stays raw
        assert type(local).__name__ != "OrderedLock"
        store = SmartStore.build(
            files, SmartStoreConfig(num_units=4, seed=3)
        )
        with QueryService(store) as service:
            result = service.execute(PointQuery(filename=files[0].filename))
            assert result.files
    report = witness.report()
    witness.assert_clean()
    # The service stack took nested locks at least once (dispatcher /
    # telemetry / cache interplay), so the graph is non-trivial.
    assert isinstance(report["edges"], list)
    assert threading.Lock is not None


def test_witness_locks_restores_factories():
    original_lock = threading.Lock
    original_rlock = threading.RLock
    with witness_locks():
        assert threading.Lock is not original_lock
    assert threading.Lock is original_lock
    assert threading.RLock is original_rlock
