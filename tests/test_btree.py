"""Tests for the B+-tree substrate."""

import numpy as np
import pytest

from repro.btree.bplustree import BPlusTree


def build(keys, order=8):
    tree = BPlusTree(order=order)
    for i, k in enumerate(keys):
        tree.insert(float(k), i)
    return tree


@pytest.fixture(scope="module")
def random_keys():
    return np.random.default_rng(17).random(500) * 1000


class TestConstruction:
    def test_invalid_order(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.search(5.0) == []
        assert tree.range_search(0, 10) == []
        assert tree.min_key() is None
        assert tree.max_key() is None

    def test_size_tracks_inserts(self, random_keys):
        tree = build(random_keys)
        assert len(tree) == len(random_keys)

    def test_height_logarithmic(self, random_keys):
        tree = build(random_keys, order=16)
        assert tree.height <= 4

    def test_node_count_positive(self, random_keys):
        assert build(random_keys).node_count() > 1


class TestSearch:
    def test_point_search(self, random_keys):
        tree = build(random_keys)
        for i in (0, 100, 499):
            assert i in tree.search(float(random_keys[i]))

    def test_missing_key(self, random_keys):
        tree = build(random_keys)
        assert tree.search(-1.0) == []

    def test_duplicates_all_returned(self):
        tree = BPlusTree(order=4)
        for i in range(20):
            tree.insert(7.0, i)
        tree.insert(8.0, 99)
        assert sorted(tree.search(7.0)) == list(range(20))

    def test_items_sorted(self, random_keys):
        tree = build(random_keys)
        keys = [k for k, _ in tree.items()]
        assert keys == sorted(keys)
        assert len(keys) == len(random_keys)

    def test_min_max_keys(self, random_keys):
        tree = build(random_keys)
        assert tree.min_key() == pytest.approx(random_keys.min())
        assert tree.max_key() == pytest.approx(random_keys.max())


class TestRangeSearch:
    def test_matches_brute_force(self, random_keys):
        tree = build(random_keys)
        rng = np.random.default_rng(23)
        for _ in range(20):
            lo = float(rng.random() * 900)
            hi = lo + float(rng.random() * 200)
            got = sorted(v for _, v in tree.range_search(lo, hi))
            expected = sorted(int(i) for i in np.nonzero((random_keys >= lo) & (random_keys <= hi))[0])
            assert got == expected

    def test_inverted_range_empty(self, random_keys):
        tree = build(random_keys)
        assert tree.range_search(10, 5) == []

    def test_results_in_key_order(self, random_keys):
        tree = build(random_keys)
        pairs = tree.range_search(100, 600)
        keys = [k for k, _ in pairs]
        assert keys == sorted(keys)

    def test_count_in_range(self, random_keys):
        tree = build(random_keys)
        assert tree.count_in_range(-1, 2000) == len(random_keys)


class TestDeletion:
    def test_delete_existing(self):
        tree = build([1, 2, 3, 4, 5])
        assert tree.delete(3.0, 2) is True
        assert len(tree) == 4
        assert tree.search(3.0) == []

    def test_delete_missing(self):
        tree = build([1, 2, 3])
        assert tree.delete(9.0, 0) is False
        assert tree.delete(1.0, 999) is False

    def test_delete_one_duplicate_keeps_others(self):
        tree = BPlusTree(order=4)
        tree.insert(5.0, "a")
        tree.insert(5.0, "b")
        assert tree.delete(5.0, "a")
        assert tree.search(5.0) == ["b"]


class TestAccessCounter:
    def test_counter_counts_node_visits(self):
        counter = {"n": 0}
        tree = BPlusTree(order=4, access_counter=lambda: counter.__setitem__("n", counter["n"] + 1))
        for i in range(100):
            tree.insert(float(i), i)
        before = counter["n"]
        tree.range_search(10, 90)
        assert counter["n"] > before
