"""Tests for the HP / MSN / EECS trace profiles."""

import pytest

from repro.traces.eecs import EECS_ORIGINAL_SUMMARY, eecs_config, eecs_trace
from repro.traces.hp import HP_ORIGINAL_SUMMARY, hp_config, hp_trace
from repro.traces.msn import MSN_ORIGINAL_SUMMARY, msn_config, msn_trace


class TestOriginalSummaries:
    def test_hp_matches_table1(self):
        s = HP_ORIGINAL_SUMMARY
        assert s.total_requests == 94_700_000
        assert s.active_users == 32
        assert s.user_accounts == 207
        assert s.active_files == 969_000
        assert s.total_files == 4_000_000

    def test_msn_matches_table2(self):
        s = MSN_ORIGINAL_SUMMARY
        assert s.total_files == 1_250_000
        assert s.total_reads == 3_300_000
        assert s.total_writes == 1_170_000
        assert s.duration_hours == 6.0
        assert s.total_io == 4_470_000

    def test_eecs_matches_table3(self):
        s = EECS_ORIGINAL_SUMMARY
        assert s.total_reads == 460_000
        assert s.total_writes == 667_000
        assert s.read_bytes == pytest.approx(5.1 * 1024**3)
        assert s.write_bytes == pytest.approx(9.1 * 1024**3)
        assert s.total_requests == 4_440_000


class TestConfigs:
    def test_invalid_scale_rejected(self):
        for cfg in (hp_config, msn_config, eecs_config):
            with pytest.raises(ValueError):
                cfg(scale=0)

    def test_hp_profile_ratios(self):
        cfg = hp_config()
        assert cfg.n_users == 32
        assert cfg.user_accounts == 207
        assert cfg.read_fraction > cfg.write_fraction

    def test_msn_profile_read_write_mix(self):
        cfg = msn_config()
        # 3.30M reads : 1.17M writes ~= 2.8 : 1
        ratio = cfg.read_fraction / cfg.write_fraction
        assert 2.0 < ratio < 4.0
        assert cfg.duration_hours == 6.0

    def test_eecs_profile_write_heavy_small_requests(self):
        cfg = eecs_config()
        assert cfg.write_fraction > cfg.read_fraction
        assert cfg.mean_read_bytes < 16 * 1024
        assert cfg.mean_write_bytes < 20 * 1024

    def test_scale_controls_size(self):
        small = msn_config(scale=0.2)
        large = msn_config(scale=1.0)
        assert small.n_files < large.n_files
        assert small.n_requests < large.n_requests


class TestGeneratedTraces:
    @pytest.mark.parametrize("maker", [hp_trace, msn_trace, eecs_trace])
    def test_small_traces_generate(self, maker):
        trace = maker(scale=0.1)
        assert len(trace.files) >= 200
        assert len(trace.records) >= 500
        summary = trace.summary()
        assert summary.total_requests == len(trace.records)

    def test_msn_read_write_mix_in_generated_trace(self):
        trace = msn_trace(scale=0.3)
        s = trace.summary()
        assert s.total_reads > s.total_writes

    def test_eecs_write_heavier_than_read(self):
        trace = eecs_trace(scale=0.3)
        s = trace.summary()
        assert s.total_writes > s.total_reads
