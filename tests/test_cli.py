"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    EXPERIMENT_INDEX,
    _parse_range_terms,
    _parse_topk_terms,
    build_parser,
    main,
)
from repro.persistence import load_snapshot, load_trace, save_files

from helpers import make_files


class TestParsers:
    def test_range_terms(self):
        q = _parse_range_terms(["size=10:20", "mtime=0:100"])
        assert q.attributes == ("size", "mtime")
        assert q.lower == (10.0, 0.0)
        assert q.upper == (20.0, 100.0)

    def test_range_terms_invalid(self):
        with pytest.raises(ValueError):
            _parse_range_terms(["size=10"])
        with pytest.raises(ValueError):
            _parse_range_terms(["size"])

    def test_topk_terms(self):
        q = _parse_topk_terms(["size=300", "mtime=50"], k=6)
        assert q.attributes == ("size", "mtime")
        assert q.values == (300.0, 50.0)
        assert q.k == 6

    def test_topk_terms_invalid(self):
        with pytest.raises(ValueError):
            _parse_topk_terms(["size"], k=3)

    def test_build_parser_has_all_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["experiments"])
        assert args.command == "experiments"


class TestTraceCommand:
    def test_trace_summary_printed(self, capsys):
        assert main(["trace", "--profile", "generic", "--scale", "0.05", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "trace" in out.lower()
        assert "total_requests" in out

    def test_trace_saved(self, tmp_path, capsys):
        out_file = tmp_path / "trace.jsonl"
        pop_file = tmp_path / "pop.jsonl"
        code = main([
            "trace", "--profile", "generic", "--scale", "0.05", "--seed", "2",
            "--output", str(out_file), "--population-output", str(pop_file),
        ])
        assert code == 0
        trace = load_trace(out_file)
        assert len(trace.files) > 0
        assert pop_file.exists()

    def test_trace_with_tif(self, capsys):
        assert main(["trace", "--profile", "generic", "--scale", "0.05", "--tif", "3"]) == 0
        assert "TIF=3" in capsys.readouterr().out


class TestBuildCommand:
    def test_build_from_profile(self, capsys, tmp_path):
        snap_path = tmp_path / "snap.json"
        code = main([
            "build", "--profile", "generic", "--scale", "0.05", "--units", "6",
            "--snapshot", str(snap_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "num_units" in out
        snapshot = load_snapshot(snap_path)
        assert snapshot.num_units == 6

    def test_build_from_saved_population(self, capsys, tmp_path):
        pop = tmp_path / "pop.jsonl"
        save_files(make_files(80, clusters=4), pop)
        assert main(["build", "--input", str(pop), "--units", "5"]) == 0
        assert "num_files" in capsys.readouterr().out

    def test_build_missing_input_file(self, capsys):
        assert main(["build", "--input", "/no/such/file.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err


class TestQueryCommand:
    @pytest.fixture()
    def population(self, tmp_path):
        path = tmp_path / "pop.jsonl"
        save_files(make_files(120, clusters=4), path)
        return str(path)

    def test_point_query(self, population, capsys):
        files = make_files(120, clusters=4)
        code = main([
            "query", "--input", population, "--units", "6", "point", files[0].filename,
        ])
        assert code == 0
        assert "point query" in capsys.readouterr().out

    def test_range_query(self, population, capsys):
        code = main([
            "query", "--input", population, "--units", "6",
            "range", "size=0:1e9", "owner=0:1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "range query" in out
        assert "latency" in out

    def test_topk_query(self, population, capsys):
        code = main([
            "query", "--input", population, "--units", "6", "-k", "5",
            "topk", "size=4096", "mtime=2100",
        ])
        assert code == 0
        assert "5" in capsys.readouterr().out

    def test_bad_range_term_is_an_error(self, population, capsys):
        code = main(["query", "--input", population, "range", "size"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestCompareCommand:
    def test_compare_prints_all_systems(self, capsys, tmp_path):
        pop = tmp_path / "pop.jsonl"
        save_files(make_files(100, clusters=4), pop)
        code = main([
            "compare", "--input", str(pop), "--units", "5", "--queries", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("SmartStore", "R-tree", "DBMS", "Directory tree", "Spyglass"):
            assert name in out


class TestServeBenchCommand:
    def test_serve_bench_end_to_end_on_tiny_trace(self, capsys, tmp_path):
        pop = tmp_path / "pop.jsonl"
        save_files(make_files(100, clusters=4), pop)
        code = main([
            "serve-bench", "--input", str(pop), "--units", "5",
            "--queries", "4", "--repeat", "3", "--workers", "2",
            "--batch-window", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serve-bench" in out
        # the four service ablations plus the serial baseline
        assert "serial uncached" in out
        assert "cache + batching" in out
        assert "cache only" in out
        assert "batching only" in out
        # every configuration must have answered exactly like the baseline
        assert "NO" not in out
        # telemetry table with per-type percentiles
        assert "service telemetry" in out
        assert "p99 (ms)" in out

    def test_serve_bench_closed_loop(self, capsys, tmp_path):
        pop = tmp_path / "pop.jsonl"
        save_files(make_files(80, clusters=4), pop)
        code = main([
            "serve-bench", "--input", str(pop), "--units", "4",
            "--queries", "3", "--repeat", "2", "--workers", "2",
            "--mode", "closed", "--clients", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "closed loop" in out
        assert "NO" not in out

    def test_serve_bench_registered_in_experiments(self):
        assert "bench_service_throughput.py" in EXPERIMENT_INDEX


class TestIngestBenchCommand:
    def test_ingest_bench_end_to_end_on_tiny_trace(self, capsys, tmp_path):
        pop = tmp_path / "pop.jsonl"
        save_files(make_files(100, clusters=4), pop)
        code = main([
            "ingest-bench", "--input", str(pop), "--units", "4",
            "--mutations", "30", "--fsync-batch", "8",
            "--wal-dir", str(tmp_path / "wal"),
        ])
        out = capsys.readouterr().out
        # Exit code 0 is itself the assertion that both correctness gates
        # (crash recovery + drain equivalence) passed.
        assert code == 0
        assert "ingest-bench" in out
        assert "wal fsync/record + compaction" in out
        assert "no compaction" in out
        assert "no wal (volatile)" in out
        assert "crash recovery identical" in out
        assert "drain == fresh build" in out
        assert "NO" not in out
        # WAL artefacts landed where asked.
        assert any((tmp_path / "wal").glob("wal-*.jsonl"))

    def test_ingest_bench_registered_in_experiments(self):
        assert "bench_ingest_throughput.py" in EXPERIMENT_INDEX

    def test_shard_bench_end_to_end_on_tiny_trace(self, capsys, tmp_path):
        pop = tmp_path / "pop.jsonl"
        save_files(make_files(120, clusters=4), pop)
        code = main([
            "shard-bench", "--input", str(pop), "--units", "6",
            "--shards", "1", "3", "--queries", "4", "--mutations", "24",
        ])
        out = capsys.readouterr().out
        # Exit code 0 is itself the assertion that every phase of every
        # shard count answered fingerprint-identically to the baseline.
        assert code == 0
        assert "shard-bench" in out
        assert "pre-mutation identical" in out
        assert "mutations in flight identical" in out
        assert "drained identical" in out
        assert "NO" not in out

    def test_shard_bench_min_speedup_gate_can_fail(self, capsys, tmp_path):
        pop = tmp_path / "pop.jsonl"
        save_files(make_files(80, clusters=4), pop)
        # An absurd requirement must flip the exit code even though the
        # equivalence gates pass.
        code = main([
            "shard-bench", "--input", str(pop), "--units", "4",
            "--shards", "1", "2", "--queries", "2", "--mutations", "12",
            "--min-speedup", "1000",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "throughput gate" in out

    def test_shard_bench_min_speedup_without_single_shard_row(self, capsys, tmp_path):
        # Regression: no 1-shard row means no speedup base; the gate must
        # report "n/a" and fail cleanly instead of raising a TypeError.
        pop = tmp_path / "pop.jsonl"
        save_files(make_files(80, clusters=4), pop)
        code = main([
            "shard-bench", "--input", str(pop), "--units", "4",
            "--shards", "2", "4", "--queries", "2", "--mutations", "12",
            "--min-speedup", "1.5",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "n/a" in out

    def test_shard_bench_registered_in_experiments(self):
        assert "bench_shard_scaling.py" in EXPERIMENT_INDEX


class TestReplicaBenchCommand:
    def test_replica_bench_end_to_end_on_tiny_trace(self, capsys, tmp_path):
        pop = tmp_path / "pop.jsonl"
        save_files(make_files(100, clusters=4), pop)
        code = main([
            "replica-bench", "--input", str(pop), "--units", "6",
            "--shards", "2", "--replicas", "1", "--queries", "3",
            "--mutations", "18", "--modes", "async",
        ])
        out = capsys.readouterr().out
        # Exit code 0 is itself the assertion: every primary was killed
        # mid-stream and every phase still answered identically with zero
        # failed requests and bounded lag.
        assert code == 0
        assert "replica-bench" in out
        assert "async: failed over (in flight) identical" in out
        assert "async: zero failed requests" in out
        assert "async: lag within bounded window" in out
        assert "NO" not in out

    def test_replica_bench_help_documents_the_storm(self, capsys):
        with pytest.raises(SystemExit):
            main(["replica-bench", "--help"])
        out = capsys.readouterr().out
        assert "--replicas" in out and "--max-lag" in out

    def test_replica_bench_registered_in_experiments(self):
        assert "bench_replica_failover.py" in EXPERIMENT_INDEX


class TestExperimentsCommand:
    def test_lists_every_bench_module(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for module in EXPERIMENT_INDEX:
            assert module in out


class TestClientBenchCommand:
    def test_client_bench_end_to_end_on_tiny_trace(self, capsys, tmp_path):
        spec_out = tmp_path / "spec.json"
        code = main([
            "client-bench", "--profile", "generic", "--scale", "0.05",
            "--seed", "5", "--units", "4", "--topology", "sharded",
            "--shards", "2", "--queries", "3", "--page-size", "4",
            "--save-spec", str(spec_out),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "client-API gate" in out
        assert "NO" not in out.split("client-API gate")[1]
        assert spec_out.exists()

    def test_client_bench_loads_spec_file(self, capsys, tmp_path):
        from repro.api import DeploymentSpec, save_spec

        spec_path = tmp_path / "replicated.json"
        save_spec(DeploymentSpec(topology="replicated", replicas=1), spec_path)
        code = main([
            "client-bench", "--profile", "generic", "--scale", "0.05",
            "--seed", "6", "--units", "4", "--queries", "2",
            "--spec", str(spec_path),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "replicated" in out

    def test_client_bench_durable_requires_wal_dir(self, capsys, tmp_path):
        code = main([
            "client-bench", "--profile", "generic", "--scale", "0.05",
            "--seed", "7", "--units", "4", "--topology", "durable",
            "--queries", "2",
        ])
        assert code == 2  # spec validation error surfaces as a CLI error
        assert "wal_dir" in capsys.readouterr().err

    def test_client_bench_durable_with_wal_dir(self, capsys, tmp_path):
        code = main([
            "client-bench", "--profile", "generic", "--scale", "0.05",
            "--seed", "8", "--units", "4", "--topology", "durable",
            "--wal-dir", str(tmp_path / "wal"), "--queries", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "durable" in out
