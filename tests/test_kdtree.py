"""Tests for the K-D tree substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.kdtree.kdtree import KDTree

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)


def _brute_range(points, lower, upper):
    inside = np.all((points >= lower) & (points <= upper), axis=1)
    return set(np.nonzero(inside)[0].tolist())


def _brute_knn(points, query, k):
    dists = np.sqrt(((points - query[None, :]) ** 2).sum(axis=1))
    order = np.argsort(dists, kind="stable")[:k]
    return dists[order]


class TestConstruction:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            KDTree(np.empty((0, 3)))
        with pytest.raises(ValueError):
            KDTree(np.ones(5))
        with pytest.raises(ValueError):
            KDTree(np.ones((5, 2)), leaf_size=0)

    def test_basic_properties(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(200, 4))
        tree = KDTree(points, leaf_size=8)
        assert len(tree) == 200
        assert tree.dimension == 4
        assert tree.node_count >= 200 // 8
        assert tree.height() >= 3
        assert "KDTree" in repr(tree)

    def test_identical_points_become_one_leaf(self):
        points = np.ones((50, 3))
        tree = KDTree(points, leaf_size=4)
        assert tree.height() == 1
        assert len(tree.range_search([1, 1, 1], [1, 1, 1])) == 50

    def test_access_counter_called(self):
        counts = []
        tree = KDTree(np.random.default_rng(1).normal(size=(100, 2)), leaf_size=4,
                      access_counter=lambda c=1: counts.append(c))
        tree.range_search([-10, -10], [10, 10])
        assert counts  # every visited node was charged


class TestRangeSearch:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 100, size=(500, 3))
        tree = KDTree(points, leaf_size=10)
        for _ in range(20):
            lower = rng.uniform(0, 80, size=3)
            upper = lower + rng.uniform(0, 40, size=3)
            got = set(tree.range_search(lower, upper))
            assert got == _brute_range(points, lower, upper)

    def test_empty_box(self):
        points = np.random.default_rng(4).uniform(0, 1, size=(100, 2))
        tree = KDTree(points)
        assert tree.range_search([5, 5], [6, 6]) == []

    def test_full_box_returns_everything(self):
        points = np.random.default_rng(5).uniform(0, 1, size=(120, 2))
        tree = KDTree(points, leaf_size=7)
        assert len(tree.range_search([-1, -1], [2, 2])) == 120

    def test_validation(self):
        tree = KDTree(np.random.default_rng(6).uniform(size=(10, 2)))
        with pytest.raises(ValueError):
            tree.range_search([0.0], [1.0])
        with pytest.raises(ValueError):
            tree.range_search([1.0, 1.0], [0.0, 0.0])


class TestKNN:
    def test_matches_brute_force_distances(self):
        rng = np.random.default_rng(7)
        points = rng.normal(size=(300, 4))
        tree = KDTree(points, leaf_size=12)
        for _ in range(15):
            query = rng.normal(size=4)
            got = tree.knn(query, 10)
            assert len(got) == 10
            got_d = np.array([d for _, d in got])
            expected_d = _brute_knn(points, query, 10)
            assert np.allclose(np.sort(got_d), expected_d)
            assert list(got_d) == sorted(got_d)

    def test_k_larger_than_population(self):
        points = np.random.default_rng(8).normal(size=(5, 2))
        tree = KDTree(points)
        assert len(tree.knn([0.0, 0.0], 50)) == 5

    def test_exact_match_is_first(self):
        points = np.random.default_rng(9).uniform(0, 1, size=(64, 3))
        tree = KDTree(points, leaf_size=4)
        idx, dist = tree.knn(points[17], 1)[0]
        assert idx == 17 or dist == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        tree = KDTree(np.random.default_rng(10).uniform(size=(10, 2)))
        with pytest.raises(ValueError):
            tree.knn([0.0], 3)
        with pytest.raises(ValueError):
            tree.knn([0.0, 0.0], 0)


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        points=npst.arrays(np.float64, st.tuples(st.integers(5, 60), st.integers(1, 4)),
                           elements=finite),
        seed=st.integers(0, 1000),
    )
    def test_range_and_knn_agree_with_brute_force(self, points, seed):
        rng = np.random.default_rng(seed)
        tree = KDTree(points, leaf_size=5)
        lower = points.min(axis=0) + rng.uniform(0, 1, size=points.shape[1])
        upper = lower + rng.uniform(0, np.ptp(points, axis=0) + 1.0)
        lower, upper = np.minimum(lower, upper), np.maximum(lower, upper)
        assert set(tree.range_search(lower, upper)) == _brute_range(points, lower, upper)

        k = min(5, len(points))
        query = rng.uniform(points.min(axis=0), points.max(axis=0) + 1e-9)
        got = np.sort([d for _, d in tree.knn(query, k)])
        assert np.allclose(got, _brute_knn(points, query, k))
