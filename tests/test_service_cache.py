"""Tests for the result cache: LRU behaviour, the Bloom-backed negative
cache, fingerprinting, and — the critical property — versioning-aware
invalidation keeping service answers exactly equal to a cold SmartStore."""

from __future__ import annotations

import pytest

from repro.cluster.metrics import Metrics
from repro.core.queries import QueryResult
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.core.versioning import VersionedChange, VersioningManager
from repro.metadata.file_metadata import FileMetadata
from repro.service import QueryService, ResultCache, ServiceConfig, result_fingerprint
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery, RangeQuery

from helpers import make_files


def _result(files=(), found=None, distances=()):
    files = list(files)
    return QueryResult(
        files=files,
        metrics=Metrics(),
        latency=0.001,
        groups_visited=1,
        hops=0,
        found=bool(files) if found is None else found,
        distances=list(distances),
    )


def _file(path="/p/a.dat", **attrs):
    return FileMetadata(path=path, attributes={"size": 1.0, **attrs})


# ---------------------------------------------------------------------------- fingerprint
class TestResultFingerprint:
    def test_same_payload_same_digest(self):
        a = _result([_file()], distances=[0.5])
        b = _result([_file()], distances=[0.5])
        assert result_fingerprint(a) == result_fingerprint(b)

    def test_ignores_cost_fields(self):
        a = _result([_file()])
        b = _result([_file()])
        b.latency = 99.0
        b.metrics.record_message(5)
        b.hops = 7
        assert result_fingerprint(a) == result_fingerprint(b)

    def test_sensitive_to_files_found_and_distances(self):
        base = _result([_file()])
        assert result_fingerprint(base) != result_fingerprint(_result([]))
        assert result_fingerprint(base) != result_fingerprint(
            _result([_file("/p/b.dat")])
        )
        assert result_fingerprint(_result([], found=False)) != result_fingerprint(
            _result([], found=True)
        )
        assert result_fingerprint(
            _result([_file()], distances=[0.1])
        ) != result_fingerprint(_result([_file()], distances=[0.2]))


# ---------------------------------------------------------------------------- unit behaviour
class TestResultCacheUnit:
    def test_positive_roundtrip(self):
        cache = ResultCache(capacity=4)
        query = PointQuery("a.dat")
        assert cache.lookup(query) is None
        stored = _result([_file("/p/a.dat")])
        cache.store(query, stored)
        hit = cache.lookup(query)
        assert hit is not None and hit.source == "cache"
        assert result_fingerprint(hit.result) == result_fingerprint(stored)
        # serving copy carries cache-hit cost, not the original's
        assert hit.result.metrics.memory_index_accesses == 1
        assert hit.result.groups_visited == 0

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        q1, q2, q3 = (PointQuery(f"f{i}") for i in range(3))
        cache.store(q1, _result([_file("/p/1")]))
        cache.store(q2, _result([_file("/p/2")]))
        cache.lookup(q1)  # refresh q1: q2 becomes LRU
        cache.store(q3, _result([_file("/p/3")]))
        assert cache.lookup(q2) is None
        assert cache.lookup(q1) is not None
        assert cache.stats.evictions == 1

    def test_range_results_cached(self):
        cache = ResultCache(capacity=4)
        query = RangeQuery(("size",), (0.0,), (10.0,))
        cache.store(query, _result([_file()]))
        equal_window = RangeQuery(("size",), (0.0,), (10.0,))
        assert cache.lookup(equal_window) is not None

    def test_negative_cache_roundtrip(self):
        cache = ResultCache(capacity=4)
        miss = PointQuery("nonexistent.dat")
        cache.store(miss, _result([], found=False))
        hit = cache.lookup(miss)
        assert hit is not None and hit.source == "negative"
        assert hit.result.found is False and hit.result.files == []
        assert hit.result.metrics.bloom_probes == 1
        assert cache.negative_size == 1
        assert len(cache) == 0  # misses never occupy LRU slots

    def test_negative_cache_no_false_negatives(self):
        """Every recorded miss must be found again (Bloom has no false negatives)."""
        cache = ResultCache(capacity=4, negative_bits=64, negative_hashes=3)
        names = [f"missing-{i}.dat" for i in range(40)]
        for name in names:
            cache.store(PointQuery(name), _result([], found=False))
        for name in names:
            hit = cache.lookup(PointQuery(name))
            assert hit is not None and hit.source == "negative"

    def test_negative_cache_exactness_under_bloom_false_positives(self):
        """A tiny, saturated filter must never claim an unseen name missed."""
        cache = ResultCache(capacity=4, negative_bits=8, negative_hashes=1)
        for i in range(50):
            cache.store(PointQuery(f"seen-{i}"), _result([], found=False))
        # The 8-bit filter is saturated: it answers "maybe" for everything.
        # The exact set must still reject names never recorded as misses.
        assert cache.lookup(PointQuery("never-queried")) is None

    def test_negative_capacity_reset(self):
        cache = ResultCache(capacity=4, negative_capacity=3)
        for i in range(4):
            cache.store(PointQuery(f"m{i}"), _result([], found=False))
        assert cache.negative_size <= 3

    def test_invalidate_flushes_everything(self):
        cache = ResultCache(capacity=4)
        cache.store(PointQuery("hit"), _result([_file()]))
        cache.store(PointQuery("miss"), _result([], found=False))
        cache.invalidate()
        assert cache.lookup(PointQuery("hit")) is None
        assert cache.lookup(PointQuery("miss")) is None
        assert cache.stats.invalidations == 1

    def test_invalidate_on_empty_cache_is_not_counted(self):
        # Regression: the flush counter used to increment even when both
        # the LRU and the negative cache were already empty, inflating the
        # no-op flush count in telemetry.
        cache = ResultCache(capacity=4)
        cache.invalidate()
        assert cache.stats.invalidations == 0
        cache.store(PointQuery("hit"), _result([_file()]))
        cache.invalidate()
        cache.invalidate()  # already empty again: must not count
        assert cache.stats.invalidations == 1
        cache.store(PointQuery("miss"), _result([], found=False))
        cache.invalidate()  # negative side alone also counts as a real flush
        assert cache.stats.invalidations == 2

    def test_stats_accounting(self):
        cache = ResultCache(capacity=4)
        query = PointQuery("a")
        cache.lookup(query)
        cache.store(query, _result([_file()]))
        cache.lookup(query)
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)
        assert "hit_rate" in stats.as_dict()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(negative_capacity=0)


# ---------------------------------------------------------------------------- versioning hooks
class TestVersioningSubscription:
    def test_change_clock_advances(self):
        manager = VersioningManager()
        before = manager.change_clock
        manager.record(0, VersionedChange(kind="insert", file=_file(), unit_id=0))
        assert manager.change_clock == before + 1
        manager.clear_all()
        assert manager.change_clock == before + 2
        manager.touch()
        assert manager.change_clock == before + 3

    def test_subscriber_invoked_per_mutation(self):
        manager = VersioningManager()
        calls = []
        manager.subscribe(lambda: calls.append(1))
        manager.record(0, VersionedChange(kind="insert", file=_file(), unit_id=0))
        manager.record(1, VersionedChange(kind="delete", file=_file("/p/b"), unit_id=1))
        manager.clear_all()
        assert len(calls) == 3

    def test_cache_subscribes_to_versioning(self):
        manager = VersioningManager()
        cache = ResultCache(capacity=4, versioning=manager)
        cache.store(PointQuery("a"), _result([_file()]))
        manager.record(0, VersionedChange(kind="insert", file=_file("/p/new"), unit_id=0))
        assert cache.lookup(PointQuery("a")) is None
        assert cache.stats.invalidations >= 1

    def test_detach_unsubscribes(self):
        manager = VersioningManager()
        cache = ResultCache(capacity=4, versioning=manager)
        cache.detach()
        before = cache.stats.invalidations
        manager.touch()
        assert cache.stats.invalidations == before
        cache.detach()  # idempotent
        manager.unsubscribe(cache.invalidate)  # absent listener is a no-op

    def test_stale_epoch_store_is_dropped(self):
        """A result computed before a mutation must not repopulate the
        cache after the mutation's invalidation flush."""
        manager = VersioningManager()
        cache = ResultCache(capacity=4, versioning=manager)
        epoch = manager.change_clock
        # Mutation lands between execution and store (the race window).
        manager.record(0, VersionedChange(kind="insert", file=_file("/p/new"), unit_id=0))
        cache.store(PointQuery("a"), _result([_file()]), epoch=epoch)
        assert cache.lookup(PointQuery("a")) is None
        assert cache.stats.stale_drops == 1
        # A store observed at the current clock goes through.
        cache.store(PointQuery("a"), _result([_file()]), epoch=manager.change_clock)
        assert cache.lookup(PointQuery("a")) is not None

    def test_service_close_detaches_cache(self):
        files = make_files(60, clusters=4)
        store = SmartStore.build(files, SmartStoreConfig(num_units=4, seed=1))
        listeners_before = len(store.versioning._listeners)
        service = QueryService(store)
        assert len(store.versioning._listeners) == listeners_before + 1
        service.close()
        assert len(store.versioning._listeners) == listeners_before


# ---------------------------------------------------------------------------- end-to-end stress
class TestVersionedInvalidationStress:
    """The satellite stress test: interleave updates with cached serving and
    assert the service answers exactly like a cold, uncached SmartStore."""

    @pytest.fixture()
    def setup(self):
        files = make_files(160, clusters=4)
        initial, late = files[:120], files[120:]
        generator = QueryWorkloadGenerator(initial, seed=11)
        queries = (
            generator.point_queries(8, existing_fraction=0.75)
            + generator.range_queries(5, distribution="zipf")
            + generator.topk_queries(5, k=5)
            # point queries for files that do not exist yet: these populate
            # the negative cache and MUST flip to found after insertion
            + [PointQuery(f.filename) for f in late[:5]]
        )
        return initial, late, queries

    @staticmethod
    def _cold_answers(initial, inserts, queries, *, reconfigure=False):
        """A fresh uncached deployment replaying the same update history."""
        store = SmartStore.build(initial, SmartStoreConfig(num_units=8, seed=3))
        for file in inserts:
            store.insert_file(file)
        if reconfigure:
            store.reconfigure()
        return [result_fingerprint(store.execute(q)) for q in queries]

    def test_insertions_invalidate_and_answers_match_cold_store(self, setup):
        initial, late, queries = setup
        store = SmartStore.build(initial, SmartStoreConfig(num_units=8, seed=3))
        with QueryService(store, ServiceConfig(max_workers=2, batch_window=8)) as service:
            # Warm the cache (including negative entries for the late files).
            service.execute_many(queries)
            service.execute_many(queries)
            assert service.cache.stats.hits > 0

            inserted = []
            for i, file in enumerate(late):
                store.insert_file(file)
                inserted.append(file)
                if i % 3 != 0:
                    continue
                # After each burst the cache must have been flushed and the
                # service must answer exactly like a cold uncached store.
                hot = [result_fingerprint(r) for r in service.execute_many(queries)]
                cold = self._cold_answers(initial, inserted, queries)
                assert hot == cold

            # Every inserted file is now visible through the service even
            # though its filename was once negatively cached.
            for file in late:
                result = service.execute(PointQuery(file.filename))
                assert result.found, f"{file.filename} still served as a miss"

    def test_reconfigure_invalidates(self, setup):
        initial, late, queries = setup
        store = SmartStore.build(initial, SmartStoreConfig(num_units=8, seed=3))
        with QueryService(store, ServiceConfig(max_workers=2)) as service:
            service.execute_many(queries)
            for file in late:
                store.insert_file(file)
            store.reconfigure()
            hot = [result_fingerprint(r) for r in service.execute_many(queries)]
            cold = self._cold_answers(initial, late, queries, reconfigure=True)
            assert hot == cold

    def test_deletions_invalidate(self, setup):
        initial, late, queries = setup
        store = SmartStore.build(initial, SmartStoreConfig(num_units=8, seed=3))
        victim = initial[0]
        with QueryService(store, ServiceConfig(max_workers=2)) as service:
            before = service.execute(PointQuery(victim.filename))
            assert before.found
            store.delete_file(victim)
            store.reconfigure()
            after = service.execute(PointQuery(victim.filename))
            assert not after.found
