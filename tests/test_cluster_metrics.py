"""Tests for the event counters."""

import pytest

from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.metrics import Metrics


class TestRecording:
    def test_initial_state_zero(self):
        m = Metrics()
        assert m.messages == 0
        assert m.latency() == 0.0
        assert m.as_dict()["units_visited"] == 0

    def test_record_message(self):
        m = Metrics()
        m.record_message()
        m.record_message(3)
        assert m.messages == 4
        assert m.hops == 4

    def test_negative_message_count_rejected(self):
        with pytest.raises(ValueError):
            Metrics().record_message(-1)

    def test_record_unit_visit_deduplicates(self):
        m = Metrics()
        m.record_unit_visit(3)
        m.record_unit_visit(3)
        m.record_unit_visit(5)
        assert len(m.units_visited) == 2

    def test_record_index_access_memory_vs_disk(self):
        m = Metrics()
        m.record_index_access(2)
        m.record_index_access(3, on_disk=True)
        assert m.memory_index_accesses == 2
        assert m.disk_index_accesses == 3

    def test_record_scan(self):
        m = Metrics()
        m.record_scan(10)
        m.record_scan(5, on_disk=True)
        assert m.memory_records_scanned == 10
        assert m.disk_records_scanned == 5

    def test_bloom_probe_counts_as_memory_access(self):
        m = Metrics()
        m.record_bloom_probe(4)
        assert m.bloom_probes == 4
        assert m.memory_index_accesses == 4


class TestAggregation:
    def test_merge(self):
        a, b = Metrics(), Metrics()
        a.record_message(2)
        a.record_unit_visit(1)
        b.record_message(3)
        b.record_unit_visit(2)
        b.record_scan(7)
        a.merge(b)
        assert a.messages == 5
        assert a.units_visited == {1, 2}
        assert a.memory_records_scanned == 7

    def test_copy_is_independent(self):
        a = Metrics()
        a.record_message()
        b = a.copy()
        b.record_message()
        assert a.messages == 1 and b.messages == 2

    def test_reset(self):
        m = Metrics()
        m.record_message(5)
        m.record_scan(3, on_disk=True)
        m.reset()
        assert m.messages == 0
        assert m.disk_records_scanned == 0
        assert m.latency() == 0.0


class TestLatency:
    def test_latency_formula(self):
        cm = CostModel()
        m = Metrics()
        m.record_message(2)
        m.record_index_access(3)
        m.record_index_access(1, on_disk=True)
        m.record_scan(10)
        m.record_scan(4, on_disk=True)
        expected = (
            2 * cm.network_hop_latency
            + 3 * cm.memory_index_access
            + 1 * cm.disk_index_access
            + 10 * cm.memory_record_scan
            + 4 * cm.disk_record_scan
        )
        assert m.latency(cm) == pytest.approx(expected)

    def test_latency_monotone_in_events(self):
        m = Metrics()
        before = m.latency()
        m.record_message()
        assert m.latency() > before

    def test_disk_dominates_memory(self):
        disk = Metrics()
        disk.record_index_access(10, on_disk=True)
        mem = Metrics()
        mem.record_index_access(10)
        assert disk.latency() > 100 * mem.latency()

    def test_as_dict_keys(self):
        d = Metrics().as_dict()
        assert {"messages", "units_visited", "memory_index_accesses",
                "disk_index_accesses", "memory_records_scanned",
                "disk_records_scanned", "bloom_probes"} == set(d.keys())

    def test_repr(self):
        assert "Metrics(" in repr(Metrics())
