"""Tests for the TIF scale-up procedure."""

import pytest

from repro.traces.base import Trace, TraceRecord
from repro.traces.scaleup import scale_up, scaled_summary
from repro.traces.hp import HP_ORIGINAL_SUMMARY
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def base_trace():
    return generate_trace(SyntheticTraceConfig(n_files=60, n_requests=200, n_projects=5, seed=3))


class TestScaleUp:
    def test_record_and_file_counts_multiply(self, base_trace):
        scaled = scale_up(base_trace, 4)
        assert len(scaled.records) == 4 * len(base_trace.records)
        assert len(scaled.files) == 4 * len(base_trace.files)

    def test_tif_one_is_identity(self, base_trace):
        assert scale_up(base_trace, 1) is base_trace

    def test_invalid_tif(self, base_trace):
        with pytest.raises(ValueError):
            scale_up(base_trace, 0)

    def test_subtrace_ids_make_paths_unique(self, base_trace):
        scaled = scale_up(base_trace, 3)
        paths = [f.path for f in scaled.files]
        assert len(paths) == len(set(paths))
        assert any(p.startswith("/tif0000") for p in paths)
        assert any(p.startswith("/tif0002") for p in paths)

    def test_start_times_zeroed(self, base_trace):
        scaled = scale_up(base_trace, 2)
        assert scaled.records[0].timestamp == pytest.approx(
            0.0, abs=base_trace.records[0].timestamp + 1e-9
        )

    def test_chronological_order_within_subtrace_preserved(self, base_trace):
        scaled = scale_up(base_trace, 2)
        for sub in range(2):
            stamps = [r.timestamp for r in scaled.records if r.path.startswith(f"/tif{sub:04d}")]
            assert stamps == sorted(stamps)

    def test_operation_histogram_preserved(self, base_trace):
        scaled = scale_up(base_trace, 3)
        def histogram(trace):
            counts = {}
            for r in trace.records:
                counts[r.op] = counts.get(r.op, 0) + 1
            return counts
        base_hist = histogram(base_trace)
        scaled_hist = histogram(scaled)
        assert scaled_hist == {op: 3 * c for op, c in base_hist.items()}

    def test_user_population_expands(self, base_trace):
        scaled = scale_up(base_trace, 2)
        assert scaled.summary().active_users > base_trace.summary().active_users


class TestScaledSummary:
    def test_hp_table1_row(self):
        scaled = scaled_summary(HP_ORIGINAL_SUMMARY, 80)
        assert scaled.total_requests == 94_700_000 * 80
        assert scaled.active_users == 32 * 80
        assert scaled.user_accounts == 207 * 80
        assert scaled.active_files == 969_000 * 80
        assert scaled.total_files == 4_000_000 * 80

    def test_name_mentions_tif(self):
        assert "TIF=10" in scaled_summary(HP_ORIGINAL_SUMMARY, 10).name

    def test_invalid_tif(self):
        with pytest.raises(ValueError):
            scaled_summary(HP_ORIGINAL_SUMMARY, 0)

    def test_duration_scales(self):
        scaled = scaled_summary(HP_ORIGINAL_SUMMARY, 3)
        assert scaled.duration_hours == HP_ORIGINAL_SUMMARY.duration_hours * 3
