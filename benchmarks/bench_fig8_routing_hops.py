"""Figure 8: routing distance (hops) of operations.

The paper reports that 87.3-90.6 % of operations are served within a single
semantic group (0-hop routing distance), confirming the effectiveness of the
semantic grouping.  The reproduced workload mirrors a file-system operation
mix: filename point queries dominate (as in real metadata workloads), with
range and top-k queries mixed in; the hop count of an operation is the
number of additional semantic groups it had to touch beyond the first.
"""

from __future__ import annotations

import pytest

from _bench_utils import record_result
from repro.eval.harness import run_query_workload
from repro.eval.reporting import format_table

#: Operation mix: point queries dominate file-system metadata workloads.
N_POINT, N_RANGE, N_TOPK = 200, 40, 40


def _mixed_workload(generator):
    queries = []
    queries += generator.point_queries(N_POINT, existing_fraction=0.95)
    queries += generator.range_queries(N_RANGE, distribution="zipf", ensure_nonempty=True)
    queries += generator.topk_queries(N_TOPK, k=8, distribution="zipf")
    return queries


@pytest.mark.parametrize("trace_name", ["MSN", "EECS", "HP"])
def test_fig8_routing_hops(benchmark, trace_name, request):
    store = request.getfixturevalue(f"{trace_name.lower()}_store")
    generator = request.getfixturevalue(f"{trace_name.lower()}_generator")
    queries = _mixed_workload(generator)

    result = benchmark.pedantic(run_query_workload, args=(store, queries), rounds=1, iterations=1)
    histogram = result.hop_histogram()

    rows = [[hops, f"{fraction * 100:.1f}%"] for hops, fraction in sorted(histogram.items())]
    table = format_table(
        ["routing distance (hops)", "fraction of operations"],
        rows,
        title=f"Figure 8 — routing distance distribution, {trace_name} "
              f"({N_POINT} point / {N_RANGE} range / {N_TOPK} top-k)",
    )
    record_result(f"fig8_routing_hops_{trace_name.lower()}", table)

    # Qualitative claim: the distribution is dominated by 0-hop operations
    # and queries never degenerate to visiting every group.
    zero_hop = histogram.get(0, 0.0)
    assert zero_hop > 0.6
    assert max(histogram.keys()) < len(store.tree.first_level_groups())
