"""Ablation: Bloom-filter sizing for the filename point-query path.

The prototype fixes 1024-bit filters with 7 hash functions (§5.1).  This
ablation sweeps the filter size and hash count and reports the resulting
false-positive probability and the number of storage units a point query
must verify — the trade-off that motivated the prototype's choice.
"""

from __future__ import annotations

import numpy as np

from _bench_utils import record_result
from repro.bloom.bloom import BloomFilter
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.eval.reporting import format_table
from repro.workloads.generator import QueryWorkloadGenerator

FILTER_CONFIGS = [(256, 4), (512, 7), (1024, 7), (2048, 7), (4096, 10)]
KEYS_PER_UNIT = 60
NUM_UNITS = 40


def _false_positive_rate(bits: int, hashes: int, n_keys: int, probes: int = 2000) -> float:
    bloom = BloomFilter(bits, hashes)
    bloom.add_many(f"present-{i}.dat" for i in range(n_keys))
    false = sum(1 for i in range(probes) if f"absent-{i}.bin" in bloom)
    return false / probes


def test_ablation_bloom_sizing(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            (bits, hashes, _false_positive_rate(bits, hashes, KEYS_PER_UNIT))
            for bits, hashes in FILTER_CONFIGS
        ],
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["filter bits", "hash functions", f"false-positive rate ({KEYS_PER_UNIT} keys)"],
        [[b, k, f"{fp * 100:.2f}%"] for b, k, fp in rows],
        title="Ablation — Bloom filter sizing",
    )
    record_result("ablation_bloom_sizing", table)

    by_config = {(b, k): fp for b, k, fp in rows}
    # Larger filters reduce the false-positive rate; the prototype's 1024/7
    # point keeps it small at 128 bytes per unit.
    assert by_config[(1024, 7)] <= by_config[(256, 4)]
    assert by_config[(4096, 10)] <= by_config[(1024, 7)] + 0.01
    assert by_config[(1024, 7)] < 0.05


def test_ablation_bloom_effect_on_point_queries(benchmark, msn_files):
    """Smaller filters cause more spurious unit verifications per point query."""

    def measure():
        generator = QueryWorkloadGenerator(msn_files, seed=5)
        queries = generator.point_queries(150, existing_fraction=0.5)
        results = {}
        for bits, hashes in ((256, 4), (1024, 7)):
            store = SmartStore.build(
                msn_files,
                SmartStoreConfig(num_units=NUM_UNITS, seed=3, bloom_bits=bits, bloom_hashes=hashes),
            )
            visited = [len(store.execute(q).metrics.units_visited) for q in queries]
            results[(bits, hashes)] = float(np.mean(visited))
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        ["filter configuration", "mean storage units verified per point query"],
        [[f"{bits} bits / {hashes} hashes", f"{mean:.2f}"] for (bits, hashes), mean in results.items()],
        title="Ablation — Bloom filter size vs. point-query verification cost, MSN",
    )
    record_result("ablation_bloom_point_queries", table)
    assert results[(1024, 7)] <= results[(256, 4)]
