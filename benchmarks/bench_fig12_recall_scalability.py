"""Figure 12: recall as a function of system scale (Gauss and Zipf).

The paper executes 2000 mixed requests (1000 range + 1000 top-k) against
deployments of 20-100 storage units and shows that recall stays high as the
system grows.  The reproduction sweeps the same unit counts with a reduced
query budget and the same staleness scenario used by the other recall
experiments.
"""

from __future__ import annotations

import pytest

from _bench_utils import record_result
from repro.core.smartstore import SmartStoreConfig
from repro.eval.harness import StalenessExperiment
from repro.eval.reporting import format_table
from repro.workloads.generator import QueryWorkloadGenerator

UNIT_COUNTS = (20, 40, 60, 80)
N_RANGE = 30
N_TOPK = 30
UPDATE_FRACTION = 0.10


def _recall_at_scale(files, num_units: int, distribution: str) -> float:
    experiment = StalenessExperiment(
        files,
        update_fraction=UPDATE_FRACTION,
        config=SmartStoreConfig(num_units=num_units, seed=9),
        seed=17,
    )
    store = experiment.build(versioning=True)
    generator = QueryWorkloadGenerator(files, seed=23)
    queries = generator.mixed_complex_queries(
        N_RANGE, N_TOPK, distribution=distribution, k=8
    )
    return experiment.run(store, queries).mean_recall


@pytest.mark.parametrize("distribution", ["gauss", "zipf"])
def test_fig12_recall_vs_scale(benchmark, distribution, msn_files):
    def sweep():
        return [(n, _recall_at_scale(msn_files, n, distribution)) for n in UNIT_COUNTS]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["storage units", "recall"],
        [[n, f"{r * 100:.1f}%"] for n, r in rows],
        title=f"Figure 12 — recall vs. system scale ({distribution.capitalize()} queries, "
              f"{N_RANGE} range + {N_TOPK} top-8, versioning on)",
    )
    record_result(f"fig12_recall_scalability_{distribution}", table)

    # Qualitative claim: recall stays high across scales (no collapse as the
    # number of storage units grows).
    recalls = [r for _, r in rows]
    assert min(recalls) > 0.85
    assert max(recalls) - min(recalls) < 0.15
