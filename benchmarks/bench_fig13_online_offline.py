"""Figure 13: on-line vs. off-line query execution (latency and messages).

The on-line approach locates the relevant index units by multicasting from
the home unit; the off-line approach pre-replicates the first-level index
summaries on every storage unit so the target groups are found by purely
local computation.  The paper shows the off-line approach reduces both the
query latency and (especially) the number of internal network messages, with
the gap widening as the system grows.
"""

from __future__ import annotations

import pytest

from _bench_utils import record_result
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.eval.harness import run_query_workload
from repro.eval.reporting import format_table
from repro.workloads.generator import QueryWorkloadGenerator

UNIT_COUNTS = (20, 40, 60)
N_RANGE = 30
N_TOPK = 30


def _compare_modes(files, num_units: int):
    generator = QueryWorkloadGenerator(files, seed=19)
    queries = generator.mixed_complex_queries(N_RANGE, N_TOPK, distribution="zipf", k=8)
    out = {}
    for mode in ("online", "offline"):
        store = SmartStore.build(
            files, SmartStoreConfig(num_units=num_units, seed=8, mode=mode)
        )
        result = run_query_workload(store, queries)
        out[mode] = (result.mean_latency, result.total_messages)
    return out


def test_fig13_online_vs_offline(benchmark, msn_files):
    sweep = benchmark.pedantic(
        lambda: {n: _compare_modes(msn_files, n) for n in UNIT_COUNTS}, rounds=1, iterations=1
    )

    latency_rows = []
    message_rows = []
    for n, result in sweep.items():
        on_lat, on_msg = result["online"]
        off_lat, off_msg = result["offline"]
        latency_rows.append([n, f"{on_lat * 1e3:.2f}", f"{off_lat * 1e3:.2f}"])
        message_rows.append([n, on_msg, off_msg])

    table_a = format_table(
        ["storage units", "on-line latency (ms/query)", "off-line latency (ms/query)"],
        latency_rows,
        title="Figure 13(a) — query latency, on-line vs. off-line (MSN, Zipf)",
    )
    table_b = format_table(
        ["storage units", "on-line messages", "off-line messages"],
        message_rows,
        title=f"Figure 13(b) — network messages for {N_RANGE + N_TOPK} complex queries",
    )
    record_result("fig13_online_offline", table_a + "\n\n" + table_b)

    # Qualitative claims: off-line never sends more messages, and the message
    # gap grows with the system size (the multicast fan-out grows).
    gaps = []
    for n in UNIT_COUNTS:
        on_lat, on_msg = sweep[n]["online"]
        off_lat, off_msg = sweep[n]["offline"]
        assert off_msg < on_msg
        assert off_lat <= on_lat * 1.05
        gaps.append(on_msg - off_msg)
    assert gaps[-1] > gaps[0]
