"""Replication: kill-the-primary equivalence and failover availability.

Not a paper figure — this benchmark covers the availability layer grown on
top of the reproduction (ROADMAP north star: production-scale serving; the
paper's §4.3 reliability argument for root multi-mapping, promoted to whole
deployments).  The shared harness (:mod:`repro.replication.benchmarking` —
the same loop the ``replica-bench`` CLI subcommand and the CI
fault-injection smoke job run) drives a point/range/top-k workload plus a
mutation stream against:

* an unsharded, unfailed baseline, and
* a 2-shard deployment whose shards are replica groups (1 primary + 2
  replicas each) in which **every primary is crashed mid-stream** via the
  live fault injector,

in both replication modes.  The assertions:

* **failover equivalence** — all three phases (pre-failure, failed over
  with mutations in flight, caught up after a drain) answer
  fingerprint-identical to the unfailed baseline;
* **availability** — zero failed client requests: promotion + catch-up +
  internal read retries absorb every crash;
* **bounded lag** — async mode never lets a healthy replica fall more
  than ``MAX_LAG`` shipped records behind.
"""

from __future__ import annotations

import pytest

from _bench_utils import record_result
from repro.core.smartstore import SmartStoreConfig
from repro.eval.reporting import format_table
from repro.replication.benchmarking import run_replica_failover
from repro.traces.msn import msn_trace

SHARDS = 2
REPLICAS = 2
MAX_LAG = 24
QUERIES_PER_TYPE = 8
N_MUTATIONS = 60
TOTAL_UNITS = 16

CONFIG = SmartStoreConfig(num_units=TOTAL_UNITS, seed=7, search_breadth=TOTAL_UNITS * 4)


@pytest.fixture(scope="module")
def corpus():
    return msn_trace(scale=0.8, seed=29).file_metadata()


@pytest.fixture(scope="module")
def report(corpus):
    return run_replica_failover(
        corpus,
        CONFIG,
        shards=SHARDS,
        replicas=REPLICAS,
        modes=("async", "sync"),
        max_lag=MAX_LAG,
        queries_per_type=QUERIES_PER_TYPE,
        n_mutations=N_MUTATIONS,
        workload_seed=13,
    )


def test_failover_is_invisible(report):
    """Every phase in every mode answers exactly like the unfailed baseline."""
    assert report.gates, "harness produced no gates"
    failing = [name for name, ok in report.gates.items() if not ok]
    assert not failing, f"failover gates failed: {failing}"


def test_zero_failed_requests_and_real_failovers(report):
    """Killing every primary loses no request and every group promoted."""
    for row in report.rows:
        assert row.failed_requests == 0
        assert row.failovers >= SHARDS


def test_async_lag_stays_inside_window(report):
    row = next(r for r in report.rows if r.mode == "async")
    assert row.max_observed_lag <= MAX_LAG


def test_report_table(report, capsys):
    rows = [row.as_table_row() for row in report.rows]
    table = format_table(
        ["mode", "shards x copies", "build (s)", "mut wall (s)",
         "query wall (s)", "failovers", "degraded reads", "failed reqs",
         "max lag", "identical"],
        rows,
        title=f"replica failover: {SHARDS} shards x {REPLICAS + 1} copies, "
        f"every primary killed mid-workload",
    )
    print(table)
    record_result("replica_failover", table)
    assert report.passed
