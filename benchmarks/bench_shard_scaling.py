"""Shard: scatter-gather equivalence and throughput scaling across shards.

Not a paper figure — this benchmark covers the horizontal sharding layer
grown on top of the reproduction (ROADMAP north star: "heavy traffic from
millions of users").  The shared harness (:mod:`repro.shard.benchmarking`
— the same loop the ``shard-bench`` CLI subcommand and the CI shard-path
smoke job run) drives a point/range/top-k workload through three phases —
before mutations, with a mutation stream *staged in flight*, and after a
full compaction drain — against an unsharded baseline and against
:class:`~repro.shard.router.ShardRouter` deployments of 1, 2 and 4 shards
over the same total storage-unit budget.

Two assertions:

* **scatter-gather equivalence** — every query in every phase returns a
  result fingerprint-identical to the unsharded baseline (caching,
  partitioning, summary pruning and the shared MaxD threshold are not
  allowed to change any answer);
* **throughput scaling** — the 4-shard deployment sustains at least 1.5x
  the range/top-k throughput of the single-shard deployment.  Throughput
  is ``queries / busy-time-of-the-busiest-shard`` in the simulated cost
  model (the currency every latency figure in this repository uses):
  shards are independent deployments, so the busiest one bounds the
  sustainable query rate; semantic slicing spreads the Zipf-hot region
  across shards, which is exactly what the quantity rewards.
"""

from __future__ import annotations

import pytest

from _bench_utils import record_result
from repro.core.smartstore import SmartStoreConfig
from repro.eval.reporting import format_table
from repro.shard.benchmarking import run_shard_scaling
from repro.traces.msn import msn_trace

SHARD_COUNTS = (1, 2, 4)
TOTAL_UNITS = 64
QUERIES_PER_TYPE = 20
N_MUTATIONS = 60
MIN_SPEEDUP = 1.5

CONFIG = SmartStoreConfig(num_units=TOTAL_UNITS, seed=7, search_breadth=TOTAL_UNITS)


@pytest.fixture(scope="module")
def corpus():
    return msn_trace(scale=2.0, seed=29).file_metadata()


@pytest.fixture(scope="module")
def report(corpus):
    return run_shard_scaling(
        corpus,
        CONFIG,
        SHARD_COUNTS,
        queries_per_type=QUERIES_PER_TYPE,
        n_mutations=N_MUTATIONS,
        workload_seed=13,
    )


def test_scatter_gather_results_identical_to_baseline(report):
    """Every phase of every shard count answers exactly like the baseline."""
    assert report.gates, "harness produced no equivalence gates"
    failing = [name for name, ok in report.gates.items() if not ok]
    assert not failing, f"fingerprint mismatches: {failing}"


def test_throughput_scales_with_shard_count(report):
    """4 shards must sustain >= 1.5x the 1-shard range/top-k throughput."""
    speedup = report.speedup_of(4)
    assert speedup is not None
    assert speedup >= MIN_SPEEDUP, (
        f"4-shard scatter throughput is only {speedup:.2f}x the single-shard "
        f"deployment (required: {MIN_SPEEDUP}x)"
    )


def test_report_table(report, benchmark, corpus):
    """Render the scaling table (and give pytest-benchmark one timed op)."""
    benchmark.pedantic(
        lambda: report.speedup_of(max(SHARD_COUNTS)), rounds=1, iterations=1
    )
    rows = [row.as_table_row(report.speedup_of(row.shards)) for row in report.rows]
    table = format_table(
        ["shards", "build (s)", "mix wall (s)", "busiest shard (sim ms)",
         "scatter q/s", "speedup", "mut/s", "pruned", "busy share",
         "identical"],
        rows,
        title=f"shard scaling: {len(corpus)} files, {TOTAL_UNITS} total units, "
        f"{QUERIES_PER_TYPE} queries/type x 3 phases, {N_MUTATIONS} mutations",
    )
    record_result("shard_scaling", table)
