"""Ablation: reliability under storage-unit failures (§4.3).

The paper argues that the decentralised semantic organisation avoids single
points of failure, and that multi-mapping the root removes the remaining
one.  This ablation crashes increasing fractions of a deployment's storage
units and records (a) how much of the file population and of the
complex-query recall survives, and (b) that the root stays reachable and can
fail over to a replica when its primary host dies.
"""

from __future__ import annotations

import pytest

from _bench_utils import record_result
from repro.cluster.failures import FailureInjector
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.eval.reporting import format_table
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.workloads.generator import QueryWorkloadGenerator

NUM_UNITS = 40
N_QUERIES = 20
CRASH_FRACTIONS = (0.0, 0.1, 0.25, 0.5)


@pytest.fixture(scope="module")
def deployment(msn_files):
    return SmartStore.build(msn_files, SmartStoreConfig(num_units=NUM_UNITS, seed=17))


@pytest.fixture(scope="module")
def queries(msn_files):
    generator = QueryWorkloadGenerator(msn_files, DEFAULT_SCHEMA, seed=19)
    return generator.mixed_complex_queries(N_QUERIES, N_QUERIES, distribution="zipf", k=8)


def test_availability_and_recall_vs_crashed_units(benchmark, deployment, queries):
    """Graceful degradation: availability and recall as units crash."""

    def sweep():
        rows = []
        injector = FailureInjector(deployment, seed=7)
        for fraction in CRASH_FRACTIONS:
            injector.recover_all()
            count = int(NUM_UNITS * fraction)
            if count:
                injector.crash_random_units(count)
            report = injector.availability_report()
            rows.append(
                (fraction, count, report.file_availability,
                 injector.degraded_recall(queries), report.root_reachable)
            )
        injector.recover_all()
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["crashed fraction", "units", "file availability", "mean recall", "root reachable"],
        [[f"{f:.0%}", c, f"{a:.1%}", f"{r:.1%}", ok] for f, c, a, r, ok in rows],
        title=f"Ablation — degradation under failures, MSN, {NUM_UNITS} units",
    )
    record_result("ablation_failures_degradation", table)

    availabilities = [a for _, _, a, _, _ in rows]
    recalls = [r for _, _, _, r, _ in rows]
    # Healthy deployment loses nothing; degradation is monotone and roughly
    # proportional to the crashed fraction (files are spread across units).
    assert availabilities[0] == 1.0 and recalls[0] >= 0.9
    assert all(a2 <= a1 + 1e-9 for a1, a2 in zip(availabilities, availabilities[1:]))
    assert availabilities[-1] >= 0.25  # 50% crash cannot lose (almost) everything
    assert recalls[-1] <= recalls[0]


def test_root_failover_keeps_service_up(benchmark, deployment):
    """§4.3: crashing the root's primary host must not make the root unreachable."""

    def run():
        injector = FailureInjector(deployment, seed=11)
        primary = deployment.tree.root.hosted_on
        injector.crash_unit(primary)
        reachable_before_promotion = injector.root_reachable()
        report = injector.root_failover()
        reachable_after = injector.root_reachable()
        injector.recover_all()
        # Undo the promotion so the module-scoped deployment stays pristine.
        deployment.tree.root.replica_hosts = list(
            dict.fromkeys([report.old_host] + deployment.tree.root.replica_hosts)
        ) if report.failed_over else deployment.tree.root.replica_hosts
        return primary, reachable_before_promotion, report, reachable_after

    primary, reachable_before, report, reachable_after = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table = format_table(
        ["measure", "value"],
        [
            ["root primary host", primary],
            ["reachable via replicas before promotion", reachable_before],
            ["failover performed", report.failed_over],
            ["new primary host", report.new_host],
            ["messages spent on failover", report.messages],
            ["reachable after failover", reachable_after],
        ],
        title="Ablation — root multi-mapping failover (§4.3), MSN",
    )
    record_result("ablation_failures_root_failover", table)

    assert reachable_before        # the multi-mapped replicas keep the root visible
    assert report.failed_over
    assert reachable_after
    assert report.new_host != primary
