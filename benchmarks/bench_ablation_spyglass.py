"""Ablation: SmartStore vs. a Spyglass-style single-server partitioned index.

§6.2 positions Spyglass as the closest prior system: it exploits namespace
locality with per-subtree K-D tree partitions and signature pruning, but it
is a single-server design.  This ablation runs the same complex-query
workload against the Spyglass-style baseline, the centralised non-semantic
R-tree and SmartStore, and separately reports what the distribution buys:
the per-server share of the index.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import NUM_UNITS, record_result
from repro.baselines.rtree_db import RTreeBaseline
from repro.baselines.spyglass import SpyglassBaseline
from repro.eval.harness import run_query_workload
from repro.eval.reporting import format_bytes, format_seconds, format_table
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.workloads.generator import QueryWorkloadGenerator

N_QUERIES = 30


@pytest.fixture(scope="module")
def spyglass(hp_files):
    return SpyglassBaseline(hp_files, DEFAULT_SCHEMA, partition_size=400)


@pytest.fixture(scope="module")
def hp_rtree(hp_files):
    return RTreeBaseline(hp_files, DEFAULT_SCHEMA)


@pytest.fixture(scope="module")
def workload(hp_files):
    generator = QueryWorkloadGenerator(hp_files, DEFAULT_SCHEMA, seed=37)
    return generator.mixed_complex_queries(N_QUERIES, N_QUERIES, distribution="zipf", k=8)


def test_spyglass_vs_smartstore_latency_and_recall(benchmark, hp_files, hp_store,
                                                   hp_rtree, spyglass, workload):
    """Complex-query latency and recall across the three indexing strategies."""
    rtree = hp_rtree

    def measure():
        results = {}
        for name, system in (
            ("Spyglass-style (single server)", spyglass),
            ("R-tree (non-semantic, centralised)", rtree),
            ("SmartStore (distributed, semantic)", hp_store),
        ):
            results[name] = run_query_workload(
                system, workload, ground_truth_files=hp_files, schema=DEFAULT_SCHEMA
            )
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [name,
         format_seconds(outcome.total_latency),
         f"{outcome.mean_recall:.1%}",
         outcome.total_messages]
        for name, outcome in results.items()
    ]
    table = format_table(
        ["system", "total latency", "mean recall", "messages"],
        rows,
        title=f"Ablation — Spyglass-style partitioning vs SmartStore, HP, {2 * N_QUERIES} complex queries",
    )
    record_result("ablation_spyglass_latency", table)

    spy = results["Spyglass-style (single server)"]
    rtree_res = results["R-tree (non-semantic, centralised)"]
    smart = results["SmartStore (distributed, semantic)"]
    # Spyglass's in-memory partition pruning beats the disk-resident R-tree...
    assert spy.total_latency < rtree_res.total_latency
    # ...and every comparator answers (near-)exactly; SmartStore trades a
    # little recall for a bounded search scope.
    assert spy.mean_recall >= 0.95
    assert smart.mean_recall >= 0.75
    # SmartStore remains competitive with the single-server index on latency
    # (same order of magnitude) while actually being distributed.
    assert smart.total_latency < 10 * spy.total_latency


def test_index_distribution_across_servers(benchmark, hp_store, spyglass):
    """The single-server designs concentrate the index; SmartStore spreads it."""

    def measure():
        per_unit = hp_store.index_space_bytes_per_unit()
        return {
            "smartstore_total": hp_store.total_index_space_bytes(),
            "smartstore_max_per_unit": max(per_unit.values()),
            "spyglass_single_server": spyglass.index_space_bytes(),
        }

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        ["measure", "bytes"],
        [
            ["Spyglass-style index on its single server", format_bytes(sizes["spyglass_single_server"])],
            ["SmartStore total index state", format_bytes(sizes["smartstore_total"])],
            [f"SmartStore largest share on any of the {NUM_UNITS} units",
             format_bytes(sizes["smartstore_max_per_unit"])],
        ],
        title="Ablation — index placement: single server vs decentralised",
    )
    record_result("ablation_spyglass_space", table)

    # The point of decentralisation: no single SmartStore server carries
    # anything close to the whole index a single-server design must hold.
    assert sizes["smartstore_max_per_unit"] < sizes["spyglass_single_server"]
