"""Client API: the unified front door over every deployment topology.

Not a paper figure — this benchmark covers the client layer grown on top
of the reproduction (ROADMAP north star: one stable surface for "as many
scenarios as you can imagine").  It builds all five topology shapes from
declarative :class:`~repro.api.spec.DeploymentSpec` documents, drives the
same mixed workload through each shape's
:class:`~repro.api.client.Client`, and asserts the acceptance properties
of the API redesign:

* **facade equivalence** — every topology's client answers
  fingerprint-identically to the legacy plain facade over the same
  logical population;
* **pagination equivalence** — cursor-paginated page concatenation equals
  the unpaginated payload on every topology;
* **overhead** — the envelope layer costs little: the client's wall time
  per request through a plain topology stays within a small factor of the
  bare facade's.
"""

from __future__ import annotations

import time

import pytest

from _bench_utils import record_result
from repro.api import DeploymentSpec, RequestOptions, connect
from repro.api.spec import TOPOLOGIES
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.eval.reporting import format_table
from repro.service.cache import result_fingerprint
from repro.traces.msn import msn_trace
from repro.workloads.generator import QueryWorkloadGenerator

NUM_UNITS = 16
QUERIES_PER_TYPE = 12
PAGE_SIZE = 16

CONFIG = SmartStoreConfig(num_units=NUM_UNITS, seed=7, search_breadth=NUM_UNITS * 4)


@pytest.fixture(scope="module")
def corpus():
    return msn_trace(scale=0.8, seed=29).file_metadata()


@pytest.fixture(scope="module")
def workload(corpus):
    generator = QueryWorkloadGenerator(corpus, seed=13)
    return (
        generator.point_queries(QUERIES_PER_TYPE, existing_fraction=0.8)
        + generator.range_queries(QUERIES_PER_TYPE, distribution="zipf")
        + generator.topk_queries(QUERIES_PER_TYPE, k=8, distribution="zipf")
    )


def spec_for(topology: str, tmp_path) -> DeploymentSpec:
    kwargs = {"topology": topology, "store": CONFIG, "shards": 2, "replicas": 1}
    if topology == "durable":
        kwargs["wal_dir"] = str(tmp_path / "wal")
    return DeploymentSpec(**kwargs)


@pytest.fixture(scope="module")
def report(corpus, workload, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("client-api")
    baseline = SmartStore.build(corpus, CONFIG)
    started = time.perf_counter()
    reference = [result_fingerprint(baseline.execute(q)) for q in workload]
    facade_wall = time.perf_counter() - started

    rows = []
    outcomes = {}
    for topology in TOPOLOGIES:
        build_started = time.perf_counter()
        client = connect(spec_for(topology, tmp_path), corpus)
        build_wall = time.perf_counter() - build_started
        try:
            query_started = time.perf_counter()
            fingerprints = [
                result_fingerprint(client.execute(q).result) for q in workload
            ]
            query_wall = time.perf_counter() - query_started

            paged_ok = True
            for probe in workload[QUERIES_PER_TYPE:]:  # range + topk
                full = client.execute(probe)
                pages = list(client.pages(probe, PAGE_SIZE))
                files = [f.file_id for p in pages for f in p.files]
                dists = [d for p in pages for d in p.distances]
                paged_ok = (
                    paged_ok
                    and files == [f.file_id for f in full.files]
                    and dists == full.distances
                )
            client.execute(workload[0], RequestOptions(deadline_s=0.0))
            expired = client.service.telemetry.deadline_expired
        finally:
            client.close()
        identical = fingerprints == reference
        outcomes[topology] = {
            "identical": identical,
            "paged_ok": paged_ok,
            "expired": expired,
            "query_wall": query_wall,
        }
        rows.append(
            [
                topology,
                f"{build_wall:.3f}",
                f"{query_wall:.3f}",
                f"{query_wall / facade_wall:.2f}x",
                "yes" if identical else "NO",
                "yes" if paged_ok else "NO",
                expired,
            ]
        )
    return {
        "rows": rows,
        "outcomes": outcomes,
        "facade_wall": facade_wall,
    }


def test_every_topology_matches_the_legacy_facade(report):
    failing = [t for t, o in report["outcomes"].items() if not o["identical"]]
    assert not failing, f"client/facade fingerprint mismatches: {failing}"


def test_pagination_equals_unpaginated_everywhere(report):
    failing = [t for t, o in report["outcomes"].items() if not o["paged_ok"]]
    assert not failing, f"page-concatenation mismatches: {failing}"


def test_deadline_expiry_is_visible_everywhere(report):
    failing = [t for t, o in report["outcomes"].items() if o["expired"] < 1]
    assert not failing, f"no expiry telemetry on: {failing}"


def test_plain_client_overhead_is_bounded(report):
    """The envelope layer must not dominate: plain-topology wall time stays
    within 5x the bare facade loop (admission + telemetry + envelope)."""
    ratio = report["outcomes"]["plain"]["query_wall"] / report["facade_wall"]
    assert ratio < 5.0, f"client overhead {ratio:.2f}x exceeds the 5x budget"


def test_report_table(report, benchmark, corpus):
    """Render the per-topology table (one timed op for pytest-benchmark)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = format_table(
        ["topology", "build (s)", "mix wall (s)", "vs facade", "identical",
         "pages == full", "deadline expiries"],
        report["rows"],
        title=f"client API: {len(corpus)} files, {QUERIES_PER_TYPE} queries/type "
        f"through one Client per topology (facade loop: "
        f"{report['facade_wall']:.3f}s)",
    )
    record_result("client_api", table)
