"""Ingest: sustained mutation throughput of the durable write path.

Not a paper figure — this benchmark covers the WAL-backed ingest pipeline
grown on top of the reproduction (ROADMAP north star).  A mixed
insert/delete/modify stream is driven through the shared write-path
ablation harness (:mod:`repro.ingest.benchmarking` — the same loop and
correctness gates the ``ingest-bench`` CLI subcommand and the CI smoke job
run), ablating the two write-path knobs:

* **WAL fsync batching** — fsync after every record (full per-record
  durability) vs. one fsync per batch of records vs. no WAL at all;
* **compaction** — policy-driven incremental draining on vs. staged
  mutations accumulating in the overlay.

Two layers are measured:

* the **WAL layer alone** (append + checksum + fsync discipline) — this
  isolates the durability cost and carries the headline assertion: batched
  fsync must sustain at least 2x the throughput of fsync-per-record;
* the **end-to-end pipeline** (WAL + semantic routing + version chains +
  overlay + compaction), where the semantic staging work dilutes the fsync
  difference.

Both correctness gates are asserted: crash recovery (checkpoint + WAL
replay answers byte-identically to the live store) and drain equivalence
(the compacted store answers byte-identically to a fresh
``SmartStore.build`` over the mutated population).
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from _bench_utils import record_result
from repro.core.smartstore import SmartStoreConfig
from repro.eval.reporting import format_table
from repro.ingest import CompactionPolicy, IngestPipeline, WriteAheadLog
from repro.ingest.benchmarking import run_ingest_ablation
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.workloads.generator import QueryWorkloadGenerator

NUM_UNITS = 12
N_MUTATIONS = 240
FSYNC_BATCH = 64
WAL_ONLY_RECORDS = 400
PROBES_PER_TYPE = 8

CONFIG = SmartStoreConfig(num_units=NUM_UNITS, seed=17, search_breadth=64)


def _mutation_stream(files, seed=13):
    generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=seed)
    n_del = N_MUTATIONS // 3
    n_mod = N_MUTATIONS // 6
    return generator.mutation_stream(N_MUTATIONS - n_del - n_mod, n_del, n_mod)


def _wal_layer_ablation(tmp_path: Path, stream):
    """Append the stream's records to a bare WAL under both fsync policies."""
    results = {}
    records = [f for _, f in stream][:WAL_ONLY_RECORDS] or [f for _, f in stream]
    for label, fsync_every in (("fsync/record", 1), (f"fsync/{FSYNC_BATCH}", FSYNC_BATCH)):
        with WriteAheadLog(tmp_path / f"wal-only-{fsync_every}.jsonl",
                           fsync_every=fsync_every) as wal:
            started = time.perf_counter()
            for f in records:
                wal.append("insert", f)
            wall = time.perf_counter() - started
        results[label] = len(records) / wall
    return results


def _run_all(files, tmp_path: Path):
    stream = _mutation_stream(files)
    report = run_ingest_ablation(
        files,
        CONFIG,
        stream,
        workdir=tmp_path,
        fsync_batch=FSYNC_BATCH,
        policy=CompactionPolicy(max_staged_per_group=24, max_staged_total=192),
        probes_per_type=PROBES_PER_TYPE,
        probe_seed=23,
    )

    wal_only = _wal_layer_ablation(tmp_path, stream)
    per_record = wal_only["fsync/record"]
    batched = wal_only[f"fsync/{FSYNC_BATCH}"]
    wal_rows = [
        ["fsync/record", f"{per_record:.0f}", "1.00x"],
        [f"fsync/{FSYNC_BATCH}", f"{batched:.0f}", f"{batched / per_record:.2f}x"],
    ]

    table = format_table(
        ["configuration", "wall (s)", "mut/s", "fsyncs", "compactions", "staged left"],
        [row.as_table_row() for row in report.rows],
        title=f"Ingest throughput — {len(files)} files, {len(stream)} mutations, "
        f"{NUM_UNITS} units",
    )
    wal_table = format_table(
        ["WAL policy", "appends/s", "speedup"],
        wal_rows,
        title=f"WAL layer alone ({min(len(stream), WAL_ONLY_RECORDS)} checksummed appends)",
    )
    gate_lines = "\n".join(
        f"{name}: {'yes' if ok else 'NO'}" for name, ok in report.gates.items()
    )
    text = table + "\n\n" + wal_table + "\n\n" + gate_lines + "\n"
    return text, batched / per_record, report


def test_ingest_throughput(benchmark, msn_files, tmp_path):
    text, wal_speedup, report = benchmark.pedantic(
        _run_all, args=(msn_files, tmp_path), rounds=1, iterations=1
    )
    record_result("ingest_throughput", text)

    # The durable write path must not change any answer.
    for name, ok in report.gates.items():
        assert ok, f"write-path gate failed: {name}"
    # The headline claim: batching fsyncs sustains >= 2x the mutation
    # logging throughput of fsync-per-record.
    assert wal_speedup >= 2.0, f"WAL batching speedup {wal_speedup:.2f}x < 2x"


def test_single_durable_insert_wallclock(benchmark, msn_files, tmp_path):
    """Wall-clock cost of one fully durable (fsync-per-record) insert."""
    from repro.core.smartstore import SmartStore

    store = SmartStore.build(msn_files, CONFIG)
    generator = QueryWorkloadGenerator(msn_files, DEFAULT_SCHEMA, seed=31)
    inserts = iter(generator.mutation_stream(4096, 0, 0, shuffle=False))
    with IngestPipeline(
        store, WriteAheadLog(tmp_path / "wal.jsonl", fsync_every=1)
    ) as pipeline:
        receipt = benchmark(lambda: pipeline.insert(next(inserts)[1]))
    assert receipt.known
