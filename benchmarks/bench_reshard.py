"""Reshard: live rebalance of a degenerate partition under a traffic storm.

Not a paper figure — this benchmark covers the elasticity layer grown on
top of the reproduction (ROADMAP north star: production-scale serving).
The shared harness (:mod:`repro.shard.reshard_bench` — the same loop the
``reshard-bench`` CLI subcommand and the CI reshard-storm smoke job run)
reproduces PR 8's degenerate partition *on purpose* (the legacy weighted
cuts put half the corpus on one shard; scatter "speedup" ~1.0x), then lets
the :class:`~repro.shard.reshard.ReshardController` repair it while reader
threads hammer the router and a mutation stream lands in chunks.

The assertions:

* **equivalence across the reshard** — all three query phases answer
  fingerprint-identical to an unsharded baseline both before (degenerate
  topology) and after (rebalanced topology) the repair: placement changed,
  answers did not;
* **availability** — zero failed requests during the storm, and at least
  one reshard actually performed (the degeneracy verdict fired for real);
* **the repair repairs** — the rebalanced cycle clears effective-cluster
  utilization and scatter-speedup floors the degenerate build failed
  (CLI-default seed-42 corpus: 0.51 utilization / 1.02x before, > 0.55 /
  > 1.3x required after).

Emits ``BENCH_reshard.json`` via :mod:`repro.eval.tracking`, like the CLI.
"""

from __future__ import annotations

import pytest

from _bench_utils import RESULTS_DIR, record_result
from repro.core.smartstore import SmartStoreConfig
from repro.eval.reporting import format_table
from repro.eval.tracking import write_bench_json
from repro.shard.reshard_bench import run_reshard_bench
from repro.traces.msn import msn_trace

SHARDS = 4
TOTAL_UNITS = 16
QUERIES_PER_TYPE = 8
N_MUTATIONS = 45
SEED = 42
MIN_UTILIZATION = 0.55
MIN_SPEEDUP = 1.3

# The CLI-default recipe that measures the degenerate partition this
# benchmark exists to repair (exhaustive search breadth, same policy as
# shard-bench: recall loss must not masquerade as a resharding bug).
CONFIG = SmartStoreConfig(
    num_units=TOTAL_UNITS, seed=SEED, search_breadth=max(64, TOTAL_UNITS)
)


@pytest.fixture(scope="module")
def corpus():
    return msn_trace(scale=0.5, seed=SEED).file_metadata()


@pytest.fixture(scope="module")
def report(corpus):
    return run_reshard_bench(
        corpus,
        CONFIG,
        SHARDS,
        queries_per_type=QUERIES_PER_TYPE,
        n_mutations=N_MUTATIONS,
        workload_seed=SEED + 1,
        min_utilization=MIN_UTILIZATION,
        min_speedup=MIN_SPEEDUP,
    )


def test_degenerate_build_reproduces_the_bug(report):
    """Cycle 1 must actually exhibit the skew being repaired."""
    row = report.row("degenerate")
    assert row is not None and row.identical
    assert row.degenerate, (
        f"the legacy-cut build is no longer degenerate "
        f"(utilization {row.utilization:.2f}) — the bench lost its subject"
    )


def test_answers_identical_before_and_after_reshard(report):
    """Every phase of both cycles answers exactly like the baseline."""
    failing = [
        name
        for name, ok in report.gates.items()
        if "identical" in name and not ok
    ]
    assert not failing, f"fingerprint mismatches: {failing}"


def test_storm_loses_no_request_and_resharded(report):
    assert report.storm.failed_requests == 0
    assert report.storm.actions >= 1
    assert report.storm.rebalances + report.storm.splits >= 1


def test_rebalance_clears_the_floors_the_bug_failed(report):
    row = report.row("rebalanced")
    assert row is not None
    assert row.utilization > MIN_UTILIZATION, (
        f"rebalanced utilization {row.utilization:.2f} <= {MIN_UTILIZATION}"
    )
    assert row.speedup > MIN_SPEEDUP, (
        f"rebalanced scatter speedup {row.speedup:.2f}x <= {MIN_SPEEDUP}x"
    )


def test_report_table(report, corpus):
    table = format_table(
        ["cycle", "shards", "busiest shard (sim ms)", "scatter q/s",
         "speedup", "utilization", "identical"],
        [row.as_table_row() for row in report.rows],
        title=f"reshard storm: {len(corpus)} files, {TOTAL_UNITS} total "
        f"units, {SHARDS} shards, {report.storm.moved} files moved live",
    )
    print(table)
    record_result("reshard", table)
    write_bench_json(
        "reshard",
        report.as_dict(),
        {
            "files": len(corpus),
            "shards": SHARDS,
            "units": TOTAL_UNITS,
            "queries_per_type": QUERIES_PER_TYPE,
            "mutations": N_MUTATIONS,
            "min_utilization": MIN_UTILIZATION,
            "min_speedup": MIN_SPEEDUP,
            "seed": SEED,
        },
        gates=report.gates,
        directory=RESULTS_DIR,
    )
    assert report.passed
