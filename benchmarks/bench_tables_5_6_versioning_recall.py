"""Tables 5 and 6: recall of range and top-k queries with and without versioning.

For the MSN (Table 5) and EECS (Table 6) traces, the paper sweeps the number
of queries (1000-5000) under Uniform / Gauss / Zipf distributions and shows
that versioning consistently lifts recall (to 91-100 %) compared to running
on the stale original index alone (81-97 %).

The reproduction uses the same staleness scenario (recently created files
arrive as insertions interleaved with the query stream) with a reduced query
budget; the sweep over the query count preserves the paper's trend that
recall without versioning erodes as more queries (and therefore more
interleaved updates) are processed.
"""

from __future__ import annotations

import pytest

from _bench_utils import record_result
from repro.core.smartstore import SmartStoreConfig
from repro.eval.harness import StalenessExperiment
from repro.eval.reporting import format_table

QUERY_COUNTS = (40, 80, 120)
UPDATE_FRACTION = 0.15
DISTRIBUTIONS = ("uniform", "gauss", "zipf")


def _sweep(files, distribution: str, kind: str):
    experiment = StalenessExperiment(
        files,
        update_fraction=UPDATE_FRACTION,
        config=SmartStoreConfig(num_units=40, seed=6),
        seed=15,
    )
    return experiment.recall_with_and_without_versioning(
        QUERY_COUNTS, distribution=distribution, query_kind=kind, k=8, selectivity=0.05
    )


@pytest.mark.parametrize("trace_name,table_no", [("MSN", 5), ("EECS", 6)])
def test_tables_5_6_versioning_recall(benchmark, trace_name, table_no, request):
    files = request.getfixturevalue(f"{trace_name.lower()}_files")

    def run_all():
        out = {}
        for dist in DISTRIBUTIONS:
            for kind in ("range", "topk"):
                out[(dist, kind)] = _sweep(files, dist, kind)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for dist in DISTRIBUTIONS:
        for kind, label in (("range", "Range Query"), ("topk", "K=8")):
            sweep = results[(dist, kind)]
            rows.append(
                [dist.capitalize(), label]
                + [f"{sweep[n]['without'] * 100:.1f}" for n in QUERY_COUNTS]
            )
            rows.append(
                [dist.capitalize(), f"{label} + Versioning"]
                + [f"{sweep[n]['with'] * 100:.1f}" for n in QUERY_COUNTS]
            )
    table = format_table(
        ["distribution", "query type"] + [str(n) for n in QUERY_COUNTS],
        rows,
        title=f"Table {table_no} — recall (%) with and without versioning, {trace_name}",
    )
    record_result(f"table{table_no}_versioning_recall_{trace_name.lower()}", table)

    # Qualitative claims: versioning never hurts, and lifts recall overall.
    improvements = []
    for sweep in results.values():
        for n in QUERY_COUNTS:
            assert sweep[n]["with"] >= sweep[n]["without"] - 1e-9
            improvements.append(sweep[n]["with"] - sweep[n]["without"])
            assert sweep[n]["with"] > 0.85
    assert max(improvements) > 0.01
