"""Ablation: LSI-based semantic grouping vs. K-means vs. random placement.

§3.1.1 argues for LSI over K-means; the obvious null hypothesis is random
placement (which is what a hash-partitioned metadata service would do).
This ablation measures the §1.1 grouping-quality measure (within-group
squared distance in the semantic subspace) and the end-to-end effect on
query routing (how many groups a complex query touches).
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import record_result
from repro.core.grouping import grouping_quality, partition_files
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.eval.harness import run_query_workload
from repro.eval.reporting import format_table
from repro.lsi.kmeans import balanced_kmeans
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.metadata.matrix import attribute_matrix, log_transform, normalize_matrix
from repro.workloads.generator import QueryWorkloadGenerator

NUM_UNITS = 40


def _grouping_qualities(files):
    """Quality of LSI-driven, raw-space K-means and random partitions."""
    partition = partition_files(files, NUM_UNITS, DEFAULT_SCHEMA, seed=0)
    sem = partition.semantic_vectors

    raw = attribute_matrix(files, DEFAULT_SCHEMA)
    normalised, _, _ = normalize_matrix(log_transform(raw, DEFAULT_SCHEMA))
    kmeans_labels = balanced_kmeans(normalised, NUM_UNITS, seed=0).labels

    rng = np.random.default_rng(0)
    random_labels = rng.integers(0, NUM_UNITS, size=len(files))

    return {
        "LSI semantic grouping": grouping_quality(sem, partition.labels),
        "K-means (attribute space)": grouping_quality(sem, kmeans_labels),
        "random placement": grouping_quality(sem, random_labels),
    }


def test_ablation_grouping_quality(benchmark, msn_files):
    qualities = benchmark.pedantic(_grouping_qualities, args=(msn_files,), rounds=1, iterations=1)
    table = format_table(
        ["placement policy", "within-group squared distance (lower is better)"],
        [[name, f"{q:.2f}"] for name, q in qualities.items()],
        title="Ablation — grouping quality (measure of §1.1), MSN",
    )
    record_result("ablation_grouping_quality", table)
    # K-means optimises the within-group variance objective directly, so it is
    # the lower bound here; the paper picks LSI for efficiency and robustness
    # (§3.1.1), not because it beats K-means on this measure.  LSI must stay
    # in the same league as K-means and far ahead of random placement.
    assert qualities["LSI semantic grouping"] <= qualities["K-means (attribute space)"] * 2.0
    assert qualities["LSI semantic grouping"] < qualities["random placement"] / 5.0


def test_ablation_grouping_effect_on_routing(benchmark, msn_files):
    """Semantic placement vs. random placement: groups touched per query."""

    def measure():
        generator = QueryWorkloadGenerator(msn_files, seed=3)
        queries = generator.mixed_complex_queries(30, 30, distribution="zipf", k=8)

        semantic = SmartStore.build(msn_files, SmartStoreConfig(num_units=NUM_UNITS, seed=1))
        sem_hops = run_query_workload(semantic, queries).hops

        # Random placement: shuffle the file→unit assignment before building
        # the tree by monkey-patching the partition labels via a shuffled copy
        # of the files (grouping sees uncorrelated units).
        rng = np.random.default_rng(1)
        shuffled = list(msn_files)
        rng.shuffle(shuffled)
        scrambled = SmartStore.build(
            shuffled, SmartStoreConfig(num_units=NUM_UNITS, seed=1, lsi_rank=1, thresholds=(0.0,))
        )
        scr_hops = run_query_workload(scrambled, queries).hops
        return float(np.mean(sem_hops)), float(np.mean(scr_hops))

    semantic_hops, scrambled_hops = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        ["placement policy", "mean groups visited per complex query"],
        [["LSI semantic grouping", f"{semantic_hops + 1:.2f}"],
         ["degenerate single-dimension grouping", f"{scrambled_hops + 1:.2f}"]],
        title="Ablation — effect of semantic grouping on query routing, MSN",
    )
    record_result("ablation_grouping_routing", table)
    assert semantic_hops <= scrambled_hops + 0.5
