"""Figure 10: recall of complex queries under Uniform / Gauss / Zipf (HP trace).

The paper evaluates top-8 and range queries on the HP trace and observes
(a) top-k queries achieve higher recall than range queries and (b) Zipf- and
Gauss-distributed queries achieve higher recall than Uniform ones, because
the former probe the densely correlated parts of the attribute space.

The reproduction uses the staleness scenario that drives all the recall
experiments: the deployment is built over the older files and the most
recently created ones arrive as insertions interleaved with the queries
(queries run without versioning here, as in Figure 10).
"""

from __future__ import annotations

import pytest

from _bench_utils import NUM_UNITS, record_result
from repro.core.smartstore import SmartStoreConfig
from repro.eval.harness import StalenessExperiment
from repro.eval.reporting import format_table
from repro.workloads.generator import QueryWorkloadGenerator

N_QUERIES = 60
UPDATE_FRACTION = 0.12
DISTRIBUTIONS = ("uniform", "gauss", "zipf")


@pytest.fixture(scope="module")
def experiment(hp_files):
    return StalenessExperiment(
        hp_files,
        update_fraction=UPDATE_FRACTION,
        config=SmartStoreConfig(num_units=NUM_UNITS, seed=3),
        seed=13,
    )


def _measure(experiment, files, kind: str, distribution: str) -> float:
    store = experiment.build(versioning=False)
    generator = QueryWorkloadGenerator(files, seed=31)
    if kind == "range":
        queries = generator.range_queries(
            N_QUERIES, distribution=distribution, ensure_nonempty=True
        )
    else:
        queries = generator.topk_queries(N_QUERIES, k=8, distribution=distribution)
    return experiment.run(store, queries).mean_recall


def test_fig10_recall_by_distribution(benchmark, experiment, hp_files):
    def run_all():
        table = {}
        for kind in ("topk", "range"):
            for dist in DISTRIBUTIONS:
                table[(kind, dist)] = _measure(experiment, hp_files, kind, dist)
        return table

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for dist in DISTRIBUTIONS:
        rows.append(
            [dist.capitalize(),
             f"{results[('topk', dist)] * 100:.1f}%",
             f"{results[('range', dist)] * 100:.1f}%"]
        )
    table = format_table(
        ["query distribution", "Top-8 NN recall", "Range recall"],
        rows,
        title="Figure 10 — recall of complex queries, HP trace "
              f"({N_QUERIES} queries, {UPDATE_FRACTION:.0%} concurrent updates, no versioning)",
    )
    record_result("fig10_recall_distributions", table)

    # Qualitative claims of Figure 10.
    for dist in DISTRIBUTIONS:
        assert results[("topk", dist)] >= results[("range", dist)] - 0.05
    assert results[("topk", "zipf")] >= results[("topk", "uniform")] - 0.02
    for kind in ("topk", "range"):
        for dist in DISTRIBUTIONS:
            assert results[(kind, dist)] > 0.7
