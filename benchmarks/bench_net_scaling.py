"""Network: process-per-shard scatter equivalence + multi-core scaling.

Not a paper figure — this benchmark covers the network front door grown
on top of the reproduction (ROADMAP north star: "a deployable metadata
service").  The shared harness (:mod:`repro.server.benchmarking` — the
same loop the ``net-bench`` CLI subcommand and the CI net-path smoke job
run) answers a scan-heavy range/top-k workload through worker-process
deployments of 1 and 4 shards (:func:`repro.server.worker.build_process_router`:
one OS process per shard, length-prefixed wire frames on loopback) over
the same total storage-unit budget.

Two assertions:

* **net-path equivalence** — every query answered over the wire returns
  a result fingerprint-identical to the in-process unsharded baseline
  (serialization through the wire protocol must be lossless);
* **throughput scaling** — the 4-worker deployment sustains at least
  2.5x the 1-worker scan throughput, measured as
  ``queries / busy-time-of-the-busiest-worker`` in the simulated cost
  model (the currency every scaling figure here uses; workers are
  independent OS processes, so the busiest one bounds the sustainable
  rate).  Wall-clock numbers are also recorded and gated when the host
  actually has as many cores as workers — see
  :meth:`~repro.server.benchmarking.NetScalingReport.gate_wall_speedup`.

The run also writes a machine-readable ``BENCH_net.json`` next to the
text table so CI can diff runs without parsing output.
"""

from __future__ import annotations

import pytest

from _bench_utils import RESULTS_DIR, record_result
from repro.core.smartstore import SmartStoreConfig
from repro.eval.reporting import format_table
from repro.eval.tracking import write_bench_json
from repro.server.benchmarking import run_net_scaling
from repro.traces.msn import msn_trace

WORKER_COUNTS = (1, 4)
TOTAL_UNITS = 16
QUERIES_PER_TYPE = 24
MIN_SPEEDUP = 2.5

CONFIG = SmartStoreConfig(num_units=TOTAL_UNITS, seed=7, search_breadth=TOTAL_UNITS)


@pytest.fixture(scope="module")
def corpus():
    return msn_trace(scale=2.0, seed=29).file_metadata()


@pytest.fixture(scope="module")
def report(corpus):
    return run_net_scaling(
        corpus,
        CONFIG,
        WORKER_COUNTS,
        queries_per_type=QUERIES_PER_TYPE,
        workload_seed=17,
    )


def test_wire_results_identical_to_in_process_baseline(report):
    """Every worker count answers exactly like the in-process baseline."""
    assert report.gates, "harness produced no equivalence gates"
    failing = [name for name, ok in report.gates.items() if not ok]
    assert not failing, f"fingerprint mismatches over the wire: {failing}"


def test_throughput_scales_with_worker_processes(report):
    """4 worker processes must sustain >= 2.5x the 1-worker throughput."""
    assert report.gate_scaling(MIN_SPEEDUP), (
        f"4-worker scatter throughput is only "
        f"{report.speedup_of(4):.2f}x the single-worker deployment "
        f"(required: {MIN_SPEEDUP}x)"
    )
    # Wall-clock gate applies only where the host has the cores; on
    # smaller machines the numbers are still recorded in the table.
    wall = report.gate_wall_speedup(MIN_SPEEDUP)
    assert wall is None or wall


def test_report_table(report, benchmark, corpus):
    """Render the scaling table + BENCH_net.json artefact."""
    benchmark.pedantic(
        lambda: report.speedup_of(max(WORKER_COUNTS)), rounds=1, iterations=1
    )
    rows = [
        row.as_table_row(
            report.speedup_of(row.workers), report.wall_speedup_of(row.workers)
        )
        for row in report.rows
    ]
    table = format_table(
        ["workers", "build (s)", "wall (s)", "busiest worker (sim ms)",
         "scatter q/s", "speedup", "wall q/s", "wall speedup", "identical"],
        rows,
        title=f"net scaling: {len(corpus)} files, {TOTAL_UNITS} total units, "
        f"{QUERIES_PER_TYPE} queries/type over the wire, {report.cores} cores",
    )
    record_result("net_scaling", table)
    write_bench_json(
        "net",
        metrics={
            "rows": [
                {
                    "workers": r.workers,
                    "build_seconds": r.build_seconds,
                    "wall_seconds": r.wall_seconds,
                    "busy_makespan": r.busy_makespan,
                    "scatter_qps": r.scatter_qps,
                    "wall_qps": r.wall_qps,
                    "identical": r.identical,
                }
                for r in report.rows
            ],
            "speedup": report.speedup_of(max(WORKER_COUNTS)),
            "wall_speedup": report.wall_speedup_of(max(WORKER_COUNTS)),
            "cores": report.cores,
        },
        config={
            "files": len(corpus),
            "units": TOTAL_UNITS,
            "worker_counts": list(WORKER_COUNTS),
            "queries_per_type": QUERIES_PER_TYPE,
            "min_speedup": MIN_SPEEDUP,
        },
        gates=report.gates,
        directory=RESULTS_DIR,
    )
