"""Figure 7: index space overhead per node (SmartStore vs. R-tree vs. DBMS).

The paper finds SmartStore's per-node space overhead roughly 20x smaller
than the DBMS approach (and clearly below the centralised R-tree), because
the semantic R-tree is distributed across all storage units and uses one
multi-dimensional structure instead of one B+-tree per attribute.
"""

from __future__ import annotations

import pytest

from _bench_utils import record_result
from repro.eval.reporting import format_bytes, format_table
from repro.eval.space import space_comparison


@pytest.mark.parametrize("trace_name", ["MSN", "EECS"])
def test_fig7_space_overhead(benchmark, trace_name, request):
    files = request.getfixturevalue(f"{trace_name.lower()}_files")
    store = request.getfixturevalue(f"{trace_name.lower()}_store")
    rtree, dbms = request.getfixturevalue(f"{trace_name.lower()}_baselines")

    comparison = benchmark.pedantic(
        space_comparison,
        args=(files,),
        kwargs={"store": store, "rtree": rtree, "dbms": dbms},
        rounds=1,
        iterations=1,
    )

    smart = comparison["smartstore"]
    rows = [
        ["SmartStore", format_bytes(smart["per_node_mean"]), format_bytes(smart["per_node_max"]),
         format_bytes(smart["total"]), int(smart["nodes"])],
        ["R-tree", format_bytes(comparison["rtree"]["per_node_mean"]), "-",
         format_bytes(comparison["rtree"]["total"]), 1],
        ["DBMS", format_bytes(comparison["dbms"]["per_node_mean"]), "-",
         format_bytes(comparison["dbms"]["total"]), 1],
        ["DBMS / SmartStore (per node)",
         f"{comparison['dbms']['per_node_mean'] / smart['per_node_mean']:.1f}x", "-", "-", "-"],
    ]
    table = format_table(
        ["system", "per-node mean", "per-node max", "total", "nodes"],
        rows,
        title=f"Figure 7 — space overhead per node, {trace_name}",
    )
    record_result(f"fig7_space_overhead_{trace_name.lower()}", table)

    # Qualitative claims: SmartStore per-node << R-tree << DBMS.
    assert smart["per_node_mean"] < comparison["rtree"]["per_node_mean"]
    assert comparison["rtree"]["per_node_mean"] < comparison["dbms"]["per_node_mean"]
    assert comparison["dbms"]["per_node_mean"] / smart["per_node_mean"] > 5
