"""Figure 11: optimal grouping thresholds vs. system scale and tree level.

The admission threshold epsilon that minimises the paper's quantitative
semantic-correlation measure (total squared distance to group centroids) is
computed (a) for deployments of increasing size and (b) per level of the
semantic R-tree for a 60-unit deployment.
"""

from __future__ import annotations

from _bench_utils import NUM_UNITS, record_result
from repro.eval.reporting import format_table
from repro.eval.thresholds import optimal_threshold_per_level, optimal_threshold_vs_scale

UNIT_COUNTS = (20, 40, 60, 80, 100)


def test_fig11a_threshold_vs_system_scale(benchmark, msn_files):
    rows = benchmark.pedantic(
        optimal_threshold_vs_scale, args=(msn_files, UNIT_COUNTS), rounds=1, iterations=1
    )
    table = format_table(
        ["storage units", "optimal threshold"],
        [[n, f"{t:.2f}"] for n, t in rows],
        title="Figure 11(a) — optimal threshold vs. system scale (MSN)",
    )
    record_result("fig11a_threshold_vs_scale", table)
    assert len(rows) == len(UNIT_COUNTS)
    assert all(0.0 <= t <= 1.0 for _, t in rows)


def test_fig11b_threshold_per_level(benchmark, msn_files):
    rows = benchmark.pedantic(
        optimal_threshold_per_level, args=(msn_files, NUM_UNITS), rounds=1, iterations=1
    )
    table = format_table(
        ["semantic R-tree level", "optimal threshold"],
        [[level, f"{t:.2f}"] for level, t in rows],
        title=f"Figure 11(b) — optimal threshold per tree level ({NUM_UNITS} units, MSN)",
    )
    record_result("fig11b_threshold_per_level", table)
    assert rows[0][0] == 1
    assert all(0.0 <= t <= 1.0 for _, t in rows)
