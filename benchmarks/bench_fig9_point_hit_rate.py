"""Figure 9: average hit rate of filename point queries.

Point queries route over the Bloom filters embedded in the semantic R-tree;
false positives (hash collisions) and stale filters can cause misses, but
the paper observes that over 88.2 % of point queries are served accurately.
The reproduction measures the hit rate for existing filenames both on a
freshly built deployment and after a batch of insertions that have not yet
been folded into the Bloom filters (served from the version chains).
"""

from __future__ import annotations

import pytest

from _bench_utils import record_result
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.eval.harness import StalenessExperiment, point_query_hit_rate
from repro.eval.reporting import format_table
from repro.workloads.generator import QueryWorkloadGenerator

N_QUERIES = 300


@pytest.mark.parametrize("trace_name", ["MSN", "EECS", "HP"])
def test_fig9_point_query_hit_rate(benchmark, trace_name, request):
    store = request.getfixturevalue(f"{trace_name.lower()}_store")
    generator = request.getfixturevalue(f"{trace_name.lower()}_generator")
    queries = generator.point_queries(N_QUERIES, existing_fraction=0.9)

    hit_rate = benchmark.pedantic(point_query_hit_rate, args=(store, queries), rounds=1, iterations=1)

    table = format_table(
        ["trace", "point queries", "hit rate"],
        [[trace_name, N_QUERIES, f"{hit_rate * 100:.1f}%"]],
        title=f"Figure 9 — point query hit rate, {trace_name}",
    )
    record_result(f"fig9_point_hit_rate_{trace_name.lower()}", table)
    assert hit_rate >= 0.882  # the paper's floor


def test_fig9_hit_rate_with_recent_insertions(benchmark, msn_files):
    """Hit rate when 10% of files arrived after the Bloom filters were built."""
    experiment = StalenessExperiment(
        msn_files, update_fraction=0.10, config=SmartStoreConfig(num_units=40, seed=5), seed=6
    )
    store = experiment.build(versioning=True)
    for f in experiment.update_files:
        store.insert_file(f)
    generator = QueryWorkloadGenerator(msn_files, seed=21)
    queries = generator.point_queries(N_QUERIES, existing_fraction=1.0)

    def measure() -> float:
        existing = {f.filename for f in msn_files}
        hits = sum(1 for q in queries if store.execute(q).found and q.filename in existing)
        return hits / len(queries)

    hit_rate = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        "fig9_point_hit_rate_with_staleness",
        format_table(
            ["scenario", "hit rate"],
            [["10% files inserted after build (versioning on)", f"{hit_rate * 100:.1f}%"]],
            title="Figure 9 — point query hit rate under staleness",
        ),
    )
    assert hit_rate >= 0.882
