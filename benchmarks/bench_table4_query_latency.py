"""Table 4: query latency of SmartStore vs. R-tree vs. DBMS (MSN and EECS).

The paper reports total latency of point / range / top-k query workloads at
two intensification levels (TIF 120 and 160) and finds SmartStore orders of
magnitude faster than both database baselines (headline: >1000x vs. DBMS).

The reproduction replays the same three workload types against the three
systems built over synthetic MSN and EECS populations.  TIF is emulated by
growing the workload (number of queries) proportionally — the paper's TIF
multiplies the request stream.  Absolute seconds differ from the paper (our
substrate is a cost-model simulator, not their testbed); the reported
quantity is the per-system total simulated latency and the resulting ratios.
"""

from __future__ import annotations

import pytest

from _bench_utils import record_result
from repro.eval.harness import run_query_workload
from repro.eval.reporting import format_table

#: Queries per workload at the two emulated intensification levels.
TIF_LEVELS = {120: 60, 160: 80}
RANGE_SELECTIVITY = 0.1


def _workloads(generator, n):
    return {
        "Point Query": generator.point_queries(n, existing_fraction=0.9),
        "Range Query": generator.range_queries(
            n, distribution="zipf", selectivity=RANGE_SELECTIVITY, ensure_nonempty=True
        ),
        "Top-k Query": generator.topk_queries(n, k=8, distribution="zipf"),
    }


def _run_table(store, baselines, generator, trace_name):
    rtree, dbms = baselines
    rows = []
    for tif, n_queries in TIF_LEVELS.items():
        for kind, queries in _workloads(generator, n_queries).items():
            smart = run_query_workload(store, queries).total_latency
            rt = run_query_workload(rtree, queries).total_latency
            db = run_query_workload(dbms, queries).total_latency
            rows.append(
                [
                    kind,
                    tif,
                    f"{db:.3f}",
                    f"{rt:.3f}",
                    f"{smart:.4f}",
                    f"{db / smart:.0f}x",
                    f"{rt / smart:.0f}x",
                ]
            )
    return format_table(
        [f"{trace_name} trace", "TIF", "DBMS (s)", "R-tree (s)", "SmartStore (s)",
         "DBMS/Smart", "R-tree/Smart"],
        rows,
        title=f"Table 4 — query latency, {trace_name}",
    )


@pytest.mark.parametrize("trace_name", ["MSN", "EECS"])
def test_table4_query_latency(benchmark, trace_name, request):
    store = request.getfixturevalue(f"{trace_name.lower()}_store")
    baselines = request.getfixturevalue(f"{trace_name.lower()}_baselines")
    generator = request.getfixturevalue(f"{trace_name.lower()}_generator")

    table = benchmark.pedantic(
        _run_table, args=(store, baselines, generator, trace_name), rounds=1, iterations=1
    )
    record_result(f"table4_query_latency_{trace_name.lower()}", table)

    # The qualitative claim of Table 4: SmartStore beats the non-semantic
    # R-tree, which beats the per-attribute DBMS, for every workload.
    for line in table.splitlines()[3:]:
        cells = [c.strip() for c in line.strip("|").split("|")]
        dbms, rtree, smart = float(cells[2]), float(cells[3]), float(cells[4])
        assert smart < rtree
        assert smart < dbms


def test_table4_single_range_query_wallclock(benchmark, msn_store, msn_generator):
    """Wall-clock cost of one SmartStore range query (pytest-benchmark timing)."""
    query = msn_generator.range_queries(1, distribution="zipf", ensure_nonempty=True)[0]
    result = benchmark(msn_store.execute, query)
    assert result.groups_visited >= 1


def test_table4_single_topk_query_wallclock(benchmark, msn_store, msn_generator):
    """Wall-clock cost of one SmartStore top-k query."""
    query = msn_generator.topk_queries(1, k=8, distribution="zipf")[0]
    result = benchmark(msn_store.execute, query)
    assert len(result.files) == 8


def test_table4_single_point_query_wallclock(benchmark, msn_store, msn_generator):
    """Wall-clock cost of one SmartStore filename point query."""
    query = msn_generator.point_queries(1, existing_fraction=1.0)[0]
    result = benchmark(msn_store.execute, query)
    assert result.found
