"""Ablation: automatic configuration of multiple semantic R-trees (§2.4).

A single D-dimensional semantic R-tree serves every query, but queries that
constrain a small attribute subset may be poorly served by the full-dimension
grouping.  The automatic configuration builds extra trees for attribute
subsets whose grouping differs enough from the full tree (index-unit-count
difference above the 10 % threshold).  This ablation reports how many trees
are retained and how well the retained trees match subset queries compared
with always using the full tree.
"""

from __future__ import annotations

import numpy as np

from _bench_utils import record_result
from repro.core.autoconfig import AutoConfigurator
from repro.core.semantic_rtree import SemanticRTree, StorageUnitDescriptor
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.eval.reporting import format_table
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.rtree.mbr import MBR

NUM_UNITS = 40


def _build_configurator(store: SmartStore) -> AutoConfigurator:
    """Assemble the per-unit centroid matrix and the tree-builder callback."""
    units = []
    matrix = []
    for unit_id in store.cluster.unit_ids():
        server = store.cluster.server(unit_id)
        centroid = server.centroid()
        matrix.append(centroid if centroid is not None else np.zeros(DEFAULT_SCHEMA.dimension))
        units.append(unit_id)
    matrix = np.vstack(matrix)
    span = matrix.max(axis=0) - matrix.min(axis=0)
    span = np.where(span > 0, span, 1.0)
    normalised = (matrix - matrix.min(axis=0)) / span

    def build_tree(vectors: np.ndarray) -> SemanticRTree:
        centred = vectors - vectors.mean(axis=0)
        descriptors = []
        for i, unit_id in enumerate(units):
            server = store.cluster.server(unit_id)
            descriptors.append(
                StorageUnitDescriptor(
                    unit_id=unit_id,
                    mbr=server.mbr(),
                    centroid=server.centroid(),
                    semantic_vector=centred[i],
                    filenames=[],
                    file_count=len(server),
                )
            )
        return SemanticRTree.build(
            descriptors, thresholds=store.tree.thresholds, max_fanout=store.config.max_fanout
        )

    return AutoConfigurator(
        DEFAULT_SCHEMA,
        normalised,
        build_tree,
        difference_threshold=store.config.autoconfig_threshold,
    )


def test_ablation_autoconfig_retained_trees(benchmark, msn_files):
    store = SmartStore.build(msn_files, SmartStoreConfig(num_units=NUM_UNITS, seed=2))
    configurator = _build_configurator(store)

    trees = benchmark.pedantic(
        configurator.configure, kwargs={"max_subset_size": 3}, rounds=1, iterations=1
    )
    summary = configurator.summary()

    rows = [
        ["attribute subsets examined", summary["examined_subsets"]],
        ["semantic R-trees retained", summary["retained_trees"]],
        ["index units in the full-dimension tree", summary["index_units_full"]],
    ]
    for t in trees[1:6]:
        rows.append([f"retained subset {', '.join(t.attributes)}", t.num_index_units])
    table = format_table(
        ["quantity", "value"],
        rows,
        title="Ablation — automatic configuration (10% index-unit-difference threshold), MSN",
    )
    record_result("ablation_autoconfig_trees", table)

    assert trees[0].is_full
    assert summary["retained_trees"] >= 1
    # The retained subset trees must genuinely differ from the full tree.
    reference = trees[0].num_index_units
    for t in trees[1:]:
        assert abs(t.num_index_units - reference) > 0.10 * reference


def test_ablation_autoconfig_query_matching(benchmark, msn_files):
    """Subset queries select a retained tree whose attributes cover them better."""
    store = SmartStore.build(msn_files, SmartStoreConfig(num_units=NUM_UNITS, seed=2))
    configurator = _build_configurator(store)
    configurator.configure(max_subset_size=3)

    query_subsets = [("mtime",), ("size", "mtime"), ("read_bytes", "write_bytes"), DEFAULT_SCHEMA.names]

    def match_scores():
        scores = []
        for subset in query_subsets:
            chosen = configurator.select_tree(subset)
            overlap = len(set(chosen.attributes) & set(subset)) / len(set(subset))
            scores.append((subset, chosen.attributes, overlap))
        return scores

    scores = benchmark.pedantic(match_scores, rounds=1, iterations=1)
    rows = [
        [", ".join(subset), ", ".join(chosen) if len(chosen) < 8 else "<full tree>", f"{overlap:.2f}"]
        for subset, chosen, overlap in scores
    ]
    table = format_table(
        ["query attributes", "selected tree", "attribute coverage"],
        rows,
        title="Ablation — tree selection for subset queries, MSN",
    )
    record_result("ablation_autoconfig_selection", table)
    # Every query's attributes must be at least partially covered, and the
    # full-attribute query must select the full tree.
    assert all(overlap > 0 for _, _, overlap in scores)
    assert scores[-1][2] == 1.0
