"""Service: throughput and latency of the concurrent query service.

Not a paper figure — this benchmark covers the serving layer grown on top
of the reproduction (ROADMAP north star).  A repeated-query stream (every
unique query recurs, interleaved, the way popular requests recur in real
query traffic) is driven through four service configurations plus the
serial uncached facade baseline:

* serial uncached — direct ``store.execute`` calls, one at a time;
* service with the result cache and the batcher ablated on/off in all four
  combinations.

Reported per configuration: wall-clock throughput, speedup over serial,
cache hit rate and the per-query-type simulated-latency percentiles of the
full service.  Every configuration must return result payloads identical
to the serial baseline — caching, coalescing and concurrency are not
allowed to change any answer.
"""

from __future__ import annotations

import time

import pytest

from _bench_utils import NUM_UNITS, record_result
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.eval.reporting import format_table
from repro.service import (
    LoadGenerator,
    QueryService,
    ServiceConfig,
    repeated_stream,
    result_fingerprint,
)
from repro.workloads.generator import QueryWorkloadGenerator

#: Unique queries per type and stream repetition factor.
UNIQUE_PER_TYPE = 16
REPEAT = 6
WORKERS = 4
BATCH_WINDOW = 16

CONFIGURATIONS = [
    ("service (cache + batching)", True, True),
    ("service (cache only)", True, False),
    ("service (batching only)", False, True),
    ("service (neither)", False, False),
]


def _build_stream(files, seed=13):
    generator = QueryWorkloadGenerator(files, seed=seed)
    base = (
        generator.point_queries(UNIQUE_PER_TYPE, existing_fraction=0.8)
        + generator.range_queries(UNIQUE_PER_TYPE, distribution="zipf")
        + generator.topk_queries(UNIQUE_PER_TYPE, k=8, distribution="zipf")
    )
    return repeated_stream(base, REPEAT, seed=3)


def _run_all(files):
    stream = _build_stream(files)

    def build_store():
        return SmartStore.build(files, SmartStoreConfig(num_units=NUM_UNITS, seed=17))

    store = build_store()
    started = time.perf_counter()
    serial = [store.execute(q) for q in stream]
    serial_wall = time.perf_counter() - started
    reference = [result_fingerprint(r) for r in serial]

    rows = [
        ["serial uncached", f"{serial_wall:.3f}", f"{len(stream) / serial_wall:.0f}",
         "1.00x", "-", "yes"]
    ]
    speedups = {}
    telemetry_rows = None
    for label, cache_on, batching_on in CONFIGURATIONS:
        config = ServiceConfig(
            max_workers=WORKERS,
            batch_window=BATCH_WINDOW,
            cache_enabled=cache_on,
            batching_enabled=batching_on,
        )
        with QueryService(build_store(), config) as service:
            report = LoadGenerator(service, seed=5).open_loop(stream)
            identical = all(
                result_fingerprint(r) == ref
                for r, ref in zip(report.results, reference)
            )
            hit_rate = (
                f"{service.cache.stats.hit_rate * 100:.0f}%"
                if service.cache is not None
                else "-"
            )
            if cache_on and batching_on:
                telemetry_rows = service.telemetry.report_rows()
        speedups[label] = (serial_wall / report.wall_seconds, identical)
        rows.append(
            [
                label,
                f"{report.wall_seconds:.3f}",
                f"{report.achieved_qps:.0f}",
                f"{serial_wall / report.wall_seconds:.2f}x",
                hit_rate,
                "yes" if identical else "NO",
            ]
        )

    table = format_table(
        ["configuration", "wall (s)", "qps", "speedup", "cache hits", "identical"],
        rows,
        title=f"Query-service throughput — {len(files)} files, "
        f"{len(stream)} requests ({UNIQUE_PER_TYPE * 3} unique x{REPEAT})",
    )
    telemetry = format_table(
        ["query type", "requests", "engine", "cache", "coalesced",
         "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        telemetry_rows,
        title="service telemetry (cache + batching, simulated latency)",
    )
    return table + "\n\n" + telemetry, speedups


def test_service_throughput(benchmark, msn_files):
    text, speedups = benchmark.pedantic(_run_all, args=(msn_files,), rounds=1, iterations=1)
    record_result("service_throughput", text)

    # Every configuration must answer exactly like the serial facade.
    for label, (_, identical) in speedups.items():
        assert identical, f"{label} diverged from serial execution"
    # The headline claim: cache + batching gives >= 2x throughput over
    # serial uncached execution on a repeated-query stream.
    speedup, _ = speedups["service (cache + batching)"]
    assert speedup >= 2.0, f"cache+batching speedup {speedup:.2f}x < 2x"


def test_service_single_cached_query_wallclock(benchmark, msn_files):
    """Wall-clock cost of serving one query from the warm result cache."""
    store = SmartStore.build(msn_files, SmartStoreConfig(num_units=NUM_UNITS, seed=17))
    query = QueryWorkloadGenerator(msn_files, seed=13).range_queries(
        1, ensure_nonempty=True
    )[0]
    with QueryService(store, ServiceConfig(batching_enabled=False)) as service:
        service.execute(query)  # warm
        result = benchmark(service.execute, query)
    assert result.files
