"""Helpers importable by benchmark modules.

Kept separate from ``conftest.py`` so benchmark modules can import plain
functions without relying on pytest's conftest module-name handling.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Number of storage units used by the benchmark deployments (the paper's
#: prototype uses 60).
NUM_UNITS = 60

#: Trace down-scaling factor used throughout the harness.
TRACE_SCALE = 0.8


def record_result(name: str, text: str) -> None:
    """Print a reproduced table and persist it under ``benchmarks/results``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text.rstrip() + "\n")
    print(f"\n{text}\n[written to {path}]")
