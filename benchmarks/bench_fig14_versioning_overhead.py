"""Figure 14: versioning overhead in space and access latency.

Versioning keeps replicas consistent by attaching aggregated change batches
("versions") to the first-level index units.  The paper varies the version
ratio (file modifications per version) and reports (a) the space consumed by
the attached versions per index unit and (b) the extra query latency spent
rolling through the versions — no more than 10 % of the total query latency.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import record_result
from repro.core.smartstore import SmartStoreConfig
from repro.eval.harness import StalenessExperiment, run_query_workload
from repro.eval.reporting import format_bytes, format_table
from repro.workloads.generator import QueryWorkloadGenerator

VERSION_RATIOS = (1, 2, 4, 8, 16)
UPDATE_FRACTION = 0.10
N_QUERIES = 40


def _space_per_index_unit(files, version_ratio: int) -> float:
    experiment = StalenessExperiment(
        files,
        update_fraction=UPDATE_FRACTION,
        config=SmartStoreConfig(num_units=40, seed=4, version_ratio=version_ratio),
        seed=9,
    )
    store = experiment.build(versioning=True)
    for f in experiment.update_files:
        store.insert_file(f)
    space = store.versioning.space_bytes_per_group(
        store.config.cost_model.metadata_record_bytes
    )
    return float(np.mean(list(space.values()))) if space else 0.0


def _extra_latency_fraction(files, trace_seed: int) -> float:
    """Latency overhead of consulting versions: (with - without) / with."""
    experiment = StalenessExperiment(
        files,
        update_fraction=UPDATE_FRACTION,
        config=SmartStoreConfig(num_units=40, seed=4),
        seed=trace_seed,
    )
    generator = QueryWorkloadGenerator(files, seed=33)
    queries = generator.mixed_complex_queries(N_QUERIES // 2, N_QUERIES // 2, distribution="zipf")
    latencies = {}
    for versioning in (True, False):
        store = experiment.build(versioning=versioning)
        for f in experiment.update_files:
            store.insert_file(f)
        latencies[versioning] = run_query_workload(store, queries).mean_latency
    with_v, without_v = latencies[True], latencies[False]
    return max(0.0, (with_v - without_v) / with_v) if with_v > 0 else 0.0


@pytest.mark.parametrize("trace_name", ["MSN", "EECS"])
def test_fig14a_version_space_vs_ratio(benchmark, trace_name, request):
    files = request.getfixturevalue(f"{trace_name.lower()}_files")
    rows = benchmark.pedantic(
        lambda: [(r, _space_per_index_unit(files, r)) for r in VERSION_RATIOS],
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["version ratio", "version space per index unit"],
        [[ratio, format_bytes(space)] for ratio, space in rows],
        title=f"Figure 14(a) — versioning space overhead, {trace_name}",
    )
    record_result(f"fig14a_version_space_{trace_name.lower()}", table)

    # Comprehensive versioning (ratio=1) must be the most expensive point;
    # space shrinks (weakly) as more changes aggregate per version.
    spaces = [s for _, s in rows]
    assert spaces[0] == max(spaces)
    assert spaces[-1] <= spaces[0]
    assert all(s > 0 for s in spaces)


@pytest.mark.parametrize("trace_name", ["MSN", "EECS"])
def test_fig14b_extra_query_latency(benchmark, trace_name, request):
    files = request.getfixturevalue(f"{trace_name.lower()}_files")
    fraction = benchmark.pedantic(_extra_latency_fraction, args=(files, 9), rounds=1, iterations=1)
    table = format_table(
        ["trace", "extra latency from version checks"],
        [[trace_name, f"{fraction * 100:.2f}%"]],
        title=f"Figure 14(b) — versioning latency overhead, {trace_name}",
    )
    record_result(f"fig14b_version_latency_{trace_name.lower()}", table)
    # The paper's bound: the additional latency is no more than 10%.
    assert fraction <= 0.10
