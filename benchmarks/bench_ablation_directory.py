"""Ablation: conventional directory-tree organisation vs. SmartStore.

The paper's Figure 1 and §1 motivate semantic grouping by arguing that the
namespace hierarchy (a) holds query answers in a tiny fraction of its
directories but (b) cannot localise most complex queries in advance, so a
conventional system falls back to brute force.  This ablation quantifies
both halves of the argument on the synthetic EECS trace and then measures
the end-to-end latency gap between walking the directory tree and routing
through the semantic groups.
"""

from __future__ import annotations

import pytest

from _bench_utils import NUM_UNITS, record_result
from repro.eval.harness import run_query_workload
from repro.eval.reporting import format_seconds, format_table
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.namespace import DirectoryTreeBaseline, build_namespace, namespace_statistics
from repro.namespace.locality import query_locality_report
from repro.workloads.generator import QueryWorkloadGenerator

N_QUERIES = 30


@pytest.fixture(scope="module")
def directory_baseline(eecs_files):
    return DirectoryTreeBaseline(eecs_files, DEFAULT_SCHEMA)


@pytest.fixture(scope="module")
def complex_queries(eecs_files):
    generator = QueryWorkloadGenerator(eecs_files, DEFAULT_SCHEMA, seed=23)
    return generator.mixed_complex_queries(N_QUERIES, N_QUERIES, distribution="zipf", k=8)


def test_namespace_locality_motivation(benchmark, eecs_files, complex_queries):
    """The §1 numbers: result sets are highly concentrated in the namespace.

    That concentration is the semantic correlation SmartStore exploits; the
    companion latency test below shows the directory tree itself cannot
    exploit it, because nothing tells it *which* subtree to prune to.
    """

    def measure():
        tree = build_namespace(eecs_files)
        stats = namespace_statistics(tree)
        report = query_locality_report(eecs_files, complex_queries, tree=tree)
        return stats, report

    stats, report = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        ["measure", "value"],
        [
            ["directories in the namespace", stats.num_directories],
            ["mean locality ratio of complex-query results", f"{report.mean_locality_ratio:.2%}"],
            ["result sets confined to a small (<=10% of files) subtree", f"{report.localizable_fraction:.1%}"],
            ["mean fraction of files under the common subtree", f"{report.mean_subtree_fraction:.1%}"],
        ],
        title="Ablation — namespace locality of complex queries, EECS",
    )
    record_result("ablation_directory_locality", table)

    # The Spyglass-style observation the introduction quotes: correlated
    # results occupy a tiny share of the directory space (Spyglass reports
    # locality ratios below 1%).  The concentration exists — but only an
    # oracle knows which subtree, which is why the directory system still
    # pays the full walk in the companion latency test.
    assert report.num_queries > 0
    assert report.mean_locality_ratio < 0.10
    assert 0.0 < report.mean_subtree_fraction < 0.60


def test_directory_walk_vs_smartstore_latency(benchmark, eecs_files, eecs_store,
                                              directory_baseline, complex_queries):
    """End-to-end: brute-force namespace walk vs. semantic-group routing."""

    def measure():
        walked = run_query_workload(directory_baseline, complex_queries)
        smart = run_query_workload(eecs_store, complex_queries)
        return walked, smart

    walked, smart = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = walked.total_latency / max(smart.total_latency, 1e-12)
    table = format_table(
        ["system", "total latency", "mean latency", "messages"],
        [
            ["Directory tree (brute-force walk)", format_seconds(walked.total_latency),
             format_seconds(walked.mean_latency), walked.total_messages],
            ["SmartStore", format_seconds(smart.total_latency),
             format_seconds(smart.mean_latency), smart.total_messages],
            ["speed-up", f"{speedup:,.0f}x", "", ""],
        ],
        title=f"Ablation — {2 * N_QUERIES} complex queries, EECS, {NUM_UNITS} units",
    )
    record_result("ablation_directory_latency", table)

    # The directory walk must be orders of magnitude slower: it scans every
    # record on disk for every query, which is the brute force the paper is
    # designed to avoid.
    assert speedup > 100.0
