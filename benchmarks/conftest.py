"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation section (see the experiment index in ``DESIGN.md``).  Modules
follow the same pattern:

* session-scoped fixtures build the traces, SmartStore deployments and
  baseline systems once;
* each ``test_*`` function wraps the interesting operation in the
  ``benchmark`` fixture so ``pytest benchmarks/ --benchmark-only`` reports
  wall-clock timings;
* the reproduced rows/series themselves (the paper-shaped tables) are
  printed and also written to ``benchmarks/results/<name>.txt`` (see
  ``_bench_utils.record_result``) so they survive pytest's stdout
  capturing; ``EXPERIMENTS.md`` records the paper-vs-measured comparison.

The scales are deliberately reduced (thousands of files, hundreds of
queries) so the whole harness completes in minutes on a laptop; the
quantities that matter — relative latencies, hop distributions, recall
ordering, space ratios — are scale-stable.
"""

from __future__ import annotations

import pytest

from _bench_utils import NUM_UNITS, TRACE_SCALE
from repro.baselines import DBMSBaseline, RTreeBaseline
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.traces.eecs import eecs_trace
from repro.traces.hp import hp_trace
from repro.traces.msn import msn_trace
from repro.workloads.generator import QueryWorkloadGenerator


# ---------------------------------------------------------------------------- traces
@pytest.fixture(scope="session")
def msn_files():
    return msn_trace(scale=TRACE_SCALE, seed=29).file_metadata()


@pytest.fixture(scope="session")
def eecs_files():
    return eecs_trace(scale=TRACE_SCALE, seed=41).file_metadata()


@pytest.fixture(scope="session")
def hp_files():
    return hp_trace(scale=TRACE_SCALE, seed=17).file_metadata()


# ---------------------------------------------------------------------------- systems
@pytest.fixture(scope="session")
def msn_store(msn_files):
    return SmartStore.build(msn_files, SmartStoreConfig(num_units=NUM_UNITS, seed=1))


@pytest.fixture(scope="session")
def eecs_store(eecs_files):
    return SmartStore.build(eecs_files, SmartStoreConfig(num_units=NUM_UNITS, seed=2))


@pytest.fixture(scope="session")
def hp_store(hp_files):
    return SmartStore.build(hp_files, SmartStoreConfig(num_units=NUM_UNITS, seed=3))


@pytest.fixture(scope="session")
def msn_baselines(msn_files):
    return RTreeBaseline(msn_files, DEFAULT_SCHEMA), DBMSBaseline(msn_files, DEFAULT_SCHEMA)


@pytest.fixture(scope="session")
def eecs_baselines(eecs_files):
    return RTreeBaseline(eecs_files, DEFAULT_SCHEMA), DBMSBaseline(eecs_files, DEFAULT_SCHEMA)


# ---------------------------------------------------------------------------- workloads
@pytest.fixture(scope="session")
def msn_generator(msn_files):
    return QueryWorkloadGenerator(msn_files, DEFAULT_SCHEMA, seed=7)


@pytest.fixture(scope="session")
def eecs_generator(eecs_files):
    return QueryWorkloadGenerator(eecs_files, DEFAULT_SCHEMA, seed=11)


@pytest.fixture(scope="session")
def hp_generator(hp_files):
    return QueryWorkloadGenerator(hp_files, DEFAULT_SCHEMA, seed=13)
