"""Tables 1-3: scaled-up HP / MSN / EECS trace characteristics.

The paper intensifies each trace with a Trace Intensifying Factor (TIF 80 /
100 / 150) and reports the original vs. scaled summary statistics.  The
analytic rows below reproduce the published tables exactly (they are the
original figures multiplied by the TIF); the benchmark part materialises a
down-scaled synthetic trace and applies :func:`repro.traces.scaleup.scale_up`
to show that the mechanical scale-up preserves the operation histogram while
multiplying the populations.
"""

from __future__ import annotations

import pytest

from _bench_utils import record_result
from repro.eval.reporting import format_count, format_table
from repro.traces.eecs import EECS_ORIGINAL_SUMMARY, eecs_trace
from repro.traces.hp import HP_ORIGINAL_SUMMARY, hp_trace
from repro.traces.msn import MSN_ORIGINAL_SUMMARY, msn_trace
from repro.traces.scaleup import scale_up, scaled_summary


def _table1_rows():
    scaled = scaled_summary(HP_ORIGINAL_SUMMARY, 80)
    return [
        ["request (million)", HP_ORIGINAL_SUMMARY.total_requests / 1e6, scaled.total_requests / 1e6],
        ["active users", HP_ORIGINAL_SUMMARY.active_users, scaled.active_users],
        ["user accounts", HP_ORIGINAL_SUMMARY.user_accounts, scaled.user_accounts],
        ["active files (million)", HP_ORIGINAL_SUMMARY.active_files / 1e6, scaled.active_files / 1e6],
        ["total files (million)", HP_ORIGINAL_SUMMARY.total_files / 1e6, scaled.total_files / 1e6],
    ]


def _table2_rows():
    scaled = scaled_summary(MSN_ORIGINAL_SUMMARY, 100)
    return [
        ["# of files (million)", MSN_ORIGINAL_SUMMARY.total_files / 1e6, scaled.total_files / 1e6],
        ["total READ (million)", MSN_ORIGINAL_SUMMARY.total_reads / 1e6, scaled.total_reads / 1e6],
        ["total WRITE (million)", MSN_ORIGINAL_SUMMARY.total_writes / 1e6, scaled.total_writes / 1e6],
        ["duration (hours)", MSN_ORIGINAL_SUMMARY.duration_hours, scaled.duration_hours],
        ["total I/O (million)", MSN_ORIGINAL_SUMMARY.total_io / 1e6, scaled.total_io / 1e6],
    ]


def _table3_rows():
    scaled = scaled_summary(EECS_ORIGINAL_SUMMARY, 150)
    gib = 1024**3
    return [
        ["total READ (million)", EECS_ORIGINAL_SUMMARY.total_reads / 1e6, scaled.total_reads / 1e6],
        ["READ size (GB)", EECS_ORIGINAL_SUMMARY.read_bytes / gib, scaled.read_bytes / gib],
        ["total WRITE (million)", EECS_ORIGINAL_SUMMARY.total_writes / 1e6, scaled.total_writes / 1e6],
        ["WRITE size (GB)", EECS_ORIGINAL_SUMMARY.write_bytes / gib, scaled.write_bytes / gib],
        ["total operations (million)", EECS_ORIGINAL_SUMMARY.total_requests / 1e6, scaled.total_requests / 1e6],
    ]


def test_tables_1_2_3_analytic_rows(benchmark):
    """Reproduce the published rows (original column x TIF)."""

    def build_report() -> str:
        parts = [
            format_table(["Table 1 (HP)", "Original", "TIF=80"], _table1_rows()),
            format_table(["Table 2 (MSN)", "Original", "TIF=100"], _table2_rows()),
            format_table(["Table 3 (EECS)", "Original", "TIF=150"], _table3_rows()),
        ]
        return "\n\n".join(parts)

    report = benchmark(build_report)
    record_result("tables_1_2_3_traces", report)
    assert "Table 1" in report


@pytest.mark.parametrize(
    "maker,tif,name",
    [(hp_trace, 8, "HP"), (msn_trace, 10, "MSN"), (eecs_trace, 15, "EECS")],
)
def test_mechanical_scaleup(benchmark, maker, tif, name):
    """Materialise a reduced-TIF scale-up and verify the multiplication.

    The paper's TIFs (80/100/150) applied to multi-million-record traces are
    out of reach for an in-memory harness; a 10x-reduced TIF on a down-scaled
    trace exercises exactly the same code path and the same invariants.
    """
    base = maker(scale=0.1)

    scaled = benchmark.pedantic(scale_up, args=(base, tif), rounds=1, iterations=1)

    assert len(scaled.records) == tif * len(base.records)
    assert len(scaled.files) == tif * len(base.files)
    summary = scaled.summary()
    rows = [
        ["requests", format_count(len(base.records)), format_count(len(scaled.records))],
        ["files", format_count(len(base.files)), format_count(len(scaled.files))],
        ["active users", base.summary().active_users, summary.active_users],
    ]
    record_result(
        f"tables_1_2_3_mechanical_{name.lower()}",
        format_table([f"{name} mechanical scale-up", "original", f"TIF={tif}"], rows),
    )
