#!/usr/bin/env python
"""Automatic configuration of multiple semantic R-trees (§2.4).

Queries constrain unpredictable attribute subsets.  The automatic
configuration technique builds candidate semantic R-trees over attribute
subsets and retains only those whose grouping differs from the full
D-dimensional tree by more than the configured index-unit-count threshold
(10 % in the prototype); queries are then served from the retained tree that
best matches their attributes.

Run with:  python examples/autoconfig_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import SmartStore, SmartStoreConfig
from repro.core.autoconfig import AutoConfigurator
from repro.core.semantic_rtree import SemanticRTree, StorageUnitDescriptor
from repro.eval.reporting import format_table
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.traces import msn_trace


def build_configurator(store: SmartStore) -> AutoConfigurator:
    """Per-unit centroid matrix + the callback that builds a tree from vectors."""
    unit_ids = store.cluster.unit_ids()
    matrix = np.vstack([
        store.cluster.server(u).centroid()
        if store.cluster.server(u).centroid() is not None
        else np.zeros(DEFAULT_SCHEMA.dimension)
        for u in unit_ids
    ])
    span = np.where(matrix.max(axis=0) - matrix.min(axis=0) > 0,
                    matrix.max(axis=0) - matrix.min(axis=0), 1.0)
    normalised = (matrix - matrix.min(axis=0)) / span

    def build_tree(vectors: np.ndarray) -> SemanticRTree:
        centred = vectors - vectors.mean(axis=0)
        descriptors = [
            StorageUnitDescriptor(
                unit_id=u,
                mbr=store.cluster.server(u).mbr(),
                centroid=store.cluster.server(u).centroid(),
                semantic_vector=centred[i],
                filenames=[],
                file_count=len(store.cluster.server(u)),
            )
            for i, u in enumerate(unit_ids)
        ]
        return SemanticRTree.build(
            descriptors, thresholds=store.tree.thresholds, max_fanout=store.config.max_fanout
        )

    return AutoConfigurator(DEFAULT_SCHEMA, normalised, build_tree,
                            difference_threshold=store.config.autoconfig_threshold)


def main() -> None:
    trace = msn_trace(scale=0.6)
    files = trace.file_metadata()
    store = SmartStore.build(files, SmartStoreConfig(num_units=60, seed=4))
    print(f"Deployment: {store.cluster.num_units} units, "
          f"{store.tree.num_index_units} index units in the full-dimension tree")

    configurator = build_configurator(store)
    trees = configurator.configure(max_subset_size=3)
    summary = configurator.summary()
    print(f"Examined {summary['examined_subsets']} attribute subsets, "
          f"retained {summary['retained_trees']} semantic R-tree(s) "
          f"(threshold: {store.config.autoconfig_threshold:.0%} index-unit difference)")

    rows = []
    for tree in trees[:8]:
        label = "full tree" if tree.is_full else ", ".join(tree.attributes)
        rows.append([label, tree.num_index_units])
    print()
    print(format_table(["retained tree (attributes)", "index units"], rows,
                       title="Retained semantic R-trees"))

    print()
    query_subsets = [("mtime",), ("size", "mtime"), ("read_bytes", "write_bytes"),
                     ("atime", "access_count", "owner")]
    rows = []
    for subset in query_subsets:
        chosen = configurator.select_tree(subset)
        label = "full tree" if chosen.is_full else ", ".join(chosen.attributes)
        rows.append([", ".join(subset), label])
    print(format_table(["query attributes", "tree selected"], rows,
                       title="Tree selection for incoming queries"))


if __name__ == "__main__":
    main()
