#!/usr/bin/env python
"""Durable ingest: the WAL-backed write path, compaction and crash recovery.

This walks the full lifecycle of the online write path:

1. build a deployment and wrap it in an :class:`IngestPipeline` with a
   write-ahead log (fsync batched every 16 records);
2. stream inserts/deletes/modifies through the pipeline and show that
   queries reflect every mutation immediately (read-your-writes through the
   staging overlay, before any structural update);
3. let the compactor drain the staged mutations into the semantic R-tree
   and verify no answer changed;
4. checkpoint (snapshot + WAL truncation), mutate some more, then simulate
   a crash by tearing the log's tail and recover — the rebuilt store
   answers exactly like the surviving prefix.

Run with:  python examples/durable_ingest.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import IngestPipeline, SmartStore, SmartStoreConfig, WriteAheadLog, recover
from repro.service.cache import result_fingerprint
from repro.traces import msn_trace
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery


def probe(store, queries):
    return [result_fingerprint(store.execute(q)) for q in queries]


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-durable-"))
    wal_path = workdir / "wal.jsonl"
    ckpt_dir = workdir / "checkpoint"

    print("Building SmartStore over the synthetic MSN trace ...")
    files = msn_trace(scale=0.4).file_metadata()
    config = SmartStoreConfig(num_units=12, seed=7, search_breadth=64)
    store = SmartStore.build(files, config)
    print(f"  {len(files)} files on {store.cluster.num_units} units")

    pipeline = IngestPipeline(store, WriteAheadLog(wal_path, fsync_every=16))
    pipeline.checkpoint(ckpt_dir)
    print(f"  WAL at {wal_path}, checkpoint at {ckpt_dir}")

    # ---- 1. stream mutations; reads see them immediately -----------------
    generator = QueryWorkloadGenerator(files, seed=11)
    stream = generator.mutation_stream(n_inserts=20, n_deletes=10, n_modifies=5)
    for kind, f in stream:
        getattr(pipeline, kind)(f)
    inserted = next(f for kind, f in stream if kind == "insert")
    deleted = next(f for kind, f in stream if kind == "delete")
    print(f"\nApplied {len(stream)} mutations (staged: {len(pipeline.overlay)})")
    print(f"  staged insert visible : {store.execute(PointQuery(inserted.filename)).found}")
    print(f"  staged delete masked  : {not store.execute(PointQuery(deleted.filename)).found}")

    # ---- 2. compaction changes no answer ---------------------------------
    queries = QueryWorkloadGenerator(
        pipeline.materialized_files(), seed=13
    ).mixed_complex_queries(6, 6)
    before = probe(store, queries)
    applied = pipeline.compactor.drain()
    after = probe(store, queries)
    print(f"\nCompactor drained {applied} change(s); "
          f"answers unchanged: {before == after}")
    print(f"  compaction stats: {pipeline.compactor.stats.as_dict()}")

    # ---- 3. crash and recover --------------------------------------------
    more = generator.mutation_stream(n_inserts=8, n_deletes=0, n_modifies=0)
    for kind, f in more:
        getattr(pipeline, kind)(f)
    live = probe(store, queries)
    pipeline.close()

    data = wal_path.read_bytes()
    wal_path.write_bytes(data[:-37])  # tear the final record mid-write
    print("\nSimulated crash: WAL tail torn mid-record")

    recovered = recover(ckpt_dir, wal_path=wal_path)
    survived = recovered.mutations
    total = len(stream) + len(more)
    print(f"  recovery replayed {survived}/{total} logged mutation(s) "
          f"(the torn record is lost, as the durability contract says)")

    # The uncrashed reference: apply the same surviving prefix to a fresh
    # deployment; the recovered store must answer identically.
    ref = IngestPipeline(SmartStore.build(files, config))
    for kind, f in (stream + more)[:survived]:
        getattr(ref, kind)(f)
    print(f"  recovered answers match the uncrashed reference: "
          f"{probe(recovered.store, queries) == probe(ref.store, queries)}")
    print(f"  recovered store keeps serving: "
          f"{recovered.store.execute(PointQuery(inserted.filename)).found}")
    ref.close()
    recovered.close()


if __name__ == "__main__":
    main()
