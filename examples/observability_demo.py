#!/usr/bin/env python
"""Observability end to end: tracing, metrics, and the slow-query log.

This walks :mod:`repro.obs` across a real deployment, inside one script:

1. **trace** — enable tracing, run a sharded + replicated workload, and
   watch one request become a span tree covering every stage boundary
   (client edge, admission, cache lookup, engine, per-shard scatter,
   replica read and catch-up);
2. **export** — write the spans as JSONL and as Chrome trace-event JSON
   (open ``obs_demo/trace.chrome.json`` at https://ui.perfetto.dev or
   ``chrome://tracing`` to see the waterfall);
3. **metrics** — render the process-wide
   :class:`~repro.obs.metrics.MetricsRegistry` (request counters,
   latency histograms, replication counters) as Prometheus text
   exposition;
4. **slow-query log** — set a threshold and capture one structured
   record per slow request, span breakdown included.

Against a *served* deployment the same data is one op away:
``repro serve --spec spec.json --trace`` then
``repro obs-export --address tcp://...``.

Run with:  python examples/observability_demo.py
"""

from __future__ import annotations

from pathlib import Path

from repro.api import DeploymentSpec, connect
from repro.core.smartstore import SmartStoreConfig
from repro.obs import configure, get_registry, get_slowlog, get_tracer
from repro.traces import msn_trace
from repro.workloads.generator import QueryWorkloadGenerator

OUT_DIR = Path("obs_demo")


def main() -> None:
    # Observability must be configured before the deployment is built so
    # every layer (and any spawned worker process) sees the switches.
    configure(tracing=True, slow_query_threshold_s=0.0)

    files = msn_trace(scale=0.3, seed=29).file_metadata()
    spec = DeploymentSpec(
        topology="sharded_replicated",
        store=SmartStoreConfig(num_units=8, seed=7, search_breadth=48),
        shards=2,
        replicas=1,
    )
    generator = QueryWorkloadGenerator(files, seed=17)
    queries = generator.range_queries(3) + generator.topk_queries(3, k=8)

    # ------------------------------------------------ 1. a traced workload
    with connect(spec, files) as client:
        responses = [client.execute(q) for q in queries]
        client.delete(files[0])  # mutations trace too

    tracer = get_tracer()
    last = responses[-1]
    print(f"{len(responses)} traced queries; last trace_id={last.trace_id}")
    spans = sorted(
        tracer.collector.spans_for(last.trace_id), key=lambda s: s.start_s
    )
    print(f"one request, {len(spans)} spans:")
    for span in spans:
        indent = "  " if span.parent_id else ""
        print(
            f"  {indent}{span.name:22s} {span.duration_s * 1e3:8.3f} ms  "
            f"{span.tags}"
        )

    # --------------------------------------------------- 2. export formats
    OUT_DIR.mkdir(exist_ok=True)
    jsonl = tracer.collector.export_jsonl(OUT_DIR / "trace.jsonl")
    chrome = tracer.collector.export_chrome(OUT_DIR / "trace.chrome.json")
    print(f"\nwrote {jsonl} ({len(tracer.collector)} spans)")
    print(f"wrote {chrome}  <- open at https://ui.perfetto.dev")

    # ------------------------------------------------------- 3. metrics
    text = get_registry().render_prometheus()
    (OUT_DIR / "metrics.prom").write_text(text, encoding="utf-8")
    interesting = [
        line
        for line in text.splitlines()
        if line.startswith(("repro_requests_total", "repro_mutations_total"))
        or line.startswith("# TYPE")
    ]
    print("\nPrometheus exposition (excerpt):")
    for line in interesting[:10]:
        print(f"  {line}")
    print(f"  ... full exposition in {OUT_DIR / 'metrics.prom'}")

    # -------------------------------------------------- 4. slow-query log
    records = get_slowlog().records()
    print(f"\nslow-query log captured {len(records)} records "
          f"(threshold 0s: everything is 'slow')")
    record = records[-1]
    print(
        f"last record: kind={record['kind']} wall={record['wall_s'] * 1e3:.2f}ms "
        f"complete={record['complete']} spans={len(record['spans'])}"
    )

    # The demo leaves global state clean for embedders.
    configure(tracing=False, slow_query_threshold_s=None)


if __name__ == "__main__":
    main()
