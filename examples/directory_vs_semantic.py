#!/usr/bin/env python
"""Directory-tree organisation vs. semantic organisation (Figure 1 made concrete).

The paper's Figure 1 contrasts the conventional namespace hierarchy with
SmartStore's semantic grouping.  This example measures that contrast on the
synthetic EECS trace:

1. rebuild the conventional namespace from the trace's file paths and print
   its structural statistics;
2. measure the Spyglass-style namespace locality of a complex-query
   workload — how little of the directory space holds the answers, and how
   rarely the namespace alone could have localised the search (the §1
   motivation);
3. run the same workload against the directory-tree service and against
   SmartStore and compare the cost.

Run with:  python examples/directory_vs_semantic.py
"""

from __future__ import annotations

from repro import SmartStore, SmartStoreConfig
from repro.eval.harness import run_query_workload
from repro.eval.reporting import format_seconds, format_table
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.namespace import (
    DirectoryTreeBaseline,
    build_namespace,
    namespace_statistics,
    query_locality_report,
)
from repro.traces import eecs_trace
from repro.workloads.generator import QueryWorkloadGenerator

NUM_UNITS = 40
N_QUERIES = 40


def main() -> None:
    print("Generating the synthetic EECS trace ...")
    trace = eecs_trace(scale=0.5)
    files = trace.file_metadata()
    print(f"  {len(files)} files")

    # 1. The conventional organisation: the namespace the paths imply.
    tree = build_namespace(files)
    stats = namespace_statistics(tree)
    print(
        format_table(
            ["statistic", "value"],
            [[k, v] for k, v in stats.as_dict().items()],
            title="Conventional namespace (directory tree) structure",
        )
    )

    # 2. Namespace locality of a complex-query workload.
    generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=11)
    queries = generator.mixed_complex_queries(N_QUERIES, N_QUERIES, distribution="zipf", k=8)
    report = query_locality_report(files, queries, tree=tree)
    print(
        format_table(
            ["measure", "value"],
            [
                ["complex queries analysed", report.num_queries],
                ["mean locality ratio (dirs holding results / all dirs)",
                 f"{report.mean_locality_ratio:.2%}"],
                ["result sets confined to a small (<=10% of files) subtree",
                 f"{report.localizable_fraction:.1%}"],
                ["mean fraction of files under the common subtree",
                 f"{report.mean_subtree_fraction:.1%}"],
            ],
            title="Namespace locality of the workload (the Spyglass observation of §1)",
        )
    )
    print(
        "  -> results are concentrated in few directories, but a namespace-only\n"
        "     system rarely knows *which* ones in advance, so it must walk the tree.\n"
    )

    # 3. Cost of answering the workload: directory walk vs. semantic groups.
    print("Building SmartStore and the directory-tree service ...")
    store = SmartStore.build(files, SmartStoreConfig(num_units=NUM_UNITS, seed=3))
    walker = DirectoryTreeBaseline(files, DEFAULT_SCHEMA)

    smart = run_query_workload(store, queries)
    walked = run_query_workload(walker, queries)
    print(
        format_table(
            ["system", "total latency", "mean latency", "messages"],
            [
                ["Directory tree (brute-force walk)",
                 format_seconds(walked.total_latency),
                 format_seconds(walked.mean_latency),
                 walked.total_messages],
                ["SmartStore (semantic groups)",
                 format_seconds(smart.total_latency),
                 format_seconds(smart.mean_latency),
                 smart.total_messages],
            ],
            title=f"{2 * N_QUERIES} complex queries over the same population",
        )
    )
    speedup = walked.total_latency / smart.total_latency if smart.total_latency else float("inf")
    print(f"\nSemantic organisation answers the workload {speedup:,.0f}x faster than the directory walk.")


if __name__ == "__main__":
    main()
