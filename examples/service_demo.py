#!/usr/bin/env python
"""The concurrent query service end to end.

Builds a SmartStore deployment over the synthetic MSN trace, then drives it
with a repeated-query stream under both client models:

* an open-loop run (requests submitted back-to-back, batched and coalesced
  by the service) with the result cache enabled, and
* the same stream against an uncached, serial facade for comparison.

Also demonstrates versioning-aware invalidation: after inserting new files
the cache flushes itself, and a previously missing filename starts
resolving without any explicit cache management.

Run with:  python examples/service_demo.py
"""

from __future__ import annotations

import time

from repro import PointQuery, SmartStore, SmartStoreConfig
from repro.eval.reporting import format_table
from repro.metadata.file_metadata import FileMetadata
from repro.service import LoadGenerator, QueryService, ServiceConfig, repeated_stream
from repro.traces import msn_trace
from repro.workloads.generator import QueryWorkloadGenerator


def main() -> None:
    files = msn_trace(scale=0.5, seed=29).file_metadata()
    store = SmartStore.build(files, SmartStoreConfig(num_units=30, seed=17))
    print(f"deployment: {store!r}")

    generator = QueryWorkloadGenerator(files, seed=13)
    base = (
        generator.point_queries(15, existing_fraction=0.8)
        + generator.range_queries(10, distribution="zipf")
        + generator.topk_queries(10, k=8)
    )
    stream = repeated_stream(base, 5, seed=3)
    print(f"workload: {len(base)} unique queries x5 = {len(stream)} requests\n")

    # Serial, uncached baseline.
    baseline_store = SmartStore.build(files, SmartStoreConfig(num_units=30, seed=17))
    started = time.perf_counter()
    for query in stream:
        baseline_store.execute(query)
    serial_wall = time.perf_counter() - started

    # The service: 4 workers, batching window of 16, cache enabled.
    with QueryService(store, ServiceConfig(max_workers=4, batch_window=16)) as service:
        report = LoadGenerator(service, seed=5).open_loop(stream)
        print(
            format_table(
                ["configuration", "wall (s)", "qps", "speedup"],
                [
                    ["serial uncached", f"{serial_wall:.3f}",
                     f"{len(stream) / serial_wall:.0f}", "1.00x"],
                    ["service (cache + batching)", f"{report.wall_seconds:.3f}",
                     f"{report.achieved_qps:.0f}",
                     f"{serial_wall / report.wall_seconds:.2f}x"],
                ],
                title="throughput",
            )
        )
        print(
            format_table(
                ["query type", "requests", "engine", "cache", "coalesced",
                 "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
                service.telemetry.report_rows(),
                title="service telemetry (simulated latency)",
            )
        )
        print(f"cache: {service.cache!r}")

        # Versioning-aware invalidation: a brand-new file becomes visible
        # through the service without any manual cache management.
        new_file = FileMetadata(
            path="/msn/new/fresh-arrival.dat",
            attributes=dict(files[0].attributes),
        )
        miss = service.execute(PointQuery(new_file.filename))
        store.insert_file(new_file)  # flushes the cache via the version chains
        hit = service.execute(PointQuery(new_file.filename))
        print(
            f"\n{new_file.filename}: before insert found={miss.found}, "
            f"after insert found={hit.found} "
            f"(cache invalidations: {service.cache.stats.invalidations})"
        )


if __name__ == "__main__":
    main()
