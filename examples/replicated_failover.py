#!/usr/bin/env python
"""Replicated shards surviving a kill-every-primary storm, live.

This walks the availability layer end to end:

1. split the MSN corpus into 2 shards behind a
   :class:`~repro.shard.router.ShardRouter`, each shard a
   :class:`~repro.replication.group.ReplicaGroup` of 1 primary + 2
   replicas (async WAL-segment shipping, bounded lag window);
2. serve a point/range/top-k workload and record every answer's
   fingerprint;
3. kill **every primary** with the live
   :class:`~repro.replication.fault.FaultInjector`, keep mutating and
   querying — writes promote the freshest replica per group, reads route
   around the corpses — and show every answer still byte-identical with
   zero failed requests;
4. recover the ex-primaries (reintegration = catch-up replay + an
   anti-entropy fingerprint check) and print the failover telemetry the
   service layer surfaces.

Run with:  python examples/replicated_failover.py
"""

from __future__ import annotations

from repro import SmartStore, SmartStoreConfig
from repro.ingest.pipeline import IngestPipeline
from repro.replication import FaultInjector
from repro.service.cache import result_fingerprint
from repro.api import DeploymentSpec, connect
from repro.traces import msn_trace
from repro.workloads.generator import QueryWorkloadGenerator


def probe(target, queries):
    return [result_fingerprint(target.execute(q)) for q in queries]


def main() -> None:
    files = msn_trace(scale=0.5, seed=29).file_metadata()
    config = SmartStoreConfig(num_units=12, seed=7, search_breadth=48)

    generator = QueryWorkloadGenerator(files, seed=17)
    queries = (
        generator.point_queries(8, existing_fraction=0.8)
        + generator.range_queries(8, distribution="zipf")
        + generator.topk_queries(8, k=8, distribution="zipf")
    )
    mutations = generator.mutation_stream(18, 6, 6)

    print(f"corpus: {len(files)} files; 2 shards x (1 primary + 2 replicas)")
    baseline = SmartStore.build(files, config)
    baseline_pipeline = IngestPipeline(baseline)

    client = connect(
        DeploymentSpec(
            topology="sharded_replicated",
            store=config,
            shards=2,
            replicas=2,
            replication_mode="async",
            max_lag=16,
        ),
        files,
    )
    router = client.store  # the replicated ShardRouter behind the client
    injector = FaultInjector(router)
    try:
        assert probe(router, queries) == probe(baseline, queries)
        print("healthy: all answers identical to the unsharded baseline")

        for kind, file in mutations[:9]:
            getattr(router, kind)(file)
            getattr(baseline_pipeline, kind)(file)

        killed = injector.crash_primary()
        print(f"\n*** crashed the primary of every group: {killed} ***")

        for kind, file in mutations[9:]:
            getattr(router, kind)(file)  # promotes on first write per group
            getattr(baseline_pipeline, kind)(file)

        assert probe(router, queries) == probe(baseline, queries)
        print("failed over: mutations kept flowing, answers still identical")

        router.compactor.drain()
        baseline_pipeline.compactor.drain()
        assert probe(router, queries) == probe(baseline, queries)
        print("caught up: drained state identical too")

        for gid, replica_id in enumerate(killed):
            injector.recover(gid, replica_id)
        print("recovered ex-primaries reintegrated "
              f"(anti-entropy: {router.anti_entropy()})")

        stats = router.stats()["replication"]
        print(
            f"\nfailovers: {stats['failovers']}, "
            f"degraded reads: {stats['degraded_reads']}, "
            f"read retries: {stats['read_retries']}, "
            f"max observed lag: {stats['max_observed_lag']} "
            f"(window: 16), resyncs: {stats['resyncs']}"
        )
        for group in router.replica_groups():
            states = [
                f"r{m.replica_id}:{m.tracker.state}(seq {m.applied_seq})"
                for m in group.members
            ]
            print(f"  group primary=r{group.primary_id}  " + "  ".join(states))
    finally:
        client.close()


if __name__ == "__main__":
    main()
