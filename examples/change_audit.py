#!/usr/bin/env python
"""Change auditing with the :mod:`repro.apps.audit` application.

The administrator scenario of §1, end to end: a "software update" touches
files scattered across the namespace; the auditor finds them with one
multi-dimensional range query, breaks the findings down by directory and
owner, and quantifies the advantage over walking a conventional directory
tree.

Run with:  python examples/change_audit.py
"""

from __future__ import annotations

import numpy as np

from repro import SmartStore, SmartStoreConfig
from repro.apps.audit import ChangeAuditor
from repro.eval.reporting import format_seconds, format_table
from repro.metadata.file_metadata import FileMetadata
from repro.traces import hp_trace

UPDATE_START = 50_000.0
UPDATE_END = 52_000.0


def simulate_update(files, n: int = 150, seed: int = 13):
    """A software update: files rewritten across system and user directories."""
    rng = np.random.default_rng(seed)
    touched = []
    roots = ["/usr/lib", "/etc", "/opt/app", "/home/alice/.cache", "/var/lib/app"]
    for i in range(n):
        size = float(rng.lognormal(np.log(64 * 1024), 0.5))
        touched.append(
            FileMetadata(
                path=f"{roots[i % len(roots)]}/component{i // len(roots):03d}.so",
                attributes={
                    "size": size,
                    "ctime": float(rng.uniform(0, UPDATE_START)),
                    "mtime": float(rng.uniform(UPDATE_START, UPDATE_END)),
                    "atime": float(rng.uniform(UPDATE_START, UPDATE_END)),
                    "read_bytes": size * float(rng.uniform(0.2, 1.0)),
                    "write_bytes": size * float(rng.uniform(0.8, 1.2)),
                    "access_count": float(rng.integers(1, 5)),
                    "owner": 0.0,  # root performed the update
                },
            )
        )
    return files + touched


def main() -> None:
    print("Generating the synthetic HP trace and simulating a software update ...")
    population = simulate_update(hp_trace(scale=0.4).file_metadata())
    print(f"  {len(population)} files after the update")

    store = SmartStore.build(population, SmartStoreConfig(num_units=40, seed=2))
    auditor = ChangeAuditor(store)

    print("\nAuditing: what was modified during the update window?")
    report = auditor.audit(UPDATE_START, UPDATE_END, min_write_bytes=1.0)
    print(
        format_table(
            ["measure", "value"],
            [
                ["files flagged", report.num_flagged],
                ["recall vs. brute force", f"{report.recall:.1%}"],
                ["query latency", format_seconds(report.latency)],
                ["messages", report.messages],
                ["semantic groups visited", report.groups_visited],
            ],
            title=f"Audit window [{UPDATE_START:.0f}s, {UPDATE_END:.0f}s]",
        )
    )
    print(
        format_table(
            ["top-level directory", "flagged files"],
            report.top_directories(8),
            title="Where the changes landed",
        )
    )
    print(
        format_table(
            ["owner id", "flagged files"],
            report.top_owners(5),
            title="Who made them",
        )
    )

    comparison = auditor.compare_with_directory_walk(UPDATE_START, UPDATE_END, min_write_bytes=1.0)
    print(
        format_table(
            ["measure", "value"],
            [
                ["SmartStore latency", format_seconds(comparison["smartstore_latency_s"])],
                ["directory-walk latency", format_seconds(comparison["directory_walk_latency_s"])],
                ["speed-up", f"{comparison['speedup']:,.0f}x"],
                ["result agreement", f"{comparison['result_agreement']:.1%}"],
            ],
            title="Same audit on a conventional directory tree",
        )
    )


if __name__ == "__main__":
    main()
