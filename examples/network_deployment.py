#!/usr/bin/env python
"""The network front door: serve a deployment over TCP and dial it.

This walks ``repro.server`` end to end, inside one script:

1. **serve** — :func:`~repro.server.server.serve_spec` builds the
   deployment a :class:`~repro.api.spec.DeploymentSpec` declares and
   serves it on a loopback socket (the same code path as
   ``python -m repro serve``);
2. **dial** — ``connect("tcp://host:port")`` returns a
   :class:`~repro.server.remote.RemoteClient` that is a drop-in for the
   local client: same ``execute`` / ``pages`` / mutation surface, same
   ``Response`` envelope, and **byte-identical result fingerprints**;
3. **paginate and mutate over the wire** — opaque cursors and mutation
   receipts travel losslessly through the length-prefixed JSON frames;
4. **process-per-shard execution** — the same spec with
   ``execution="processes"`` runs one worker OS process per shard, so
   sharded scatter-gather escapes the GIL; answers stay identical.

Run with:  python examples/network_deployment.py
"""

from __future__ import annotations

from repro.api import DeploymentSpec, RequestOptions, connect
from repro.core.smartstore import SmartStoreConfig
from repro.server import serve_spec
from repro.service.cache import result_fingerprint
from repro.traces import msn_trace
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import RangeQuery


def main() -> None:
    files = msn_trace(scale=0.4, seed=29).file_metadata()
    config = SmartStoreConfig(num_units=8, seed=7, search_breadth=48)
    spec = DeploymentSpec(topology="sharded", store=config, shards=2)

    generator = QueryWorkloadGenerator(files, seed=17)
    queries = generator.range_queries(4) + generator.topk_queries(4, k=8)

    # ------------------------------------------- 1. local reference answers
    local = connect(spec, files)
    reference = [result_fingerprint(local.execute(q).result) for q in queries]
    local.close()

    # ------------------------------------------------- 2. serve + dial it
    server = serve_spec(spec, files)  # port 0 -> the OS picks a free port
    print(f"serving {server.client.topology} deployment at {server.address}")

    with connect(server.address) as remote:
        over_wire = [result_fingerprint(remote.execute(q).result) for q in queries]
        assert over_wire == reference, "wire serialization changed an answer!"
        print(f"{len(queries)} queries answered identically over TCP")

        # -------------------------------------- 3. pagination + a mutation
        scan = RangeQuery(("size",), (0.0,), (1e15,))
        full = remote.execute(scan)
        paged = []
        for page in remote.pages(scan, page_size=50):
            paged.append(len(page.files))
        assert sum(paged) == len(full.result.files)
        print(f"paginated scan: {sum(paged)} files in {len(paged)} pages")

        receipt = remote.delete(files[7]).receipt
        print(f"remote delete receipted: seq={receipt.seq} known={receipt.known}")

        network = remote.stats()["service"]["telemetry"]["network"]
        print(
            f"server telemetry: {network['requests_served']} requests, "
            f"{network['bytes_in']}B in / {network['bytes_out']}B out"
        )
    server.close()

    # ------------------------------- 4. one worker OS process per shard
    procs = serve_spec(
        DeploymentSpec(
            topology="sharded", store=config, shards=2, execution="processes"
        ),
        files,
    )
    print(f"\nprocess-per-shard deployment at {procs.address}")
    with connect(procs.address) as remote:
        assert [
            result_fingerprint(remote.execute(q).result) for q in queries
        ] == reference
        print("worker processes answer byte-identically too")
    procs.close()


if __name__ == "__main__":
    main()
