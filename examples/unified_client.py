#!/usr/bin/env python
"""The unified client API: one front door for every deployment shape.

This walks ``repro.api`` end to end:

1. declare a deployment as data — a :class:`~repro.api.spec.DeploymentSpec`
   that round-trips through JSON (the same document the CLI's
   ``client-bench --spec`` loads) — and ``connect()`` it; the identical
   client code then runs against a plain store, a sharded router and a
   sharded+replicated deployment;
2. carry :class:`~repro.api.options.RequestOptions` with the requests:
   a cooperative **deadline** (partial results, expiry visible in the
   service telemetry), a **consistency** preference, and **pagination**;
3. page through a range result with an opaque cursor while mutations land
   concurrently — the concatenated pages still equal the first
   execution's result, because the cursor pins its snapshot;
4. print the uniform response envelope's attribution and the service
   stats that no longer special-case any layer.

Run with:  python examples/unified_client.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.api import DeploymentSpec, RequestOptions, connect, load_spec, save_spec
from repro.core.smartstore import SmartStoreConfig
from repro.service.cache import result_fingerprint
from repro.traces import msn_trace
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import RangeQuery


def main() -> None:
    files = msn_trace(scale=0.4, seed=29).file_metadata()
    config = SmartStoreConfig(num_units=8, seed=7, search_breadth=48)
    workdir = Path(tempfile.mkdtemp(prefix="repro-client-"))

    # -------------------------------------------------- 1. declarative specs
    specs = {
        "plain": DeploymentSpec(topology="plain", store=config),
        "sharded": DeploymentSpec(topology="sharded", store=config, shards=2),
        "sharded_replicated": DeploymentSpec(
            topology="sharded_replicated", store=config, shards=2, replicas=1
        ),
    }
    spec_path = workdir / "deployment.json"
    save_spec(specs["sharded_replicated"], spec_path)
    print(f"spec round-trips through JSON ({spec_path}):")
    print(json.dumps(load_spec(spec_path).to_dict(), indent=2)[:300], "...\n")

    generator = QueryWorkloadGenerator(files, seed=17)
    queries = (
        generator.point_queries(5, existing_fraction=0.8)
        + generator.range_queries(5, distribution="zipf")
        + generator.topk_queries(5, k=8, distribution="zipf")
    )

    # One client surface, three topologies, identical payloads.
    fingerprints = {}
    for name, spec in specs.items():
        with connect(spec, files) as client:
            fingerprints[name] = [
                result_fingerprint(client.execute(q).result) for q in queries
            ]
            print(f"{name:>20}: {client.execute(queries[0]).attribution}")
    assert fingerprints["plain"] == fingerprints["sharded"]
    assert fingerprints["plain"] == fingerprints["sharded_replicated"]
    print("all three topologies answer byte-identically through one Client\n")

    # ------------------------------------- 2 + 3. options: deadline & cursor
    wide = RangeQuery(("size",), (0.0,), (1e12,))
    with connect(specs["sharded_replicated"], files) as client:
        # Deadline: an impossible budget comes back partial, not wrong.
        partial = client.execute(wide, RequestOptions(deadline_s=0.0))
        print(
            f"deadline 0s: complete={partial.complete} "
            f"expired={partial.deadline_expired} files={len(partial.files)}"
        )
        print(
            "expiries in telemetry:",
            client.service.telemetry.deadline_expired,
        )

        # Consistency: relaxed reads on a caught-up deployment.
        relaxed = client.execute(wide, RequestOptions(consistency="any_replica"))
        print(f"any_replica read served {len(relaxed.files)} files\n")

        # Pagination under concurrent mutations: the cursor pins the
        # snapshot of its first page.
        reference = client.execute(wide)
        page = client.execute(wide, RequestOptions(page_size=40))
        collected = list(page.page.files)
        mutations = generator.mutation_stream(6, 4, 2)
        for kind, file in mutations:  # land between page fetches
            getattr(client, kind)(file)
        pages = 1
        while page.cursor is not None:
            page = client.execute(wide, RequestOptions(cursor=page.cursor))
            collected.extend(page.page.files)
            pages += 1
        assert [f.file_id for f in collected] == [
            f.file_id for f in reference.files
        ], "page concatenation must equal the unpaginated result"
        print(
            f"{pages} pages under {len(mutations)} concurrent mutations "
            f"concatenate to the pinned result ({len(collected)} files)"
        )
        live = client.execute(wide)
        print(
            "live result moved on meanwhile:",
            result_fingerprint(live.result) != result_fingerprint(reference.result),
        )

        # ------------------------------------------ 4. uniform stats surface
        stats = client.stats()
        print("\nuniform stats document keys:", sorted(stats))
        print("service totals:", stats["service"]["telemetry"]["total_requests"])


if __name__ == "__main__":
    main()
