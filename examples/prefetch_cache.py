#!/usr/bin/env python
"""Semantic-aware caching and prefetching (§1.1).

When a file is accessed, SmartStore can run a top-k query over its metadata
attributes to find its most correlated files and prefetch them before they
are requested.  The script replays a project-locality workload (bursts of
accesses within one project at a time — the pattern the paper's motivating
studies observe) against two caches of identical capacity:

* a plain LRU cache (temporal locality only), and
* the semantic prefetching cache built on SmartStore top-k queries.

Run with:  python examples/prefetch_cache.py
"""

from __future__ import annotations

import numpy as np

from repro import SmartStore, SmartStoreConfig
from repro.apps.caching import LRUCache, SemanticPrefetchCache
from repro.eval.reporting import format_table
from repro.traces import msn_trace


def project_burst_workload(files, n_bursts: int = 40, burst_len: int = 12, seed: int = 3):
    """Bursts of accesses to files of a single project, project after project."""
    rng = np.random.default_rng(seed)
    by_project = {}
    for f in files:
        by_project.setdefault(f.extra.get("project", 0), []).append(f)
    projects = list(by_project)
    workload = []
    for _ in range(n_bursts):
        members = by_project[projects[int(rng.integers(len(projects)))]]
        picks = rng.choice(len(members), size=min(burst_len, len(members)), replace=False)
        workload.extend(members[i] for i in picks)
    return workload


def main() -> None:
    trace = msn_trace(scale=0.6)
    files = trace.file_metadata()
    store = SmartStore.build(files, SmartStoreConfig(num_units=40, seed=5))
    workload = project_burst_workload(files)
    capacity = 96
    print(f"{len(files)} files, {len(workload)} accesses, cache capacity {capacity} entries")

    plain = LRUCache(capacity)
    for f in workload:
        plain.access(f.file_id)

    semantic = SemanticPrefetchCache(
        store, capacity, prefetch_k=8, attributes=("size", "mtime", "owner")
    )
    semantic.access_many(workload)

    rows = [
        ["plain LRU", f"{plain.stats.hit_rate * 100:.1f}%", "-", "-"],
        [
            "semantic prefetching (top-8)",
            f"{semantic.stats.hit_rate * 100:.1f}%",
            semantic.stats.prefetches,
            f"{semantic.stats.prefetch_accuracy * 100:.1f}%",
        ],
    ]
    print()
    print(
        format_table(
            ["cache", "hit rate", "prefetches issued", "prefetch accuracy"],
            rows,
            title="Semantic-aware caching vs. plain LRU on a project-locality workload",
        )
    )
    print(
        f"\nPrefetch queries consumed {semantic.query_latency * 1e3:.1f} ms of simulated "
        "query latency in total — the price of the extra hits."
    )


if __name__ == "__main__":
    main()
