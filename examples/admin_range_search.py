#!/usr/bin/env python
"""Administrator scenario from the paper's introduction (§1).

"After installing or updating software, a system administrator may hope to
track and find the changed files, which exist in both system and user
directories, to ward off malicious operations."

Namespace locality does not help here (the affected files are scattered
across directories), but their metadata is strongly correlated: they were
all modified inside the update window and written with similar volumes.
The script compares three ways of answering the question over the same
population:

* SmartStore range query (semantic groups bound the search);
* the centralised non-semantic R-tree baseline;
* the per-attribute B+-tree DBMS baseline.

Run with:  python examples/admin_range_search.py
"""

from __future__ import annotations

import numpy as np

from repro import SmartStore, SmartStoreConfig
from repro.baselines import DBMSBaseline, RTreeBaseline
from repro.eval.reporting import format_seconds, format_table
from repro.metadata.file_metadata import FileMetadata
from repro.traces import hp_trace
from repro.workloads.types import RangeQuery


def inject_update_burst(files, start: float, n: int = 120, seed: int = 5):
    """Simulate a software update touching files all over the namespace."""
    rng = np.random.default_rng(seed)
    updated = []
    directories = ["/usr/lib", "/etc", "/home/alice/.config", "/opt/app", "/var/lib"]
    for i in range(n):
        size = float(rng.lognormal(np.log(96 * 1024), 0.4))
        mtime = start + float(rng.uniform(0, 1500.0))
        updated.append(
            FileMetadata(
                path=f"{directories[i % len(directories)]}/pkg-{i:04d}.so",
                attributes={
                    "size": size,
                    "ctime": mtime - 10.0,
                    "mtime": mtime,
                    "atime": mtime + 5.0,
                    "read_bytes": size * 0.2,
                    "write_bytes": size,
                    "access_count": 2.0,
                    "owner": 0.0,
                },
                extra={"update_burst": True},
            )
        )
    return list(files) + updated, updated


def main() -> None:
    trace = hp_trace(scale=0.5)
    base_files = trace.file_metadata()
    update_start = 18 * 3600.0
    files, updated = inject_update_burst(base_files, update_start)
    print(f"Population: {len(files)} files ({len(updated)} touched by the update burst)")

    query = RangeQuery(
        attributes=("mtime", "write_bytes"),
        lower=(update_start, 16 * 1024.0),
        upper=(update_start + 1600.0, 4 * 1024 * 1024.0),
    )
    print("Query: files modified during the update window with 16KB-4MB written")

    store = SmartStore.build(files, SmartStoreConfig(num_units=60, seed=2))
    rtree = RTreeBaseline(files)
    dbms = DBMSBaseline(files)

    truth = {f.file_id for f in files if f.matches_ranges(query.attributes, query.lower, query.upper)}
    rows = []
    for name, system in (("SmartStore", store), ("R-tree baseline", rtree), ("DBMS baseline", dbms)):
        result = system.execute(query)
        found = {f.file_id for f in result.files}
        rows.append(
            [
                name,
                len(result.files),
                f"{100 * len(found & truth) / max(1, len(truth)):.1f}%",
                format_seconds(result.latency),
                result.metrics.messages,
            ]
        )
    print()
    print(
        format_table(
            ["system", "files returned", "recall", "simulated latency", "messages"],
            rows,
            title="Tracking the files changed by a software update",
        )
    )
    smart_result = store.execute(query)
    print(
        f"\nSmartStore bounded the search to {smart_result.groups_visited} semantic group(s) "
        f"out of {len(store.tree.first_level_groups())} "
        f"({smart_result.hops} hop(s)); the update burst's files were aggregated together "
        "because their modification times and write volumes are strongly correlated."
    )


if __name__ == "__main__":
    main()
