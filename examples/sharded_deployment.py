#!/usr/bin/env python
"""Horizontal sharding: a corpus split across four SmartStore deployments.

This walks the sharded serving stack end to end:

1. split the MSN corpus into 4 semantic shards (popularity-weighted
   quantile slices of the principal LSI component) behind a
   :class:`~repro.shard.router.ShardRouter`, each shard with its own
   write-ahead log;
2. show that scatter-gather point/range/top-k answers are
   fingerprint-identical to an unsharded deployment of the same total
   size — including while a mutation stream is staged in flight, and
   again after every shard's compactor drained;
3. print the router's pruning statistics (how many shard contacts the
   filename Bloom filters, bounding boxes and the shared top-k MaxD
   threshold avoided) and the per-shard busy times behind the
   scatter-gather throughput model;
4. run the concurrent :class:`QueryService` directly over the router —
   batching, result caching (per-shard cache epochs) and telemetry work
   unchanged.

Run with:  python examples/sharded_deployment.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import QueryService, ServiceConfig, SmartStore, SmartStoreConfig
from repro.ingest.pipeline import IngestPipeline
from repro.service.cache import result_fingerprint
from repro.api import DeploymentSpec, connect
from repro.traces import msn_trace
from repro.workloads.generator import QueryWorkloadGenerator


def probe(target, queries):
    return [result_fingerprint(target.execute(q)) for q in queries]


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-shard-"))
    files = msn_trace(scale=0.5, seed=29).file_metadata()
    config = SmartStoreConfig(num_units=16, seed=7, search_breadth=64)

    print(f"Corpus: {len(files)} files; building 1 baseline + 4 shards ...")
    baseline = SmartStore.build(files, config)
    baseline_pipeline = IngestPipeline(baseline)
    client = connect(
        DeploymentSpec(
            topology="sharded", store=config, shards=4, wal_dir=str(workdir)
        ),
        files,
    )
    router = client.store  # the ShardRouter behind the unified client
    print(f"  {router!r}")
    print(f"  files per shard: {router.stats()['files_per_shard']}")

    generator = QueryWorkloadGenerator(files, seed=13)
    queries = (
        generator.point_queries(6, existing_fraction=0.8)
        + generator.range_queries(6, distribution="zipf")
        + generator.topk_queries(6, k=8, distribution="zipf")
    )

    assert probe(router, queries) == probe(baseline, queries)
    print("Scatter-gather answers identical to the unsharded baseline: yes")

    print("Staging 45 mutations through both write paths ...")
    for kind, file in generator.mutation_stream(24, 14, 7):
        getattr(router, kind)(file)
        getattr(baseline_pipeline, kind)(file)
    assert probe(router, queries) == probe(baseline, queries)
    print("  identical with mutations in flight: yes")

    router.compactor.drain()
    baseline_pipeline.compactor.drain()
    assert probe(router, queries) == probe(baseline, queries)
    print("  identical after per-shard compaction drain: yes")

    stats = router.stats()
    contacted, pruned = stats["shards_contacted"], stats["shards_pruned"]
    print(
        f"Router pruning: {pruned}/{contacted + pruned} shard contacts avoided "
        f"(Bloom summaries, bounding boxes, shared MaxD)"
    )
    busy = stats["shard_busy_seconds"]
    print(
        "Per-shard simulated busy seconds: "
        + ", ".join(f"{b * 1e3:.1f}ms" for b in busy)
        + f"  (busiest shard bounds throughput: {max(busy) * 1e3:.1f}ms)"
    )

    print("Serving the same workload through QueryService over the router ...")
    with QueryService(router, ServiceConfig(max_workers=4, batch_window=8)) as service:
        results = service.execute_many(queries * 3)
        assert [result_fingerprint(r) for r in results] == probe(baseline, queries) * 3
        print(f"  cache: {service.cache!r}")
    client.close()
    print(f"Shard WALs under {workdir} (one per shard): "
          f"{sorted(p.name for p in workdir.glob('shard-*.wal'))}")


if __name__ == "__main__":
    main()
