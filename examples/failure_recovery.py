#!/usr/bin/env python
"""Reliability: storage-unit crashes, root failover and degraded queries (§4.3).

The decentralised design matters precisely when servers fail.  This example
builds a deployment, then:

1. crashes a random 10 % of the storage units and reports availability —
   how much of the file population is still reachable, which index units
   lost their host, and whether the root is still reachable through its
   multi-mapped replicas;
2. crashes the unit hosting the root's primary copy and performs the
   failover to a surviving replica, showing the message cost;
3. measures how complex-query recall degrades as more units go down, and
   recovers everything at the end.

Run with:  python examples/failure_recovery.py
"""

from __future__ import annotations

from repro import SmartStore, SmartStoreConfig
from repro.cluster.failures import FailureInjector
from repro.eval.reporting import format_table
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.traces import msn_trace
from repro.workloads.generator import QueryWorkloadGenerator

NUM_UNITS = 40


def main() -> None:
    print("Building a SmartStore deployment over the synthetic MSN trace ...")
    files = msn_trace(scale=0.4).file_metadata()
    store = SmartStore.build(files, SmartStoreConfig(num_units=NUM_UNITS, seed=21))
    injector = FailureInjector(store, seed=5)
    generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=9)
    queries = generator.mixed_complex_queries(25, 25, distribution="zipf", k=8)
    print(f"  {len(files)} files on {NUM_UNITS} storage units; "
          f"root replicas on units {store.tree.root.replica_hosts}")

    # 1. Crash 10% of the units.
    crashed = injector.crash_random_units(max(NUM_UNITS // 10, 1))
    report = injector.availability_report()
    print(
        format_table(
            ["measure", "value"],
            [
                ["crashed units", f"{sorted(crashed)}"],
                ["file availability", f"{report.file_availability:.1%}"],
                ["root reachable", report.root_reachable],
                ["index units that lost their host", report.index_units_lost_host],
                ["... of which immediately re-hostable", report.index_units_rehostable],
                ["orphaned groups (all replicas down)", report.orphaned_groups],
            ],
            title="Availability after crashing 10% of the storage units",
        )
    )

    # 2. Kill the root's primary host and fail over to a replica (§4.3).
    primary = store.tree.root.hosted_on
    print(f"\nCrashing the root's primary host (unit {primary}) ...")
    injector.crash_unit(primary)
    failover = injector.root_failover()
    print(f"  failover performed : {failover.failed_over}")
    print(f"  new primary host   : {failover.new_host}")
    print(f"  messages spent     : {failover.messages}")
    print(f"  root reachable     : {injector.root_reachable()}")

    # 3. Recall degradation as more units fail.
    rows = []
    injector.recover_all()
    for fraction in (0.0, 0.1, 0.25, 0.5):
        injector.recover_all()
        count = int(NUM_UNITS * fraction)
        if count:
            injector.crash_random_units(count)
        availability = injector.availability_report().file_availability
        recall_value = injector.degraded_recall(queries)
        rows.append(
            [f"{fraction:.0%}", count, f"{availability:.1%}", f"{recall_value:.1%}"]
        )
    print(
        format_table(
            ["units crashed", "#", "file availability", "mean complex-query recall"],
            rows,
            title="Graceful degradation under increasing failures",
        )
    )

    injector.recover_all()
    final = injector.availability_report()
    print(f"\nAfter recovery: availability {final.file_availability:.0%}, "
          f"root reachable: {final.root_reachable}")


if __name__ == "__main__":
    main()
