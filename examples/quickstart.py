#!/usr/bin/env python
"""Quickstart: build a SmartStore deployment and run all three query types.

This walks through the whole public API in one sitting:

1. generate a synthetic MSN-profile trace (stand-in for the real trace);
2. build a SmartStore deployment over its file metadata (60 storage units,
   the paper's prototype size);
3. run a filename point query, a multi-attribute range query and a top-k
   query, printing the results and the per-query cost accounting;
4. insert a new file and show that versioned queries see it immediately.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SmartStore, SmartStoreConfig, PointQuery, RangeQuery, TopKQuery
from repro.eval.reporting import format_bytes, format_seconds
from repro.traces import msn_trace
from repro.metadata.file_metadata import FileMetadata


def describe(result, label: str) -> None:
    print(f"\n== {label} ==")
    print(f"  results           : {len(result.files)} file(s)")
    print(f"  simulated latency : {format_seconds(result.latency)}")
    print(f"  groups visited    : {result.groups_visited} (hops: {result.hops})")
    print(f"  messages          : {result.metrics.messages}")
    for f in result.files[:5]:
        print(f"    - {f.path}  (size={format_bytes(f.attributes['size'])}, "
              f"mtime={f.attributes['mtime']:.0f}s)")
    if len(result.files) > 5:
        print(f"    ... and {len(result.files) - 5} more")


def main() -> None:
    print("Generating the synthetic MSN trace ...")
    trace = msn_trace(scale=0.6)
    files = trace.file_metadata()
    print(f"  {len(files)} files, {len(trace.records)} I/O records")

    print("Building SmartStore (60 storage units) ...")
    store = SmartStore.build(files, SmartStoreConfig(num_units=60, seed=7))
    stats = store.stats()
    print(f"  semantic R-tree: height {stats['tree_height']}, "
          f"{stats['num_index_units']} index units, "
          f"{stats['first_level_groups']} first-level groups")
    print(f"  index state: {format_bytes(stats['index_space_bytes'])} across "
          f"{stats['num_units']} units")

    # 1. Filename point query — routed over the Bloom-filter hierarchy.
    target = files[0]
    describe(store.execute(PointQuery(target.filename)), f"point query for {target.filename!r}")

    # 2. Range query — "files modified in the first hour that read 100KB-10MB".
    describe(
        store.execute(
            RangeQuery(
                ("mtime", "read_bytes"),
                (0.0, 100 * 1024),
                (3600.0, 10 * 1024 * 1024),
            )
        ),
        "range query (mtime in first hour, read volume 100KB-10MB)",
    )

    # 3. Top-k query — "8 files closest to this size / modification time".
    describe(
        store.execute(TopKQuery(("size", "mtime"), (256 * 1024, 2 * 3600.0), 8)),
        "top-8 query (size ~256KB, mtime ~2h)",
    )

    # 4. Insert new metadata; versioned queries see it before reconfiguration.
    new_file = FileMetadata(
        path="/msn/new/incoming-report.dat",
        attributes={
            "size": 300e6, "ctime": 5.5 * 3600, "mtime": 5.6 * 3600, "atime": 5.7 * 3600,
            "read_bytes": 1e6, "write_bytes": 300e6, "access_count": 1.0, "owner": 7.0,
        },
    )
    group = store.insert_file(new_file)
    found = store.execute(PointQuery(new_file.filename)).found
    print(f"\nInserted {new_file.path!r} into group {group}; "
          f"visible to versioned queries: {found}")
    applied = store.reconfigure()
    print(f"Reconfiguration applied {applied} pending change(s); "
          f"total files now {store.cluster.total_files()}")


if __name__ == "__main__":
    main()
