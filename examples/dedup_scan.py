#!/usr/bin/env python
"""De-duplication candidate detection (§1.1).

Duplicate copies of a file carry near-identical multi-dimensional attributes
(size, creation time, I/O volumes), so SmartStore's semantic grouping places
them in the same or adjacent groups with high probability.  Instead of
comparing every file against every other file, the detector only compares
files that share a semantic group — the comparison count collapses while the
duplicates are still found.

Run with:  python examples/dedup_scan.py
"""

from __future__ import annotations

from repro import SmartStore, SmartStoreConfig
from repro.apps.dedup import DedupDetector
from repro.eval.reporting import format_table
from repro.traces import eecs_trace


def main() -> None:
    trace = eecs_trace(scale=0.8)
    base_files = trace.file_metadata()
    files = DedupDetector.inject_duplicates(base_files, fraction=0.06, seed=11)
    n_dupes = len(files) - len(base_files)
    print(f"{len(files)} files in the population, {n_dupes} injected duplicate copies")

    store = SmartStore.build(files, SmartStoreConfig(num_units=60, seed=9))
    detector = DedupDetector(attributes=("size", "ctime"), tolerance=1e-9)

    brute = detector.brute_force(files)
    smart = detector.with_smartstore(store)

    rows = [
        [
            "brute force (whole system)",
            brute.comparisons,
            brute.num_candidates,
            "-" if brute.precision is None else f"{brute.precision * 100:.0f}%",
        ],
        [
            "SmartStore semantic groups",
            smart.comparisons,
            smart.num_candidates,
            "-" if smart.precision is None else f"{smart.precision * 100:.0f}%",
            ],
    ]
    print()
    print(
        format_table(
            ["strategy", "pairwise comparisons", "candidate pairs", "precision"],
            rows,
            title="De-duplication candidate detection",
        )
    )
    saved = 1.0 - smart.comparisons / max(1, brute.comparisons)
    coverage = smart.num_candidates / max(1, brute.num_candidates)
    print(
        f"\nGroup-bounded scanning removed {saved * 100:.1f}% of the pairwise comparisons while "
        f"recovering {coverage * 100:.1f}% of the candidate pairs across "
        f"{smart.groups_examined} semantic groups."
    )


if __name__ == "__main__":
    main()
