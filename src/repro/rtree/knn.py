"""Best-first branch-and-bound k-nearest-neighbour search over an R-tree.

Top-k queries (§3.3.2) identify the ``k`` files whose attribute values are
closest to the query point.  Over an R-tree this is the classical
best-first search: a priority queue ordered by MINDIST to the query point
interleaves nodes and data records; once ``k`` records have been popped the
current worst distance (the paper's ``MaxD``) prunes every node whose
MINDIST exceeds it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Sequence, Tuple

import numpy as np

from repro.rtree.rtree import RTree, RTreeEntry, RTreeNode

__all__ = ["knn_search"]


def knn_search(
    tree: RTree,
    point: Sequence[float],
    k: int,
) -> List[Tuple[float, RTreeEntry]]:
    """Return the ``k`` records nearest to ``point`` as ``(distance, entry)`` pairs.

    Results are sorted by ascending distance.  Fewer than ``k`` pairs are
    returned when the tree holds fewer records.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    query = np.asarray(point, dtype=np.float64)
    if query.shape != (tree.dimension,):
        raise ValueError(f"query point has shape {query.shape}, expected ({tree.dimension},)")

    results: List[Tuple[float, RTreeEntry]] = []
    counter = itertools.count()  # tie-breaker: heap items must never compare objects
    heap: List[Tuple[float, int, object]] = []

    root = tree.root
    if root.mbr is None:
        return results
    heapq.heappush(heap, (root.mbr.min_distance(query), next(counter), root))

    while heap:
        dist, _, item = heapq.heappop(heap)
        if len(results) >= k and dist > results[-1][0]:
            break  # every remaining item is at least this far away
        if isinstance(item, RTreeEntry):
            results.append((dist, item))
            results.sort(key=lambda pair: pair[0])
            if len(results) > k:
                results = results[:k]
            continue
        node: RTreeNode = item
        tree._touch()
        if node.is_leaf:
            for entry in node.entries:
                d = float(np.linalg.norm(entry.point - query))
                heapq.heappush(heap, (d, next(counter), entry))
        else:
            for child in node.children:
                if child.mbr is None:
                    continue
                heapq.heappush(heap, (child.mbr.min_distance(query), next(counter), child))

    return results[:k]
