"""Minimum Bounding Rectangles (MBRs).

An MBR is the minimal axis-aligned hyper-rectangle enclosing a set of points
in the D-dimensional attribute space.  Every node of a (semantic) R-tree
advertises the MBR of everything reachable through it, which is what lets
range and top-k queries prune entire subtrees (§2.2, §3.3).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = ["MBR"]


class MBR:
    """An axis-aligned minimum bounding rectangle.

    Instances are immutable: every combining operation returns a new MBR.
    ``lower`` and ``upper`` are float arrays of equal length (the attribute
    dimensionality), with ``lower <= upper`` element-wise.
    """

    __slots__ = ("lower", "upper")

    def __init__(self, lower: Sequence[float], upper: Sequence[float]) -> None:
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        if lower.ndim != 1 or upper.ndim != 1 or lower.shape != upper.shape:
            raise ValueError(
                f"lower/upper must be 1-D arrays of equal length, got shapes "
                f"{lower.shape} and {upper.shape}"
            )
        if lower.size == 0:
            raise ValueError("an MBR must have at least one dimension")
        if np.any(lower > upper):
            raise ValueError(f"lower bound exceeds upper bound: {lower} > {upper}")
        self.lower = lower
        self.upper = upper
        self.lower.setflags(write=False)
        self.upper.setflags(write=False)

    # ------------------------------------------------------------------ constructors
    @classmethod
    def from_point(cls, point: Sequence[float]) -> "MBR":
        """Degenerate MBR covering a single point."""
        point = np.asarray(point, dtype=np.float64)
        return cls(point, point.copy())

    @classmethod
    def from_points(cls, points: np.ndarray) -> "MBR":
        """Tight MBR of an ``(n, D)`` point matrix."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points[None, :]
        if points.size == 0:
            raise ValueError("cannot build an MBR from an empty point set")
        return cls(points.min(axis=0), points.max(axis=0))

    @classmethod
    def union_of(cls, mbrs: Iterable["MBR"]) -> "MBR":
        """Smallest MBR containing every MBR in ``mbrs`` (must be non-empty)."""
        mbrs = list(mbrs)
        if not mbrs:
            raise ValueError("cannot compute the union of zero MBRs")
        lower = np.minimum.reduce([m.lower for m in mbrs])
        upper = np.maximum.reduce([m.upper for m in mbrs])
        return cls(lower, upper)

    # ------------------------------------------------------------------ predicates
    @property
    def dimension(self) -> int:
        return self.lower.shape[0]

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when ``point`` lies inside (or on the boundary of) this MBR."""
        point = np.asarray(point, dtype=np.float64)
        return bool(np.all(point >= self.lower) and np.all(point <= self.upper))

    def contains(self, other: "MBR") -> bool:
        """True when ``other`` lies entirely within this MBR."""
        return bool(np.all(other.lower >= self.lower) and np.all(other.upper <= self.upper))

    def intersects(self, other: "MBR") -> bool:
        """True when the two rectangles share at least one point."""
        return bool(np.all(self.lower <= other.upper) and np.all(other.lower <= self.upper))

    # ------------------------------------------------------------------ measures
    def area(self) -> float:
        """Hyper-volume of the rectangle (product of side lengths)."""
        return float(np.prod(self.upper - self.lower))

    def margin(self) -> float:
        """Sum of side lengths (the "perimeter" measure used by some splits)."""
        return float(np.sum(self.upper - self.lower))

    def union(self, other: "MBR") -> "MBR":
        """Smallest MBR covering both rectangles."""
        return MBR(np.minimum(self.lower, other.lower), np.maximum(self.upper, other.upper))

    def intersection_area(self, other: "MBR") -> float:
        """Hyper-volume of the overlap region (0 when disjoint)."""
        overlap = np.minimum(self.upper, other.upper) - np.maximum(self.lower, other.lower)
        if np.any(overlap < 0):
            return 0.0
        return float(np.prod(overlap))

    def enlargement(self, other: "MBR") -> float:
        """Area increase needed for this MBR to also cover ``other``.

        This is the ChooseLeaf criterion of Guttman's insertion algorithm.
        """
        return self.union(other).area() - self.area()

    def extend_point(self, point: Sequence[float]) -> "MBR":
        """Smallest MBR covering this rectangle and ``point``."""
        point = np.asarray(point, dtype=np.float64)
        return MBR(np.minimum(self.lower, point), np.maximum(self.upper, point))

    def center(self) -> np.ndarray:
        """Geometric centre of the rectangle."""
        return (self.lower + self.upper) / 2.0

    def min_distance(self, point: Sequence[float]) -> float:
        """MINDIST: Euclidean distance from ``point`` to the nearest face.

        Zero when the point lies inside the rectangle.  This lower bound is
        what makes best-first k-NN search admissible.
        """
        point = np.asarray(point, dtype=np.float64)
        below = np.maximum(self.lower - point, 0.0)
        above = np.maximum(point - self.upper, 0.0)
        delta = np.maximum(below, above)
        return float(np.sqrt(np.sum(delta**2)))

    def max_distance(self, point: Sequence[float]) -> float:
        """Distance from ``point`` to the farthest corner of the rectangle."""
        point = np.asarray(point, dtype=np.float64)
        delta = np.maximum(np.abs(point - self.lower), np.abs(point - self.upper))
        return float(np.sqrt(np.sum(delta**2)))

    # ------------------------------------------------------------------ dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return bool(np.array_equal(self.lower, other.lower) and np.array_equal(self.upper, other.upper))

    def __hash__(self) -> int:
        return hash((self.lower.tobytes(), self.upper.tobytes()))

    def __repr__(self) -> str:
        lo = np.array2string(self.lower, precision=3, separator=",")
        hi = np.array2string(self.upper, precision=3, separator=",")
        return f"MBR(lower={lo}, upper={hi})"

    def as_tuple(self) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """Plain-tuple form, convenient for serialisation and tests."""
        return tuple(self.lower.tolist()), tuple(self.upper.tolist())
