"""A dynamic Guttman R-tree.

This is the substrate shared by the centralised non-semantic R-tree baseline
and by pieces of the semantic R-tree (node split/merge follow "the classical
algorithms in R-tree", §4.1).  The implementation follows Guttman's original
algorithms: ChooseLeaf by least enlargement, quadratic split, and deletion
with tree condensation and re-insertion.

Data records are ``(point, payload)`` pairs; internal nodes hold child
entries with their MBRs.  An optional ``access_counter`` callback is invoked
once per node visited, which is how the evaluation harness charges index
probes to the simulated cost model without entangling the data structure
with the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.rtree.mbr import MBR

__all__ = ["RTree", "RTreeNode", "RTreeEntry"]


@dataclass(eq=False)
class RTreeEntry:
    """A leaf-level data record: a point in attribute space plus a payload.

    Identity semantics (``eq=False``): two entries are the same only if they
    are the same object, which is what the split/delete bookkeeping relies
    on (comparing numpy points element-wise would be both slow and
    ambiguous).
    """

    point: np.ndarray
    payload: object

    def __post_init__(self) -> None:
        self.point = np.asarray(self.point, dtype=np.float64)

    def mbr(self) -> MBR:
        return MBR.from_point(self.point)


class RTreeNode:
    """One node of the R-tree.

    Leaf nodes hold :class:`RTreeEntry` records; internal nodes hold child
    :class:`RTreeNode` objects.  Every node caches the MBR of its contents.
    """

    __slots__ = ("is_leaf", "entries", "children", "mbr", "parent")

    def __init__(self, is_leaf: bool = True) -> None:
        self.is_leaf = is_leaf
        self.entries: List[RTreeEntry] = []
        self.children: List["RTreeNode"] = []
        self.mbr: Optional[MBR] = None
        self.parent: Optional["RTreeNode"] = None

    # ------------------------------------------------------------------ content
    def items(self) -> Sequence[object]:
        """The node's children (entries for leaves, nodes for internals)."""
        return self.entries if self.is_leaf else self.children

    def __len__(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)

    def recompute_mbr(self) -> None:
        """Refresh the cached MBR from the node's current contents."""
        if self.is_leaf:
            if not self.entries:
                self.mbr = None
            else:
                points = np.vstack([e.point for e in self.entries])
                self.mbr = MBR.from_points(points)
        else:
            child_mbrs = [c.mbr for c in self.children if c.mbr is not None]
            self.mbr = MBR.union_of(child_mbrs) if child_mbrs else None

    def add_child(self, child: "RTreeNode") -> None:
        self.children.append(child)
        child.parent = self


def _item_mbr(item: object) -> MBR:
    """MBR of either an entry or a node (used by the split heuristics)."""
    if isinstance(item, RTreeEntry):
        return item.mbr()
    return item.mbr  # type: ignore[union-attr]


class RTree:
    """Dynamic R-tree with Guttman insertion/deletion and window search.

    Parameters
    ----------
    dimension:
        Dimensionality of the indexed points.
    max_entries:
        Fan-out bound ``M``; nodes split when they exceed it.
    min_entries:
        Underflow bound ``m``; defaults to ``M // 2`` (the paper sets
        ``m <= M/2`` and tunes it per workload, §4.1).
    access_counter:
        Optional callable invoked once for every node visited by a search
        or update, used by the evaluation cost model.
    """

    def __init__(
        self,
        dimension: int,
        max_entries: int = 8,
        min_entries: Optional[int] = None,
        access_counter: Optional[Callable[[], None]] = None,
    ) -> None:
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        if max_entries < 2:
            raise ValueError(f"max_entries must be >= 2, got {max_entries}")
        if min_entries is None:
            min_entries = max(1, max_entries // 2)
        if not 1 <= min_entries <= max_entries // 2:
            raise ValueError(
                f"min_entries must satisfy 1 <= m <= M/2 (M={max_entries}), got {min_entries}"
            )
        self.dimension = dimension
        self.max_entries = max_entries
        self.min_entries = min_entries
        self.root = RTreeNode(is_leaf=True)
        self._size = 0
        self._access_counter = access_counter

    # ------------------------------------------------------------------ basic facts
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is just a leaf root)."""
        h = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def node_count(self) -> int:
        """Total number of nodes in the tree."""
        return sum(1 for _ in self.iter_nodes())

    def iter_nodes(self) -> Iterator[RTreeNode]:
        """Depth-first iterator over every node."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    def iter_entries(self) -> Iterator[RTreeEntry]:
        """Iterator over every stored data record."""
        for node in self.iter_nodes():
            if node.is_leaf:
                yield from node.entries

    def _touch(self, count: int = 1) -> None:
        if self._access_counter is not None:
            for _ in range(count):
                self._access_counter()

    # ------------------------------------------------------------------ insertion
    def insert(self, point: Sequence[float], payload: object) -> None:
        """Insert a data record at ``point`` carrying ``payload``."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.dimension,):
            raise ValueError(
                f"point has shape {point.shape}, expected ({self.dimension},)"
            )
        entry = RTreeEntry(point=point, payload=payload)
        leaf = self._choose_leaf(self.root, entry)
        leaf.entries.append(entry)
        self._adjust_upward(leaf)
        if len(leaf.entries) > self.max_entries:
            self._split_node(leaf)
        self._size += 1

    def bulk_load(self, points: np.ndarray, payloads: Sequence[object]) -> None:
        """Insert many records.

        A convenience wrapper over repeated :meth:`insert`; for the scales
        used in the evaluation (tens of thousands of records) the simple
        approach keeps the code obviously correct while remaining fast
        enough — the simulator charges costs per node access, not per
        wall-clock second.
        """
        points = np.asarray(points, dtype=np.float64)
        if len(points) != len(payloads):
            raise ValueError("points and payloads must have the same length")
        for point, payload in zip(points, payloads):
            self.insert(point, payload)

    def _choose_leaf(self, node: RTreeNode, entry: RTreeEntry) -> RTreeNode:
        self._touch()
        while not node.is_leaf:
            entry_mbr = entry.mbr()
            best_child = None
            best_key = None
            for child in node.children:
                enlargement = child.mbr.enlargement(entry_mbr) if child.mbr else 0.0
                area = child.mbr.area() if child.mbr else 0.0
                key = (enlargement, area)
                if best_key is None or key < best_key:
                    best_key = key
                    best_child = child
            node = best_child
            self._touch()
        return node

    def _adjust_upward(self, node: RTreeNode) -> None:
        while node is not None:
            node.recompute_mbr()
            node = node.parent

    # ------------------------------------------------------------------ splitting
    def _split_node(self, node: RTreeNode) -> None:
        """Quadratic split of an overflowing node, propagating upward."""
        items = list(node.items())
        seed_a, seed_b = self._pick_seeds(items)
        group_a: List[object] = [items[seed_a]]
        group_b: List[object] = [items[seed_b]]
        mbr_a = _item_mbr(items[seed_a])
        mbr_b = _item_mbr(items[seed_b])
        remaining = [it for i, it in enumerate(items) if i not in (seed_a, seed_b)]

        while remaining:
            # If one group needs every remaining item to reach the minimum, assign all.
            if len(group_a) + len(remaining) <= self.min_entries:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) <= self.min_entries:
                group_b.extend(remaining)
                remaining = []
                break
            item, cost_a, cost_b = self._pick_next(remaining, mbr_a, mbr_b)
            remaining = [x for x in remaining if x is not item]
            item_mbr = _item_mbr(item)
            if cost_a < cost_b or (cost_a == cost_b and len(group_a) <= len(group_b)):
                group_a.append(item)
                mbr_a = mbr_a.union(item_mbr)
            else:
                group_b.append(item)
                mbr_b = mbr_b.union(item_mbr)

        sibling = RTreeNode(is_leaf=node.is_leaf)
        if node.is_leaf:
            node.entries = list(group_a)  # type: ignore[arg-type]
            sibling.entries = list(group_b)  # type: ignore[arg-type]
        else:
            node.children = []
            for child in group_a:
                node.add_child(child)  # type: ignore[arg-type]
            for child in group_b:
                sibling.add_child(child)  # type: ignore[arg-type]
        node.recompute_mbr()
        sibling.recompute_mbr()

        parent = node.parent
        if parent is None:
            new_root = RTreeNode(is_leaf=False)
            new_root.add_child(node)
            new_root.add_child(sibling)
            new_root.recompute_mbr()
            self.root = new_root
        else:
            parent.add_child(sibling)
            self._adjust_upward(parent)
            if len(parent.children) > self.max_entries:
                self._split_node(parent)

    @staticmethod
    def _pick_seeds(items: Sequence[object]) -> Tuple[int, int]:
        """Quadratic seed picking: the pair wasting the most area together."""
        best_pair = (0, 1)
        best_waste = -np.inf
        mbrs = [_item_mbr(it) for it in items]
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                waste = mbrs[i].union(mbrs[j]).area() - mbrs[i].area() - mbrs[j].area()
                if waste > best_waste:
                    best_waste = waste
                    best_pair = (i, j)
        return best_pair

    @staticmethod
    def _pick_next(
        remaining: Sequence[object], mbr_a: MBR, mbr_b: MBR
    ) -> Tuple[object, float, float]:
        """Pick the item with the strongest preference for one of the groups."""
        best_item = None
        best_diff = -1.0
        best_costs = (0.0, 0.0)
        for item in remaining:
            m = _item_mbr(item)
            cost_a = mbr_a.enlargement(m)
            cost_b = mbr_b.enlargement(m)
            diff = abs(cost_a - cost_b)
            if diff > best_diff:
                best_diff = diff
                best_item = item
                best_costs = (cost_a, cost_b)
        return best_item, best_costs[0], best_costs[1]

    # ------------------------------------------------------------------ deletion
    def delete(self, point: Sequence[float], payload: object) -> bool:
        """Remove the record with this exact point and payload.

        Returns True when a record was removed.  Underflowing nodes are
        condensed: their surviving records are re-inserted, exactly as in
        Guttman's CondenseTree.
        """
        point = np.asarray(point, dtype=np.float64)
        leaf = self._find_leaf(self.root, point, payload)
        if leaf is None:
            return False
        leaf.entries = [
            e for e in leaf.entries if not (np.array_equal(e.point, point) and e.payload == payload)
        ]
        self._size -= 1
        self._condense(leaf)
        # Shrink the root if it became a lone-child internal node.
        while not self.root.is_leaf and len(self.root.children) == 1:
            self.root = self.root.children[0]
            self.root.parent = None
        return True

    def _find_leaf(self, node: RTreeNode, point: np.ndarray, payload: object) -> Optional[RTreeNode]:
        self._touch()
        if node.is_leaf:
            for e in node.entries:
                if np.array_equal(e.point, point) and e.payload == payload:
                    return node
            return None
        for child in node.children:
            if child.mbr is not None and child.mbr.contains_point(point):
                found = self._find_leaf(child, point, payload)
                if found is not None:
                    return found
        return None

    def _condense(self, node: RTreeNode) -> None:
        orphaned_entries: List[RTreeEntry] = []
        orphaned_nodes: List[RTreeNode] = []
        current = node
        while current.parent is not None:
            parent = current.parent
            if len(current) < self.min_entries:
                parent.children.remove(current)
                if current.is_leaf:
                    orphaned_entries.extend(current.entries)
                else:
                    orphaned_nodes.extend(current.children)
            else:
                current.recompute_mbr()
            current = parent
        self.root.recompute_mbr()

        for entry in orphaned_entries:
            self._size -= 1
            self.insert(entry.point, entry.payload)
        for orphan in orphaned_nodes:
            for entry in _collect_entries(orphan):
                self._size -= 1
                self.insert(entry.point, entry.payload)

    # ------------------------------------------------------------------ search
    def search_range(self, lower: Sequence[float], upper: Sequence[float]) -> List[RTreeEntry]:
        """All records whose point falls inside the query window."""
        window = MBR(lower, upper)
        results: List[RTreeEntry] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            self._touch()
            if node.mbr is None or not node.mbr.intersects(window):
                continue
            if node.is_leaf:
                for e in node.entries:
                    if window.contains_point(e.point):
                        results.append(e)
            else:
                stack.extend(node.children)
        return results

    def search_point(self, point: Sequence[float]) -> List[RTreeEntry]:
        """All records stored exactly at ``point``."""
        point = np.asarray(point, dtype=np.float64)
        return [e for e in self.search_range(point, point) if np.array_equal(e.point, point)]

    def count_in_range(self, lower: Sequence[float], upper: Sequence[float]) -> int:
        """Number of records inside the window (no materialisation)."""
        return len(self.search_range(lower, upper))


def _collect_entries(node: RTreeNode) -> List[RTreeEntry]:
    """All data records under ``node`` (used when re-inserting orphans)."""
    out: List[RTreeEntry] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            out.extend(current.entries)
        else:
            stack.extend(current.children)
    return out
