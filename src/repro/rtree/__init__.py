"""Generic R-tree substrate.

The semantic R-tree of SmartStore and the centralised non-semantic R-tree
baseline both rest on classical R-tree machinery (Guttman, SIGMOD'84):

* :class:`~repro.rtree.mbr.MBR` — minimum bounding rectangles with the
  usual geometric operations (union, intersection, enlargement, MINDIST).
* :class:`~repro.rtree.rtree.RTree` — dynamic insertion with ChooseLeaf and
  quadratic split, deletion with tree condensation, window (range) search.
* :func:`~repro.rtree.knn.knn_search` — best-first branch-and-bound k-NN
  over an :class:`RTree`, the building block of top-k queries.
"""

from repro.rtree.mbr import MBR
from repro.rtree.rtree import RTree, RTreeEntry, RTreeNode
from repro.rtree.knn import knn_search

__all__ = ["MBR", "RTree", "RTreeEntry", "RTreeNode", "knn_search"]
