"""Background compaction: draining staged mutations into the semantic R-tree.

The overlay gives queries read-your-writes, but staged entries cost every
query an extra probe and the version chains grow without bound.  The
:class:`Compactor` incrementally folds staged mutations into the primary
structures, one first-level group at a time:

1. the group's version chain is cleared (flushing subscribed result
   caches) and its ordered changes applied to the owning storage units —
   leaf MBRs, Bloom filters and file counts refreshed in one pass;
2. the group's overlay entries are discarded (the index now serves them);
3. a group grown *hot* (its file count far above the mean) is split into
   two semantically coherent halves (§4.1 node split), and the query
   engine's topology map refreshed;
4. the group's off-line replica is re-snapshotted and multicast to the
   other storage units — the same lazy-update accounting the paper charges,
   but scoped to the one group that changed instead of a full
   :meth:`~repro.core.offline.OfflineRouter.refresh_all`.

Which groups are due is decided by a :class:`CompactionPolicy`: a per-group
staged-count threshold, a total staged budget, an age bound (measured in
mutations staged since, so policies stay deterministic) and a skew factor
that drains groups absorbing a disproportionate share of the write stream.

The compactor can run inline (``run_once`` / ``drain``) or as a background
daemon thread (``start`` / ``stop``).  All entry points serialise on the
pipeline's mutation lock, so staging and compaction never interleave.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.cluster.metrics import Metrics
from repro.core.reconfig import split_group

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ingest.pipeline import IngestPipeline

__all__ = ["CompactionPolicy", "CompactionStats", "Compactor"]


@dataclass(frozen=True)
class CompactionPolicy:
    """When to drain staged mutations.

    ``max_staged_per_group``
        A group with at least this many staged mutations is due.
    ``max_staged_total``
        When the whole overlay holds at least this many staged mutations,
        every non-empty group is due (bounds total query overhead).
    ``max_age``
        A group whose oldest staged mutation is at least this many
        mutations old is due (bounds staleness under skewed traffic, in
        mutations rather than wall seconds so tests are deterministic).
    ``skew_factor``
        A group staging more than ``skew_factor`` times the mean staged
        count is due early — hot groups pay their compaction cost before
        they distort every query.  ``0`` disables the rule.
    ``hot_group_factor``
        After draining, a group whose file count exceeds this multiple of
        the mean group population is split (``0`` disables splitting).
    """

    max_staged_per_group: int = 64
    max_staged_total: int = 512
    max_age: int = 4096
    skew_factor: float = 4.0
    hot_group_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.max_staged_per_group < 1:
            raise ValueError("max_staged_per_group must be >= 1")
        if self.max_staged_total < 1:
            raise ValueError("max_staged_total must be >= 1")
        if self.max_age < 1:
            raise ValueError("max_age must be >= 1")
        if self.skew_factor < 0 or self.hot_group_factor < 0:
            raise ValueError("skew_factor and hot_group_factor must be >= 0")


@dataclass
class CompactionStats:
    """Counters for what compaction has done so far."""

    runs: int = 0
    group_compactions: int = 0
    changes_applied: int = 0
    group_splits: int = 0
    replica_refreshes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "runs": self.runs,
            "group_compactions": self.group_compactions,
            "changes_applied": self.changes_applied,
            "group_splits": self.group_splits,
            "replica_refreshes": self.replica_refreshes,
        }


class Compactor:
    """Incremental drain of a pipeline's staged mutations."""

    def __init__(
        self,
        pipeline: "IngestPipeline",
        policy: Optional[CompactionPolicy] = None,
        *,
        interval: float = 0.05,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.pipeline = pipeline
        self.policy = policy if policy is not None else CompactionPolicy()
        self.interval = interval
        self.stats = CompactionStats()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ policy
    def due_groups(self) -> List[int]:
        """Group ids the policy says should be drained now."""
        sizes = self.pipeline.overlay.group_sizes()
        if not sizes:
            return []
        total = sum(sizes.values())
        if total >= self.policy.max_staged_total:
            return sorted(sizes.keys())
        mean = total / len(sizes)
        due = []
        for gid, n in sizes.items():
            if n >= self.policy.max_staged_per_group:
                due.append(gid)
            elif self.policy.skew_factor and len(sizes) > 1 and n > self.policy.skew_factor * mean:
                due.append(gid)
            elif self.pipeline.overlay.group_age(gid) >= self.policy.max_age:
                due.append(gid)
        return sorted(due)

    # ------------------------------------------------------------------ draining
    def compact_group(self, group_id: int) -> int:
        """Drain one group's staged mutations into the primary structures.

        Returns the number of changes applied.  Safe to call for a group
        with nothing pending (no-op).
        """
        store = self.pipeline.store
        with self.pipeline.lock:
            changes = store.versioning.clear_group(group_id)
            applied = store.apply_changes(changes) if changes else 0
            store.overlay.discard_group(group_id)
            if not changes:
                return 0
            metrics = Metrics()
            group = store.engine.node_by_id(group_id)
            if group is not None and group.children:
                # A split already refreshed the whole replica set (the
                # first-level group list changed); refreshing again would
                # double-charge the multicast.
                if not self._maybe_split(group):
                    store.offline_router.refresh_group(
                        group, metrics, num_units=store.cluster.num_units
                    )
                self.stats.replica_refreshes += 1
            store.cluster.metrics.merge(metrics)
            # Anything cached against the half-applied state must go.
            store.versioning.touch()
            self.stats.group_compactions += 1
            self.stats.changes_applied += applied
            return applied

    def _maybe_split(self, group: Any) -> bool:
        """Split ``group`` if hot; returns True when a split happened."""
        if not self.policy.hot_group_factor:
            return False
        store = self.pipeline.store
        groups = store.tree.first_level_groups()
        if len(groups) < 1 or len(group.children) < 2:
            return False
        mean_files = sum(g.file_count for g in groups) / len(groups)
        if group.file_count <= self.policy.hot_group_factor * max(mean_files, 1.0):
            return False
        split_group(store.tree, group)
        # New index units exist: the engine's node map and the whole replica
        # set (the first-level group list changed) must follow.
        store.engine.refresh_topology()
        store.offline_router.refresh_all()
        self.stats.group_splits += 1
        return True

    def run_once(self) -> int:
        """Drain every group the policy marks as due; returns changes applied."""
        self.stats.runs += 1
        applied = 0
        for gid in self.due_groups():
            applied += self.compact_group(gid)
        return applied

    def drain(self) -> int:
        """Drain *everything* staged, regardless of policy thresholds."""
        self.stats.runs += 1
        applied = 0
        # Groups may gain entries while draining (concurrent writers); loop
        # until the overlay reports empty.
        while True:
            group_ids = self.pipeline.overlay.group_ids()
            if not group_ids:
                break
            for gid in group_ids:
                applied += self.compact_group(gid)
        return applied

    # ------------------------------------------------------------------ background worker
    def start(self) -> "Compactor":
        """Run the policy loop on a daemon thread until :meth:`stop`.

        Concurrency contract: draining restructures storage units and the
        semantic R-tree under the pipeline's mutation lock, which engine
        *reads* do not take.  Run the background thread only when
        concurrent readers are absent or tolerate transiently inconsistent
        answers; services that interleave reads and writes should instead
        let :class:`~repro.service.service.QueryService` drive compaction
        (``auto_compact``), which serialises it against query execution on
        the service's state lock, or call :meth:`run_once`/:meth:`drain`
        from their own quiescent points.
        """
        if self._thread is not None:
            return self
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.interval):
                self.run_once()

        self._thread = threading.Thread(
            target=loop, name="repro-compactor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"Compactor(running={self.running}, compactions={s.group_compactions}, "
            f"applied={s.changes_applied}, splits={s.group_splits})"
        )
