"""The durable ingest pipeline: WAL → staging overlay → compaction.

An :class:`IngestPipeline` turns a built :class:`~repro.core.smartstore.SmartStore`
into an online read/write deployment:

* every mutation is appended to the :class:`~repro.ingest.wal.WriteAheadLog`
  *first* (when one is attached — a volatile pipeline skips durability but
  keeps the same staging semantics);
* it is then staged through :meth:`SmartStore.stage_mutation`, which records
  it in the owning group's version chain *and* in the
  :class:`~repro.ingest.overlay.StagingOverlay`, so every subsequent
  point/range/top-k query reflects it immediately (read-your-writes,
  including deletion masking);
* a :class:`~repro.ingest.compactor.Compactor` — inline or on a background
  thread — incrementally folds staged mutations into the semantic R-tree;
* :meth:`checkpoint` persists the current logical population and truncates
  the log; :func:`recover` rebuilds an equivalent pipeline from the latest
  checkpoint plus a WAL replay after a crash.

Typical use::

    store = SmartStore.build(files, config)
    pipeline = IngestPipeline(store, wal=WriteAheadLog(path, fsync_every=64))
    pipeline.insert(new_file)          # durable + immediately queryable
    pipeline.compactor.run_once()      # or pipeline.compactor.start()
    pipeline.checkpoint(ckpt_dir)      # snapshot + WAL truncation
    ...
    recovered = recover(ckpt_dir, wal_path=path)   # after a crash
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.smartstore import SmartStore, StageOutcome, UNKNOWN_GROUP
from repro.ingest.compactor import CompactionPolicy, Compactor
from repro.ingest.overlay import StagingOverlay
from repro.ingest.wal import WALRecord, WriteAheadLog
from repro.metadata.file_metadata import FileMetadata
from repro.obs import get_tracer
from repro.persistence.jsonl import load_files, save_files, schema_from_dict, schema_to_dict
from repro.persistence.snapshot import config_from_dict, config_to_dict

__all__ = [
    "MutationReceipt",
    "IngestPipeline",
    "recover",
    "recover_from_storage",
    "CHECKPOINT_FORMAT",
]

PathLike = Union[str, Path]

CHECKPOINT_FORMAT = "repro.checkpoint"
CHECKPOINT_VERSION = 1

CHECKPOINT_META = "checkpoint.meta.json"
CHECKPOINT_FILES = "checkpoint.files.jsonl"


@dataclass(frozen=True)
class MutationReceipt:
    """What the caller gets back for one accepted mutation.

    ``seq`` is the WAL sequence number (a local monotone counter for
    volatile pipelines), ``group_id`` the first-level group whose version
    chain recorded the change (:data:`~repro.core.smartstore.UNKNOWN_GROUP`
    for rejected deletes/modifies of unknown files), ``latency`` the
    simulated staging cost under the deployment's cost model.
    """

    seq: int
    kind: str
    file_id: int
    group_id: int
    unit_id: int
    known: bool
    latency: float


class IngestPipeline:
    """Durable online mutations over one deployment."""

    def __init__(
        self,
        store: SmartStore,
        wal: Optional[WriteAheadLog] = None,
        *,
        policy: Optional[CompactionPolicy] = None,
    ) -> None:
        self.store = store
        self.wal = wal
        self.overlay = StagingOverlay()
        store.attach_overlay(self.overlay)
        # Serialises staging against compaction (and concurrent writers).
        self.lock = threading.RLock()
        self.compactor = Compactor(self, policy)
        self.mutations = 0
        self.rejected = 0
        # The pipeline is the sequence authority for both durable and
        # volatile deployments; an attached WAL follows it (explicit-seq
        # appends), so the numbering survives a WAL swap at resync.
        self._next_local_seq = wal.last_seq + 1 if wal is not None else 1
        # Watermark: the highest sequence number staged into the store.  A
        # replica's freshness (and therefore its failover priority) is
        # exactly this number.
        self.applied_seq = wal.last_seq if wal is not None else 0
        # Mutation feed: every staged mutation is handed to subscribers as
        # a WAL-style record — the replication layer ships these to the
        # replica group.  Durable pipelines forward the WAL's own shipping
        # hook (fired on append, i.e. before staging under the mutation
        # lock); volatile ones emit after staging.  Either way subscribers
        # see records in exactly the order the store applies them.
        self._mutation_listeners: List[Callable[[WALRecord], None]] = []
        if wal is not None:
            wal.subscribe(self._forward_record)
        # Optional tiered segment store (repro.storage.SegmentStore); when
        # attached, checkpoint() publishes an mmap-able snapshot instead of
        # (or as well as) the legacy JSONL population dump.
        self.storage: Optional[Any] = None
        self._closed = False

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Stop background compaction and close the log (staged state stays)."""
        if self._closed:
            return
        self._closed = True
        self.compactor.stop()
        if self.wal is not None:
            self.wal.close()

    def __enter__(self) -> "IngestPipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ mutations
    def _apply(self, kind: str, file: FileMetadata) -> MutationReceipt:
        if self._closed:
            raise RuntimeError("pipeline is closed")
        with self.lock, get_tracer().span("ingest.apply", kind=kind):
            # Log first: the mutation must be durable before any in-memory
            # structure reflects it, or a crash could acknowledge a write
            # that recovery cannot reproduce.  The WAL's shipping hook
            # forwards the record to the mutation feed right here.
            seq = self._next_local_seq
            self._next_local_seq += 1
            if self.wal is not None:
                self.wal.append(kind, file, seq=seq)
            outcome = self.store.stage_mutation(kind, file, seq=seq)
            self.mutations += 1
            if not outcome.known:
                self.rejected += 1
            self.applied_seq = seq
            if self.wal is None and self._mutation_listeners:
                record = WALRecord(seq=seq, kind=kind, file=file)
                for listener in self._mutation_listeners:
                    listener(record)
            return self._receipt(seq, outcome)

    def _receipt(self, seq: int, outcome: StageOutcome) -> MutationReceipt:
        return MutationReceipt(
            seq=seq,
            kind=outcome.kind,
            file_id=outcome.file.file_id,
            group_id=outcome.group_id,
            unit_id=outcome.unit_id,
            known=outcome.known,
            latency=outcome.metrics.latency(self.store.config.cost_model),
        )

    def insert(self, file: FileMetadata) -> MutationReceipt:
        """Durably insert one metadata record (immediately queryable)."""
        return self._apply("insert", file)

    def delete(self, file: FileMetadata) -> MutationReceipt:
        """Durably delete one record (masked from queries immediately).

        Deletes of unknown files are logged (the intent was accepted) but
        staged nowhere; the receipt's ``known`` flag is False.
        """
        return self._apply("delete", file)

    def modify(self, file: FileMetadata) -> MutationReceipt:
        """Durably replace one record's attribute values."""
        return self._apply("modify", file)

    # ------------------------------------------------------------------ replication
    def _forward_record(self, record: WALRecord) -> None:
        """WAL shipping hook → the pipeline's mutation feed (durable path)."""
        for listener in self._mutation_listeners:
            listener(record)

    def subscribe_mutations(self, listener: Callable[[WALRecord], None]) -> None:
        """Register a shipping hook, called with every locally originated
        mutation (durable pipelines forward their WAL's append hook;
        volatile ones emit directly).

        The hook fires inside the mutation lock, so subscribers observe
        records in exactly the order the store applies them.  Records
        applied via :meth:`apply_replicated` are *not* emitted — a replica
        must never re-ship what was shipped to it.
        """
        self._mutation_listeners.append(listener)

    def unsubscribe_mutations(self, listener: Callable[[WALRecord], None]) -> None:
        if listener in self._mutation_listeners:
            self._mutation_listeners.remove(listener)

    def apply_replicated(self, record: WALRecord) -> Optional[MutationReceipt]:
        """Apply one shipped WAL record on the replica side.

        A durable replica archives the segment in its *own* log first
        (under the primary's sequence number, without firing the shipping
        hooks — a replica must never re-ship), so a later promotion keeps
        writing WAL-first on the new primary's local disk.  Then the
        record is staged, the applied-seq watermark advances, and the
        sequence counter follows the primary's numbering.  Records at or
        below the watermark are duplicates from a catch-up overlap and are
        skipped (returns ``None``) — re-shipping is idempotent by
        construction.
        """
        if self._closed:
            raise RuntimeError("pipeline is closed")
        if record.file is None:  # checkpoint markers carry no mutation
            return None
        with self.lock:
            if record.seq <= self.applied_seq:
                return None
            if self.wal is not None:
                self.wal.append(
                    record.kind, record.file, seq=record.seq, notify=False
                )
            outcome = self.store.stage_mutation(record.kind, record.file, seq=record.seq)
            self.mutations += 1
            if not outcome.known:
                self.rejected += 1
            self.applied_seq = record.seq
            self._next_local_seq = record.seq + 1
            return self._receipt(record.seq, outcome)

    # ------------------------------------------------------------------ views
    def materialized_files(self) -> List[FileMetadata]:
        """The logical population: applied records plus staged net effect."""
        with self.lock:
            merged: Dict[int, FileMetadata] = dict(self.store._files_by_id)
            live, deleted = self.overlay.snapshot()
            merged.update(live)
            for fid in deleted:
                merged.pop(fid, None)
            return list(merged.values())

    def stats(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "mutations": self.mutations,
            "rejected_unknown": self.rejected,
            "applied_seq": self.applied_seq,
            "overlay": self.overlay.stats(),
            "compaction": self.compactor.stats.as_dict(),
        }
        if self.wal is not None:
            d["wal"] = {
                "path": str(self.wal.path),
                "last_seq": self.wal.last_seq,
                "appended": self.wal.appended,
                "syncs": self.wal.syncs,
                "fsync_every": self.wal.fsync_every,
                "size_bytes": self.wal.size_bytes(),
            }
        return d

    # ------------------------------------------------------------------ checkpointing
    def attach_storage(self, storage: Any) -> None:
        """Bind a tiered segment store; ``checkpoint()`` (no directory)
        then publishes snapshots through it."""
        self.storage = storage
        storage.attach(self.store)

    def checkpoint(self, directory: Optional[PathLike] = None) -> Dict[str, object]:
        """Persist the logical population and truncate the log.

        With a :class:`~repro.storage.store.SegmentStore` attached and no
        ``directory`` given, the checkpoint is a *snapshot publish*: the
        compactor drains the staging overlay (so the live servers hold
        exactly the applied state), changed groups are frozen into
        immutable segment files, the manifest is swapped atomically, and
        only then is the WAL tail truncated.  Recovery from that snapshot
        is O(tail): :func:`recover_from_storage` mmaps the segments and
        replays only post-checkpoint WAL records.

        With a ``directory``, the legacy JSONL checkpoint is written (and
        recovery rebuilds the store from the full population).

        The checkpoint captures everything logged so far (applied *and*
        staged mutations — recovery rebuilds the overlay-visible state from
        the population alone), so the WAL can drop every record at or below
        the checkpoint sequence.  Both artefacts are written atomically
        (temp + fsync + rename), population first, metadata second, WAL
        truncation last; a crash at any point leaves a recoverable pair:
        either the previous checkpoint with the untruncated log, or — when
        only the metadata swap is outstanding — the old metadata over the
        new population, which WAL replay reconciles because re-staging a
        logged mutation is idempotent (inserts/modifies replace in place,
        deletes of absent files are observable no-ops).
        """
        if directory is None:
            if self.storage is None:
                raise ValueError(
                    "checkpoint() needs a directory unless a segment store "
                    "is attached (attach_storage)"
                )
            return self._checkpoint_storage()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with self.lock:
            seq = self.wal.last_seq if self.wal is not None else self._next_local_seq - 1
            files = self.materialized_files()
            files_tmp = directory / (CHECKPOINT_FILES + ".tmp")
            save_files(files, files_tmp)
            with files_tmp.open("a", encoding="utf-8") as fh:
                fh.flush()
                # Checkpoint captures the population atomically with the
                # wal_seq it records, so the durable flush happens under
                # the pipeline lock by design (rare, admin-paced path).
                os.fsync(fh.fileno())  # repro-lint: disable=lock-discipline
            os.replace(files_tmp, directory / CHECKPOINT_FILES)
            meta = {
                "format": CHECKPOINT_FORMAT,
                "version": CHECKPOINT_VERSION,
                "wal_seq": seq,
                "num_files": len(files),
                "config": config_to_dict(self.store.config),
                "schema": schema_to_dict(self.store.schema),
            }
            tmp = directory / (CHECKPOINT_META + ".tmp")
            with tmp.open("w", encoding="utf-8") as fh:
                json.dump(meta, fh, indent=2, sort_keys=True)
                fh.write("\n")
                fh.flush()
                # Same rationale as the files fsync above: meta must land
                # with the population it describes.
                os.fsync(fh.fileno())  # repro-lint: disable=lock-discipline
            os.replace(tmp, directory / CHECKPOINT_META)
            if self.wal is not None:
                self.wal.truncate_through(seq)
            return meta

    def _checkpoint_storage(self) -> Dict[str, object]:
        """Publish an mmap-able snapshot through the attached segment store."""
        with self.lock:
            # Drain first: segments freeze *applied* state, so the staging
            # overlay must be empty when the groups are written.  The
            # compactor's drain re-enters the pipeline lock (RLock).
            self.compactor.drain()
            seq = self.wal.last_seq if self.wal is not None else self._next_local_seq - 1
            manifest = self.storage.publish_snapshot(self.store, wal_seq=seq)
            if self.wal is not None:
                self.wal.truncate_through(seq)
            return manifest

    def __repr__(self) -> str:
        return (
            f"IngestPipeline(store={self.store!r}, "
            f"wal={'on' if self.wal is not None else 'off'}, "
            f"mutations={self.mutations}, staged={len(self.overlay)})"
        )


def recover(
    checkpoint_dir: PathLike,
    *,
    wal_path: Optional[PathLike] = None,
    fsync_every: int = 1,
    policy: Optional[CompactionPolicy] = None,
) -> IngestPipeline:
    """Rebuild a pipeline from the latest checkpoint plus a WAL replay.

    The store is rebuilt from the checkpointed population with the
    checkpointed configuration, then every intact WAL record with a
    sequence number above the checkpoint is re-staged (without re-logging).
    A torn or corrupt log tail — the signature of a crash mid-append — ends
    the replay at the last intact record, exactly matching what the WAL's
    durability contract promised the writer.

    The returned pipeline keeps appending to the same log, so recovery is
    also how a cleanly shut down deployment resumes.
    """
    checkpoint_dir = Path(checkpoint_dir)
    with (checkpoint_dir / CHECKPOINT_META).open("r", encoding="utf-8") as fh:
        meta = json.load(fh)
    if meta.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(
            f"{checkpoint_dir} is not a checkpoint (format={meta.get('format')!r})"
        )
    files = load_files(checkpoint_dir / CHECKPOINT_FILES)
    config = config_from_dict(meta["config"])
    schema = schema_from_dict(meta["schema"])
    store = SmartStore.build(files, config, schema)

    wal = WriteAheadLog(wal_path, fsync_every=fsync_every) if wal_path is not None else None
    pipeline = IngestPipeline(store, wal, policy=policy)
    if wal is not None:
        checkpoint_seq = int(meta.get("wal_seq", 0))
        for record in wal.replay():
            if record.seq <= checkpoint_seq or record.kind == "checkpoint":
                continue
            if record.file is None:
                continue
            store.stage_mutation(record.kind, record.file, seq=record.seq)
            pipeline.mutations += 1
            pipeline.applied_seq = record.seq
    return pipeline


def recover_from_storage(
    root: PathLike,
    *,
    wal_path: Optional[PathLike] = None,
    fsync_every: int = 1,
    policy: Optional[CompactionPolicy] = None,
    resident_segments: int = 8,
) -> Tuple[IngestPipeline, Any]:
    """Cold-start a pipeline from a segment snapshot + the WAL tail.

    O(tail) recovery: the manifest restores the tree, LSI projection and
    normalisation bounds directly (no SVD, no k-means), the segments are
    mmap'd without decoding a single record, and only WAL records with a
    sequence number above the manifest's ``wal_seq`` are re-staged.
    Segments that fail their checksum are quarantined by
    :func:`repro.storage.open_storage`; their groups restore empty and
    the replay brings back whatever the tail holds — a detected,
    degraded-but-correct answer, never a wrong one.

    Returns ``(pipeline, report)`` where ``report`` is a
    :class:`repro.storage.RecoveryReport` whose ``wal_records_replayed``
    is the O(tail) witness.
    """
    from repro.storage import open_storage

    store, segstore, report = open_storage(root, resident_segments=resident_segments)
    wal = WriteAheadLog(wal_path, fsync_every=fsync_every) if wal_path is not None else None
    pipeline = IngestPipeline(store, wal, policy=policy)
    pipeline.attach_storage(segstore)
    snapshot_seq = report.wal_seq
    if wal is not None:
        for record in wal.replay():
            if record.seq <= snapshot_seq or record.kind == "checkpoint":
                continue
            if record.file is None:
                continue
            store.stage_mutation(record.kind, record.file, seq=record.seq)
            pipeline.mutations += 1
            pipeline.applied_seq = record.seq
            report.wal_records_replayed += 1
        pipeline._next_local_seq = max(pipeline._next_local_seq, pipeline.applied_seq + 1)
    else:
        # Volatile (plain-topology) deployments keep the snapshot's
        # sequence numbering so a later publish stays monotone.
        pipeline.applied_seq = snapshot_seq
        pipeline._next_local_seq = snapshot_seq + 1
    return pipeline, report
