"""The staging overlay: read-your-writes over not-yet-compacted mutations.

Staged mutations live in the version chains (the paper's mechanism, charged
per entry scanned) *and* in this overlay — an id-indexed, per-group view
that the query engine merges in O(1)-per-probe:

* a query that matches a **staged insert or modify** returns the staged
  record immediately (its attribute values win over any indexed copy);
* a query whose indexed result set contains a **staged delete** masks that
  record out — something the bare version chains never did (deletions only
  took effect at reconfiguration);
* the :class:`~repro.ingest.compactor.Compactor` reads the per-group counts
  and ages to decide which groups to drain next.

The overlay keeps the *latest* staged mutation per file id (an insert
followed by a delete nets out to a masked id; a duplicate insert replaces
the earlier record), while the version chain keeps the full ordered change
list — the chain is what compaction applies, the overlay is what reads
consult.  All methods are thread-safe: the query service reads the overlay
from pool threads while the compactor drains it from its own.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from itertools import count
from typing import Dict, List, Optional, Set, Tuple

from repro.metadata.file_metadata import FileMetadata

__all__ = ["StagedMutation", "StagingOverlay"]

#: Mutation kinds the overlay stages.
STAGE_KINDS = ("insert", "delete", "modify")


@dataclass(frozen=True)
class StagedMutation:
    """The latest staged mutation of one file.

    ``seq`` is the WAL sequence number when the mutation was logged (or a
    local monotone counter for volatile pipelines); ``tick`` is the
    overlay's own admission counter, used as the age measure — ages in
    "mutations since staged" keep compaction policies deterministic, unlike
    wall-clock timestamps.
    """

    seq: int
    kind: str
    file: FileMetadata
    group_id: int
    unit_id: int
    tick: int


class StagingOverlay:
    """Per-group staged mutations with id- and filename-indexed lookups."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latest: Dict[int, StagedMutation] = {}          # file_id -> latest
        self._groups: Dict[int, Dict[int, StagedMutation]] = {}  # gid -> file_id -> m
        self._by_filename: Dict[str, Set[int]] = {}
        self._ticks = count(1)
        self.staged_total = 0      # mutations ever staged
        self.drained_total = 0     # mutations handed to compaction

    # ------------------------------------------------------------------ staging
    def stage(
        self, kind: str, file: FileMetadata, *, group_id: int, unit_id: int, seq: int
    ) -> StagedMutation:
        """Record ``kind`` as the latest staged mutation of ``file``."""
        if kind not in STAGE_KINDS:
            raise ValueError(f"unknown mutation kind {kind!r}")
        with self._lock:
            staged = StagedMutation(
                seq=seq,
                kind=kind,
                file=file,
                group_id=group_id,
                unit_id=unit_id,
                tick=next(self._ticks),
            )
            self._unlink(file.file_id)
            self._latest[file.file_id] = staged
            self._groups.setdefault(group_id, {})[file.file_id] = staged
            self._by_filename.setdefault(file.filename, set()).add(file.file_id)
            self.staged_total += 1
            return staged

    def _unlink(self, file_id: int) -> None:
        prev = self._latest.pop(file_id, None)
        if prev is None:
            return
        group = self._groups.get(prev.group_id)
        if group is not None:
            group.pop(file_id, None)
            if not group:
                self._groups.pop(prev.group_id, None)
        named = self._by_filename.get(prev.file.filename)
        if named is not None:
            named.discard(file_id)
            if not named:
                self._by_filename.pop(prev.file.filename, None)

    # ------------------------------------------------------------------ read-your-writes
    def __len__(self) -> int:
        with self._lock:
            return len(self._latest)

    def get(self, file_id: int) -> Optional[StagedMutation]:
        with self._lock:
            return self._latest.get(file_id)

    def is_deleted(self, file_id: int) -> bool:
        """True when the latest staged mutation of ``file_id`` is a delete."""
        with self._lock:
            staged = self._latest.get(file_id)
            return staged is not None and staged.kind == "delete"

    def deleted_ids(self) -> List[int]:
        with self._lock:
            return [fid for fid, m in self._latest.items() if m.kind == "delete"]

    def staged_ids(self) -> Set[int]:
        """Ids of every staged file (any kind) — the records whose indexed
        copies are stale and must be masked out of scans."""
        with self._lock:
            return set(self._latest.keys())

    def snapshot(self) -> "Tuple[Dict[int, FileMetadata], Set[int]]":
        """One consistent view: ``(live records by id, deleted ids)``.

        The single merge primitive the query engine and the pipeline's
        materialised view build on — one lock acquisition per query, and
        one place that defines which staged records are visible.
        """
        with self._lock:
            live = {
                fid: m.file for fid, m in self._latest.items() if m.kind != "delete"
            }
            deleted = {
                fid for fid, m in self._latest.items() if m.kind == "delete"
            }
            return live, deleted

    def live_files(self) -> List[FileMetadata]:
        """Staged records that are currently visible (inserts and modifies)."""
        with self._lock:
            return [m.file for m in self._latest.values() if m.kind != "delete"]

    def files_named(self, filename: str) -> List[FileMetadata]:
        """Visible staged records whose filename matches (point-query merge)."""
        with self._lock:
            out: List[FileMetadata] = []
            for fid in self._by_filename.get(filename, ()):
                staged = self._latest.get(fid)
                if staged is not None and staged.kind != "delete":
                    out.append(staged.file)
            return out

    # ------------------------------------------------------------------ compaction support
    def group_ids(self) -> List[int]:
        with self._lock:
            return sorted(self._groups.keys())

    def group_size(self, group_id: int) -> int:
        with self._lock:
            return len(self._groups.get(group_id, ()))

    def group_sizes(self) -> Dict[int, int]:
        with self._lock:
            return {gid: len(members) for gid, members in self._groups.items()}

    def group_age(self, group_id: int) -> int:
        """Age of the group's oldest staged mutation, in mutations staged since."""
        with self._lock:
            members = self._groups.get(group_id)
            if not members:
                return 0
            oldest = min(m.tick for m in members.values())
            return self.staged_total - oldest + 1

    def discard_group(self, group_id: int) -> List[StagedMutation]:
        """Drop (and return) every staged mutation of one group.

        Called by compaction *after* the group's version-chain changes have
        been applied to the primary structures — the staged entries are no
        longer needed for read-your-writes because the index now serves
        them.
        """
        with self._lock:
            members = self._groups.pop(group_id, None)
            if not members:
                return []
            dropped = list(members.values())
            for staged in dropped:
                fid = staged.file.file_id
                self._latest.pop(fid, None)
                named = self._by_filename.get(staged.file.filename)
                if named is not None:
                    named.discard(fid)
                    if not named:
                        self._by_filename.pop(staged.file.filename, None)
            self.drained_total += len(dropped)
            return dropped

    def clear(self) -> int:
        """Drop everything (full reconfiguration applied all chains)."""
        with self._lock:
            dropped = len(self._latest)
            self._latest.clear()
            self._groups.clear()
            self._by_filename.clear()
            self.drained_total += dropped
            return dropped

    # ------------------------------------------------------------------ introspection
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "staged": len(self._latest),
                "staged_total": self.staged_total,
                "drained_total": self.drained_total,
                "groups": len(self._groups),
                "deletes": sum(1 for m in self._latest.values() if m.kind == "delete"),
            }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"StagingOverlay(staged={s['staged']}, groups={s['groups']}, "
            f"deletes={s['deletes']}, drained={s['drained_total']})"
        )
