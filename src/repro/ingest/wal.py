"""The write-ahead log of the durable ingest pipeline.

Every metadata mutation (insert / delete / modify) is appended to an
append-only JSON-Lines log *before* it touches any in-memory structure, so
that a crash at an arbitrary point loses at most the records whose fsync had
not completed yet.  The format is deliberately self-describing and
human-readable, like every other artefact in :mod:`repro.persistence`::

    {"format": "repro.wal", "version": 1}
    {"seq": 1, "kind": "insert", "file": {...}, "crc": 2868790647}
    {"seq": 2, "kind": "delete", "file": {...}, "crc": 1935937006}
    {"seq": 3, "kind": "checkpoint", "file": null, "crc": 3047013065}

* ``seq`` is a strictly increasing sequence number; recovery uses it to
  skip records already captured by a checkpoint.
* ``crc`` is the CRC-32 of the record's canonical JSON (without the ``crc``
  field itself); a record whose checksum does not match — typically a write
  torn by the crash — is treated as the end of the log.
* ``fsync_every`` trades durability for throughput: ``1`` fsyncs after
  every append (each record survives the crash that follows its append),
  ``N > 1`` fsyncs once per ``N`` appends (at most ``N - 1`` acknowledged
  records can be lost), ``0`` never fsyncs explicitly and leaves flushing
  to the OS.  ``bench_ingest_throughput.py`` quantifies the trade-off.

Opening an existing log scans it, restores the sequence counter and — when
the tail is torn — truncates the file back to the last intact record so new
appends never hide behind a corrupt line.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.metadata.file_metadata import FileMetadata
from repro.obs import get_tracer
from repro.persistence.jsonl import file_from_dict, file_to_dict

__all__ = ["WALRecord", "WALReplay", "WriteAheadLog", "WAL_FORMAT"]

PathLike = Union[str, Path]

WAL_FORMAT = "repro.wal"
WAL_VERSION = 1

#: Record kinds the log accepts (``checkpoint`` marks a truncation point).
WAL_KINDS = ("insert", "delete", "modify", "checkpoint")


def _payload_crc(payload: Dict[str, object]) -> int:
    """CRC-32 of a record's canonical JSON, excluding the ``crc`` field."""
    body = {k: v for k, v in payload.items() if k != "crc"}
    return zlib.crc32(json.dumps(body, sort_keys=True).encode("utf-8"))


def _parse_record_line(line: bytes) -> WALRecord:
    """Parse one on-disk record line, rejecting ANY byte-level corruption.

    The CRC covers the canonical (re-serialized) JSON, which a pure
    formatting corruption — e.g. an inter-token space flipped to a tab —
    does not change.  Requiring the raw bytes to round-trip through the
    writer's own serialization closes that gap: formatting damage fails
    the byte comparison, value damage fails the CRC.
    """
    payload = json.loads(line)
    if json.dumps(payload).encode("utf-8") != line.rstrip(b"\r\n"):
        raise ValueError("record bytes are not the writer's serialization")
    return WALRecord.from_payload(payload)


@dataclass(frozen=True)
class WALRecord:
    """One logged mutation."""

    seq: int
    kind: str
    file: Optional[FileMetadata]

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "seq": self.seq,
            "kind": self.kind,
            "file": file_to_dict(self.file) if self.file is not None else None,
        }
        payload["crc"] = _payload_crc(payload)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "WALRecord":
        if payload.get("crc") != _payload_crc(payload):
            raise ValueError("checksum mismatch")
        kind = str(payload["kind"])
        if kind not in WAL_KINDS:
            raise ValueError(f"unknown WAL record kind {kind!r}")
        raw_file = payload.get("file")
        return cls(
            seq=int(payload["seq"]),  # type: ignore[arg-type]
            kind=kind,
            file=file_from_dict(raw_file) if raw_file is not None else None,  # type: ignore[arg-type]
        )


@dataclass
class WALReplay:
    """Outcome of scanning a log: the intact records plus tail diagnostics.

    ``truncated`` is True when the scan stopped at a torn or corrupt line
    (the crash case the log is designed for); ``bad_line`` carries the
    offending line number for diagnostics, and ``good_bytes`` the offset of
    the end of the last intact record (what reopening truncates back to).
    """

    records: List[WALRecord] = field(default_factory=list)
    truncated: bool = False
    bad_line: Optional[int] = None
    good_bytes: int = 0

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0

    def __iter__(self) -> Iterator[WALRecord]:
        return iter(self.records)


class WriteAheadLog:
    """Append-only, checksummed JSONL log with an fsync-batching knob.

    Parameters
    ----------
    path:
        Log file location (created, with parents, on first use).
    fsync_every:
        ``1`` = fsync per append (full durability), ``N`` = fsync once per
        ``N`` appends, ``0`` = flush but never fsync explicitly.
    """

    def __init__(self, path: PathLike, *, fsync_every: int = 1) -> None:
        if fsync_every < 0:
            raise ValueError(f"fsync_every must be >= 0, got {fsync_every}")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self.appended = 0
        self.syncs = 0
        self._unsynced = 0
        # Segment-shipping hooks: every appended record is handed to each
        # subscriber (the replication layer forwards them to replicas).
        self._listeners: List[Callable[[WALRecord], None]] = []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        replay = self.scan(self.path) if self.path.exists() else WALReplay()
        self._next_seq = replay.last_seq + 1
        if replay.truncated:
            # Drop the torn tail so new appends follow the last intact
            # record instead of hiding behind an unparseable line.
            with self.path.open("r+", encoding="utf-8") as fh:
                fh.truncate(replay.good_bytes)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = self.path.open("a", encoding="utf-8")
        if fresh:
            self._fh.write(
                json.dumps({"format": WAL_FORMAT, "version": WAL_VERSION}) + "\n"
            )
            self._fh.flush()

    # ------------------------------------------------------------------ appending
    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record (0 = none)."""
        return self._next_seq - 1

    def append(
        self,
        kind: str,
        file: Optional[FileMetadata] = None,
        *,
        seq: Optional[int] = None,
        notify: bool = True,
    ) -> int:
        """Log one mutation; returns its sequence number.

        The record is written and flushed to the OS immediately; whether it
        is fsynced now or with a later batch is governed by ``fsync_every``.

        ``seq`` logs the record under an explicit sequence number (a
        replica archiving a shipped segment keeps the primary's numbering)
        and advances the counter past it; it must not regress below the
        log's own next sequence.  ``notify=False`` skips the shipping
        hooks — archival appends must not echo back into the ship queues.
        """
        if kind not in WAL_KINDS:
            raise ValueError(f"unknown WAL record kind {kind!r}")
        if seq is None:
            seq = self._next_seq
        elif seq < self._next_seq:
            raise ValueError(
                f"explicit seq {seq} would regress the log (next is {self._next_seq})"
            )
        record = WALRecord(seq=seq, kind=kind, file=file)
        with get_tracer().span("wal.append", kind=kind, seq=seq):
            self._fh.write(json.dumps(record.to_payload()) + "\n")
            self._fh.flush()
        self._next_seq = seq + 1
        self.appended += 1
        self._unsynced += 1
        if self.fsync_every and self._unsynced >= self.fsync_every:
            self.sync()
        if notify:
            for listener in self._listeners:
                listener(record)
        return record.seq

    def subscribe(self, listener: Callable[["WALRecord"], None]) -> None:
        """Register a segment-shipping hook, called with every appended record.

        Hooks run *after* the record is durable under the log's
        ``fsync_every`` contract (the append itself), so a subscriber never
        observes a record the log could disown after a crash — the ordering
        replication relies on to ship only logged mutations.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[["WALRecord"], None]) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def sync(self) -> None:
        """Force an fsync of everything appended so far."""
        with get_tracer().span("wal.fsync", batched=self._unsynced):
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self.syncs += 1
        self._unsynced = 0

    def close(self) -> None:
        """Flush and close; drains the pending fsync batch.

        With ``fsync_every=0`` the no-explicit-fsync contract holds even
        here — the file is flushed to the OS and closed, nothing more.
        """
        if self._fh.closed:
            return
        if self.fsync_every and self._unsynced:
            self.sync()
        self._fh.flush()
        self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ reading
    @staticmethod
    def scan(path: PathLike) -> WALReplay:
        """Read a log from disk, stopping at the first torn/corrupt record.

        A missing file scans as an empty log (nothing was ever made
        durable); a bad header is an error — the artefact is not a WAL at
        all, silently replaying it as empty would mask real data loss.
        """
        path = Path(path)
        replay = WALReplay()
        if not path.exists():
            return replay
        with path.open("rb") as fh:
            header_line = fh.readline()
            if header_line:
                try:
                    header = json.loads(header_line)
                except json.JSONDecodeError:
                    if not fh.read(1):
                        # A lone torn line: the crash hit the very first
                        # header write, before any record could have been
                        # acknowledged.  Nothing was durable — replay empty.
                        replay.truncated = True
                        replay.bad_line = 1
                        return replay
                    raise ValueError(f"{path} has a corrupt header") from None
                if header.get("format") != WAL_FORMAT:
                    raise ValueError(
                        f"{path} is not a write-ahead log "
                        f"(format={header.get('format')!r})"
                    )
            replay.good_bytes = fh.tell()
            line_no = 1
            while True:
                line = fh.readline()
                if not line:
                    break
                line_no += 1
                if not line.strip():
                    replay.good_bytes = fh.tell()
                    continue
                try:
                    record = _parse_record_line(line)
                except (ValueError, KeyError, TypeError):
                    replay.truncated = True
                    replay.bad_line = line_no
                    break
                replay.records.append(record)
                replay.good_bytes = fh.tell()
        return replay

    def replay(self) -> WALReplay:
        """Scan this log's on-disk contents (including unsynced appends)."""
        self._fh.flush()
        return self.scan(self.path)

    # ------------------------------------------------------------------ checkpoint support
    def truncate_through(self, seq: int) -> int:
        """Drop every record with sequence number <= ``seq``.

        Called after a checkpoint has captured those records' effects.  The
        log is rewritten atomically (temp file + rename) so a crash during
        truncation leaves either the old or the new log, never a torn one.
        Returns the number of records retained.
        """
        replay = self.replay()
        kept = [r for r in replay.records if r.seq > seq]
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps({"format": WAL_FORMAT, "version": WAL_VERSION}) + "\n")
            for record in kept:
                fh.write(json.dumps(record.to_payload()) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        self._fh = self.path.open("a", encoding="utf-8")
        self._unsynced = 0
        return len(kept)

    # ------------------------------------------------------------------ introspection
    def size_bytes(self) -> int:
        self._fh.flush()
        return self.path.stat().st_size if self.path.exists() else 0

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(path={str(self.path)!r}, next_seq={self._next_seq}, "
            f"fsync_every={self.fsync_every}, appended={self.appended}, "
            f"syncs={self.syncs})"
        )
