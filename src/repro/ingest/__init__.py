"""The durable write path: WAL-backed online mutations over a deployment.

``repro.ingest`` turns the read-mostly reproduction into a read/write
metadata service:

``repro.ingest.wal``
    :class:`WriteAheadLog` — append-only, checksummed JSONL log with an
    fsync-batching knob, torn-tail-tolerant replay and checkpoint
    truncation.
``repro.ingest.overlay``
    :class:`StagingOverlay` — per-group staged mutations, id- and
    filename-indexed, giving queries read-your-writes (including staged
    deletion masking) before compaction.
``repro.ingest.compactor``
    :class:`Compactor` + :class:`CompactionPolicy` — incremental, per-group
    draining of staged mutations into the semantic R-tree with leaf
    MBR/Bloom refresh, hot-group splitting and partial off-line replica
    refresh.
``repro.ingest.pipeline``
    :class:`IngestPipeline` — log-first mutation ordering, checkpointing
    and :func:`recover` (checkpoint + WAL replay after a crash).
"""

from repro.ingest.compactor import CompactionPolicy, CompactionStats, Compactor
from repro.ingest.overlay import StagedMutation, StagingOverlay
from repro.ingest.pipeline import IngestPipeline, MutationReceipt, recover
from repro.ingest.wal import WALRecord, WALReplay, WriteAheadLog

__all__ = [
    "CompactionPolicy",
    "CompactionStats",
    "Compactor",
    "IngestPipeline",
    "MutationReceipt",
    "StagedMutation",
    "StagingOverlay",
    "WALRecord",
    "WALReplay",
    "WriteAheadLog",
    "recover",
]
