"""The write-path ablation harness shared by ``ingest-bench`` and the
``bench_ingest_throughput`` benchmark.

One loop, two consumers: the CLI subcommand (whose exit code asserts the
correctness gates, the CI smoke job) and the pytest benchmark (which adds a
WAL-layer microbenchmark and throughput assertions).  Keeping the
configuration matrix, the measurement loop and the gate semantics here
means the two cannot drift apart.

The two **correctness gates**, computed on the batched-WAL configuration:

``crash recovery identical``
    A store rebuilt by :func:`~repro.ingest.pipeline.recover` from the
    run's starting checkpoint plus the WAL answers every probe query
    byte-identically to the live (uncrashed) store.
``drain == fresh build``
    After the recovered pipeline's compactor drains, the store answers
    byte-identically to a fresh :meth:`SmartStore.build` over the mutated
    population.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.ingest.compactor import CompactionPolicy
from repro.ingest.pipeline import IngestPipeline, recover
from repro.ingest.wal import WriteAheadLog
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.workloads.generator import QueryWorkloadGenerator

__all__ = [
    "AblationRow",
    "IngestAblationReport",
    "standard_configurations",
    "run_ingest_ablation",
]

PathLike = Union[str, Path]

#: Index of the configuration the correctness gates run on (batched WAL
#: with compaction — the recommended production setting).
GATED_CONFIGURATION = 1


@dataclass(frozen=True)
class AblationRow:
    """One measured configuration of the write path."""

    label: str
    wall_seconds: float
    mutations_per_second: float
    fsyncs: Optional[int]          # None for the volatile (no-WAL) run
    compactions: int
    staged_left: int

    def as_table_row(self) -> List[str]:
        return [
            self.label,
            f"{self.wall_seconds:.3f}",
            f"{self.mutations_per_second:.0f}",
            "-" if self.fsyncs is None else f"{self.fsyncs}",
            f"{self.compactions}",
            f"{self.staged_left}",
        ]


@dataclass
class IngestAblationReport:
    """Rows for every configuration plus the correctness-gate verdicts."""

    rows: List[AblationRow]
    gates: Dict[str, bool]

    @property
    def passed(self) -> bool:
        return all(self.gates.values())


def standard_configurations(fsync_batch: int) -> List[Tuple[str, Optional[int], bool]]:
    """The ablation matrix: ``(label, fsync_every or None, compaction on)``."""
    return [
        ("wal fsync/record + compaction", 1, True),
        (f"wal fsync/{fsync_batch} + compaction", fsync_batch, True),
        (f"wal fsync/{fsync_batch}, no compaction", fsync_batch, False),
        ("no wal (volatile) + compaction", None, True),
    ]


def _probe_queries(
    files: Sequence[FileMetadata], per_type: int, seed: int
) -> List[Any]:
    generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=seed)
    return (
        generator.point_queries(per_type, existing_fraction=0.8)
        + generator.range_queries(per_type)
        + generator.topk_queries(per_type, k=8)
    )


def run_ingest_ablation(
    files: Sequence[FileMetadata],
    config: SmartStoreConfig,
    stream: Sequence[Tuple[str, FileMetadata]],
    *,
    workdir: PathLike,
    fsync_batch: int = 64,
    policy: Optional[CompactionPolicy] = None,
    probes_per_type: int = 6,
    probe_seed: int = 1,
) -> IngestAblationReport:
    """Drive ``stream`` through every configuration and gate the batched one.

    Policy-driven compaction runs after each mutation in the ``compaction``
    configurations (the service's ``auto_compact`` discipline).  The WAL
    and checkpoint artefacts land under ``workdir``.
    """
    # Imported here: repro.service imports repro.ingest at module load, so
    # importing the service package from ingest module scope would cycle.
    from repro.service.cache import result_fingerprint

    workdir = Path(workdir)
    policy = policy if policy is not None else CompactionPolicy()
    rows: List[AblationRow] = []
    gates: Dict[str, bool] = {}

    for i, (label, fsync_every, compact_on) in enumerate(
        standard_configurations(fsync_batch)
    ):
        store = SmartStore.build(files, config)
        wal = (
            WriteAheadLog(workdir / f"wal-{i}.jsonl", fsync_every=fsync_every)
            if fsync_every is not None
            else None
        )
        pipeline = IngestPipeline(store, wal, policy=policy)
        ckpt_dir = workdir / f"ckpt-{i}"
        if wal is not None:
            pipeline.checkpoint(ckpt_dir)

        started = time.perf_counter()
        for kind, f in stream:
            getattr(pipeline, kind)(f)
            if compact_on:
                pipeline.compactor.run_once()
        wall = time.perf_counter() - started

        rows.append(
            AblationRow(
                label=label,
                wall_seconds=wall,
                mutations_per_second=len(stream) / wall if wall > 0 else 0.0,
                fsyncs=pipeline.wal.syncs if pipeline.wal is not None else None,
                compactions=pipeline.compactor.stats.group_compactions,
                staged_left=len(pipeline.overlay),
            )
        )

        if i == GATED_CONFIGURATION:
            probes = _probe_queries(
                pipeline.materialized_files(), probes_per_type, probe_seed
            )
            live = [result_fingerprint(store.execute(q)) for q in probes]
            pipeline.close()
            recovered = recover(ckpt_dir, wal_path=workdir / f"wal-{i}.jsonl")
            gates["crash recovery identical"] = live == [
                result_fingerprint(recovered.store.execute(q)) for q in probes
            ]
            recovered.compactor.drain()
            fresh = SmartStore.build(recovered.materialized_files(), config)
            gates["drain == fresh build"] = [
                result_fingerprint(recovered.store.execute(q)) for q in probes
            ] == [result_fingerprint(fresh.execute(q)) for q in probes]
            recovered.close()
        else:
            pipeline.close()

    return IngestAblationReport(rows=rows, gates=gates)
