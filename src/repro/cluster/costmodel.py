"""Cost model: converting counted events into simulated time and space.

The absolute numbers in the paper's Table 4 come from a specific 2009-era
testbed; what the reproduction must preserve is the *relative* behaviour,
which is driven by three facts the cost model encodes:

1. SmartStore's distributed semantic R-tree (plus Bloom filters and the
   replicated first-level index vectors) is small enough to stay resident in
   every server's memory, so its index probes run at memory speed (§5.2,
   "allows the query to be served at the speed of memory access").
2. The DBMS baseline keeps one B+-tree per attribute over *all* files; the
   aggregate index is far larger than memory and its page accesses and leaf
   scans are charged at disk speed.
3. The centralised, non-semantic R-tree baseline holds a single
   multi-dimensional index of every file on one server: smaller than the
   per-attribute B+-tree forest (so cheaper than DBMS), but still global —
   every query pays for descending a tree over the whole population and, for
   the scales the paper uses, the index spills to disk as well.

All latencies are in seconds and deliberately conservative (2009-era
commodity hardware: ~100 ns memory access, ~5 ms disk seek, ~0.2 ms LAN
round-trip).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Latency and space constants used to interpret the event counters.

    Attributes
    ----------
    network_hop_latency:
        One inter-server message (request or response), seconds.
    memory_index_access:
        Probing one in-memory index node (semantic R-tree node, Bloom
        filter, or replicated index vector), seconds.
    disk_index_access:
        Fetching one on-disk index page (B+-tree node or a page of the
        centralised R-tree), seconds.
    memory_record_scan:
        Inspecting one metadata record held in memory, seconds.
    disk_record_scan:
        Inspecting one metadata record streamed from disk, seconds.
    metadata_record_bytes:
        Serialised size of one file-metadata record, used for space
        accounting (Figure 7).
    index_entry_bytes:
        Size of one index entry (an MBR / key + pointer), bytes.
    semantic_vector_bytes:
        Size of one replicated semantic vector (per retained LSI dimension,
        8-byte floats plus a small header), bytes.
    """

    network_hop_latency: float = 2.0e-4
    memory_index_access: float = 1.0e-7
    disk_index_access: float = 5.0e-3
    memory_record_scan: float = 2.0e-7
    disk_record_scan: float = 2.0e-5
    metadata_record_bytes: int = 256
    index_entry_bytes: int = 64
    semantic_vector_bytes: int = 96

    def __post_init__(self) -> None:
        for name in (
            "network_hop_latency",
            "memory_index_access",
            "disk_index_access",
            "memory_record_scan",
            "disk_record_scan",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        for name in ("metadata_record_bytes", "index_entry_bytes", "semantic_vector_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


#: The cost model used by every benchmark unless a caller overrides it.
DEFAULT_COST_MODEL = CostModel()
