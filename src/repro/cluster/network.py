"""Message accounting between simulated storage units.

The network model is intentionally simple — every inter-unit message costs
one hop — because the paper's comparisons (on-line multicast vs. off-line
pre-computation, Figure 13; routing distance, Figure 8) are about *how many*
messages are exchanged, not about congestion dynamics.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.cluster.metrics import Metrics

__all__ = ["Network"]


class Network:
    """Point-to-point and multicast message accounting.

    Parameters
    ----------
    metrics:
        The shared :class:`~repro.cluster.metrics.Metrics` object that
        receives message counts.  A fresh one is created when omitted
        (useful in unit tests).
    """

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        self.metrics = metrics if metrics is not None else Metrics()

    def send(self, src: int, dst: int) -> None:
        """One unicast message from unit ``src`` to unit ``dst``.

        A message a unit sends to itself is free: local work does not cross
        the network.
        """
        if src == dst:
            return
        self.metrics.record_message()

    def send_response(self, src: int, dst: int) -> None:
        """A response message (same cost as a request)."""
        self.send(src, dst)

    def multicast(self, src: int, destinations: Iterable[int]) -> int:
        """Multicast from ``src`` to every unit in ``destinations``.

        Returns the number of messages actually sent (self-sends excluded).
        The on-line query approach of §3.3 relies on multicasting to the
        father and sibling nodes of the home unit, which is exactly the
        traffic Figure 13(b) measures.
        """
        sent = 0
        for dst in set(destinations):
            if dst == src:
                continue
            self.metrics.record_message()
            sent += 1
        return sent

    def gather(self, sources: Sequence[int], dst: int) -> int:
        """Responses from every unit in ``sources`` back to ``dst``."""
        sent = 0
        for src in set(sources):
            if src == dst:
                continue
            self.metrics.record_message()
            sent += 1
        return sent
