"""Cluster / network cost-accounting simulator.

The paper evaluates SmartStore on a 60-node Linux cluster.  This repository
replaces the physical testbed with a discrete cost-accounting simulator:

* :class:`~repro.cluster.costmodel.CostModel` — converts counted events
  (network hops, in-memory index probes, disk page accesses, records
  scanned) into simulated seconds and bytes.
* :class:`~repro.cluster.metrics.Metrics` — the event counters themselves,
  shared by SmartStore, the baselines, and the query engines.
* :class:`~repro.cluster.network.Network` — point-to-point and multicast
  message accounting between storage units.
* :class:`~repro.cluster.node.StorageServer` — a simulated metadata server
  hosting one storage unit's file metadata (with vectorised local scans).
* :class:`~repro.cluster.simulator.ClusterSimulator` — the container tying
  servers, network and metrics together.

The simulator preserves the quantities the paper's results are actually
driven by — how many units a query touches, how many messages are multicast,
how many index pages and records are inspected — and therefore preserves the
relative shapes of Table 4 and Figures 7, 8, 13 and 14 without requiring the
original hardware.
"""

from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.metrics import Metrics
from repro.cluster.network import Network
from repro.cluster.node import StorageServer
from repro.cluster.simulator import ClusterSimulator

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Metrics",
    "Network",
    "StorageServer",
    "ClusterSimulator",
]
