"""Failure injection: server crashes, index re-hosting and root failover.

§4.3 motivates the root multi-mapping with reliability: the root (and, more
generally, every index unit) is a logical tree node hosted on some storage
server, and a server crash must not take the query service down with it.
This module injects crashes into a built SmartStore deployment and measures
their consequences:

* which index units lose their host and whether they can be re-hosted from
  surviving replicas / recomputed from surviving children,
* whether the root remains reachable (it should, as long as at least one of
  its multi-mapped replicas survives — that is the point of §4.3),
* how much of the file population remains reachable,
* how query results degrade while some units are down (the degraded recall
  of a complex query is the fraction of its ideal results that still live on
  reachable servers).

The injector never mutates the deployment's data structures — a crash is a
visibility overlay — so recovery is exact and experiments can sweep crash
patterns over the same build.

The overlay answers "what would this crash pattern cost?"; since the
replication layer exists there is also a way to ask "what does it
*actually* cost?": :func:`run_failover_drill` drives a **real** replicated
deployment (a :class:`~repro.shard.router.ShardRouter` over
:class:`~repro.replication.group.ReplicaGroup` shards, or one bare group)
through a kill-every-primary storm injected with the live
:class:`~repro.replication.fault.FaultInjector`, and reports whether
promotion kept every answer byte-identical with zero failed requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.cluster.metrics import Metrics
from repro.core.queries import QueryResult
from repro.core.semantic_rtree import SemanticNode
from repro.core.smartstore import SmartStore
from repro.metadata.file_metadata import FileMetadata
from repro.workloads.types import Query, RangeQuery, TopKQuery

__all__ = [
    "AvailabilityReport",
    "DegradedQueryResult",
    "RootFailoverReport",
    "FailureInjector",
    "FailoverDrillReport",
    "run_failover_drill",
]


@dataclass(frozen=True)
class AvailabilityReport:
    """System-level availability under the currently injected failures.

    Attributes
    ----------
    failed_units / alive_units:
        Counts of crashed and surviving storage units.
    file_availability:
        Fraction of the file population stored on surviving units.
    root_reachable:
        True when the root is hosted (primary or any §4.3 replica) on a
        surviving unit.
    index_units_lost_host / index_units_rehostable:
        Index units whose host crashed, and how many of those can be
        re-hosted immediately because at least one descendant storage unit
        survived (their MBR/semantic vector can be recomputed bottom-up).
    orphaned_groups:
        First-level groups whose *every* storage unit crashed — their files
        are genuinely unavailable until the servers come back.
    """

    failed_units: int
    alive_units: int
    file_availability: float
    root_reachable: bool
    index_units_lost_host: int
    index_units_rehostable: int
    orphaned_groups: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "failed_units": self.failed_units,
            "alive_units": self.alive_units,
            "file_availability": self.file_availability,
            "root_reachable": float(self.root_reachable),
            "index_units_lost_host": self.index_units_lost_host,
            "index_units_rehostable": self.index_units_rehostable,
            "orphaned_groups": self.orphaned_groups,
        }


@dataclass(frozen=True)
class RootFailoverReport:
    """Outcome of promoting a root replica after the primary host crashed.

    Attributes
    ----------
    failed_over:
        True when a promotion actually happened (the primary was down and a
        replica survived).
    old_host / new_host:
        The crashed primary and the promoted replica host (``None`` when no
        promotion happened).
    messages:
        Inter-server messages charged for the promotion: informing every
        first-level group of the new primary.
    """

    failed_over: bool
    old_host: Optional[int]
    new_host: Optional[int]
    messages: int


@dataclass
class DegradedQueryResult:
    """A query result filtered down to what surviving servers can return.

    Attributes
    ----------
    result:
        The unfiltered result as the healthy deployment would have produced
        it.
    available_files:
        The subset of ``result.files`` whose owning storage unit is alive.
    lost_files:
        The results that are currently unreachable.
    availability:
        ``len(available_files) / len(result.files)`` (1.0 for an empty
        result set — nothing was lost).
    """

    result: QueryResult
    available_files: List[FileMetadata] = field(default_factory=list)
    lost_files: List[FileMetadata] = field(default_factory=list)

    @property
    def availability(self) -> float:
        total = len(self.result.files)
        if total == 0:
            return 1.0
        return len(self.available_files) / total


class FailureInjector:
    """Crash / recover storage units of a SmartStore deployment.

    Parameters
    ----------
    store:
        The deployment under test.  It is never mutated; failures are an
        overlay maintained by the injector.
    seed:
        Seed for the random crash selection helpers.
    """

    def __init__(self, store: SmartStore, seed: Optional[int] = None) -> None:
        self.store = store
        self.rng = np.random.default_rng(seed)
        self._failed: Set[int] = set()

    # ------------------------------------------------------------------ crash / recover
    @property
    def failed_units(self) -> Set[int]:
        """The currently crashed storage units."""
        return set(self._failed)

    def is_alive(self, unit_id: int) -> bool:
        return unit_id not in self._failed

    def crash_unit(self, unit_id: int) -> None:
        """Mark ``unit_id`` as crashed."""
        if unit_id not in self.store.cluster.servers:
            raise KeyError(f"unknown storage unit {unit_id}")
        self._failed.add(unit_id)

    def crash_units(self, unit_ids: Iterable[int]) -> None:
        for unit_id in unit_ids:
            self.crash_unit(unit_id)

    def crash_random_units(self, count: int) -> List[int]:
        """Crash ``count`` distinct, currently alive units chosen at random."""
        alive = [u for u in self.store.cluster.unit_ids() if u not in self._failed]
        if count > len(alive):
            raise ValueError(
                f"cannot crash {count} units, only {len(alive)} are still alive"
            )
        chosen = [int(u) for u in self.rng.choice(alive, size=count, replace=False)]
        self._failed.update(chosen)
        return chosen

    def recover_unit(self, unit_id: int) -> None:
        """Bring a crashed unit back."""
        self._failed.discard(unit_id)

    def recover_all(self) -> None:
        self._failed.clear()

    # ------------------------------------------------------------------ availability analysis
    def _root_hosts(self) -> List[int]:
        root = self.store.tree.root
        hosts = []
        if root.hosted_on is not None:
            hosts.append(root.hosted_on)
        hosts.extend(root.replica_hosts)
        return hosts

    def root_reachable(self) -> bool:
        """True when at least one root host (primary or replica) is alive."""
        return any(h not in self._failed for h in self._root_hosts())

    def _index_units_lost_host(self) -> List[SemanticNode]:
        return [
            node
            for node in self.store.tree.index_units()
            if node.hosted_on is not None and node.hosted_on in self._failed
        ]

    def availability_report(self) -> AvailabilityReport:
        """Summarise what the injected failures cost the deployment."""
        cluster = self.store.cluster
        total_files = cluster.total_files()
        lost_files = sum(
            len(cluster.server(u)) for u in self._failed if u in cluster.servers
        )
        available = (total_files - lost_files) / total_files if total_files else 1.0

        lost_host = self._index_units_lost_host()
        rehostable = 0
        for node in lost_host:
            survivors = [u for u in node.descendant_unit_ids() if u not in self._failed]
            if node is self.store.tree.root:
                # The root can also fail over to any of its §4.3 replicas.
                if self.root_reachable() or survivors:
                    rehostable += 1
            elif survivors:
                rehostable += 1

        orphaned = sum(
            1
            for group in self.store.tree.first_level_groups()
            if group.descendant_unit_ids()
            and all(u in self._failed for u in group.descendant_unit_ids())
        )
        return AvailabilityReport(
            failed_units=len(self._failed),
            alive_units=cluster.num_units - len(self._failed),
            file_availability=available,
            root_reachable=self.root_reachable(),
            index_units_lost_host=len(lost_host),
            index_units_rehostable=rehostable,
            orphaned_groups=orphaned,
        )

    # ------------------------------------------------------------------ root failover (§4.3)
    def root_failover(self) -> RootFailoverReport:
        """Promote a surviving root replica when the primary host is down.

        The promotion multicasts the new primary's identity to every
        first-level group (one message each) plus one message per surviving
        replica to refresh its view.  The deployment's tree is updated in
        place (``root.hosted_on``) because a promotion is a real
        configuration change, unlike the crash overlay.
        """
        root = self.store.tree.root
        old_host = root.hosted_on
        if old_host is None or old_host not in self._failed:
            return RootFailoverReport(failed_over=False, old_host=old_host, new_host=old_host, messages=0)

        candidates = [h for h in root.replica_hosts if h not in self._failed]
        if not candidates:
            # Last resort: any alive unit can recompute the root from the
            # surviving first-level groups.
            candidates = [u for u in self.store.cluster.unit_ids() if u not in self._failed]
        if not candidates:
            return RootFailoverReport(failed_over=False, old_host=old_host, new_host=None, messages=0)

        new_host = int(candidates[0])
        metrics = Metrics()
        groups = self.store.tree.first_level_groups()
        metrics.record_message(len(groups))
        metrics.record_message(max(0, len(root.replica_hosts) - 1))
        self.store.cluster.metrics.merge(metrics)

        root.hosted_on = new_host
        if new_host in root.replica_hosts:
            root.replica_hosts = [h for h in root.replica_hosts if h != new_host]
        return RootFailoverReport(
            failed_over=True, old_host=old_host, new_host=new_host, messages=metrics.messages
        )

    # ------------------------------------------------------------------ degraded queries
    def unit_of_file(self, file: FileMetadata) -> Optional[int]:
        """The storage unit currently holding ``file``, if known."""
        return self.store._file_locations.get(file.file_id)

    def run_degraded_query(self, query: Query) -> DegradedQueryResult:
        """Execute ``query`` and split its results into reachable and lost."""
        result = self.store.execute(query)
        available: List[FileMetadata] = []
        lost: List[FileMetadata] = []
        for f in result.files:
            owner = self.unit_of_file(f)
            if owner is not None and owner in self._failed:
                lost.append(f)
            else:
                available.append(f)
        return DegradedQueryResult(result=result, available_files=available, lost_files=lost)

    def degraded_recall(
        self,
        queries: Sequence[Query],
        ideal_population: Optional[Sequence[FileMetadata]] = None,
    ) -> float:
        """Mean fraction of ideal results still reachable across ``queries``.

        ``ideal_population`` defaults to the deployment's file population;
        only complex queries contribute (point queries are binary).
        """
        from repro.eval.recall import ground_truth_range, ground_truth_topk, recall

        population = list(ideal_population) if ideal_population is not None else self.store.files
        values: List[float] = []
        for query in queries:
            if isinstance(query, RangeQuery):
                ideal = ground_truth_range(population, query)
            elif isinstance(query, TopKQuery):
                ideal = ground_truth_topk(
                    population,
                    query,
                    self.store.schema,
                    raw_lower=self.store.index_lower,
                    raw_upper=self.store.index_upper,
                )
            else:
                continue
            if not ideal:
                continue
            degraded = self.run_degraded_query(query)
            values.append(recall(degraded.available_files, ideal))
        return float(np.mean(values)) if values else 1.0

    def __repr__(self) -> str:
        return (
            f"FailureInjector(failed={sorted(self._failed)}, "
            f"alive={self.store.cluster.num_units - len(self._failed)})"
        )


# ---------------------------------------------------------------------------- real deployments
@dataclass(frozen=True)
class FailoverDrillReport:
    """Outcome of a kill-every-primary storm against a real deployment.

    Attributes
    ----------
    groups / primaries_killed / failovers:
        Replica groups drilled, primaries crashed, promotions that
        actually happened (reads route around a dead primary without
        promoting; only the write path forces a promotion).
    queries_served / failed_requests:
        Post-kill queries attempted and how many raised — the availability
        claim is ``failed_requests == 0``.
    degraded_reads:
        Reads served while part of a group was unhealthy (skipped or
        retried past a breaker) during the storm.
    identical:
        True when every post-kill answer was byte-identical to its
        pre-kill fingerprint.
    """

    groups: int
    primaries_killed: int
    failovers: int
    queries_served: int
    failed_requests: int
    degraded_reads: int
    identical: bool

    def as_dict(self) -> Dict[str, float]:
        return {
            "groups": self.groups,
            "primaries_killed": self.primaries_killed,
            "failovers": self.failovers,
            "queries_served": self.queries_served,
            "failed_requests": self.failed_requests,
            "degraded_reads": self.degraded_reads,
            "identical": float(self.identical),
        }


def run_failover_drill(deployment, queries: Sequence[Query]) -> FailoverDrillReport:
    """Crash every primary of a *real* replicated deployment, then re-ask.

    ``deployment`` is a replication-enabled
    :class:`~repro.shard.router.ShardRouter` or a bare
    :class:`~repro.replication.group.ReplicaGroup`.  Unlike the overlay
    methods above, this drill flips fault state on live replica objects via
    :class:`~repro.replication.fault.FaultInjector`, so promotion, breaker
    transitions and catch-up all genuinely execute.  The drill records
    every query's fingerprint before the storm, kills the primaries, asks
    again, and reports availability and equivalence.  The crashed
    ex-primaries are recovered (and reintegrated) before returning, so the
    deployment is reusable afterwards.
    """
    # Local imports: the replication layer sits above this module.
    from repro.replication.fault import FaultInjector
    from repro.service.cache import result_fingerprint

    injector = FaultInjector(deployment)
    groups = injector.groups

    before = [result_fingerprint(deployment.execute(q)) for q in queries]
    degraded_base = sum(g.degraded_reads for g in groups)
    killed = injector.crash_primary()

    after: List[Optional[str]] = []
    failed = 0
    for query in queries:
        try:
            after.append(result_fingerprint(deployment.execute(query)))
        except Exception:
            after.append(None)
            failed += 1

    report = FailoverDrillReport(
        groups=len(groups),
        primaries_killed=len(killed),
        failovers=sum(g.failovers for g in groups),
        queries_served=len(queries),
        failed_requests=failed,
        degraded_reads=sum(g.degraded_reads for g in groups) - degraded_base,
        identical=after == before,
    )
    for gid, replica_id in enumerate(killed):
        injector.recover(gid, replica_id)
    return report
