"""The cluster simulator: servers + network + shared metrics.

:class:`ClusterSimulator` is the stand-in for the paper's 60-node testbed.
It owns the storage servers, the message-accounting network, the shared
metrics object and the random source used to pick "home units" (queries are
initially sent to a random storage unit, §2.2).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.metrics import Metrics
from repro.cluster.network import Network
from repro.cluster.node import StorageServer
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA

__all__ = ["ClusterSimulator"]


class ClusterSimulator:
    """A collection of simulated metadata servers.

    Parameters
    ----------
    num_units:
        Number of storage units / servers (60 in the paper's evaluation).
    schema:
        Attribute schema shared across the deployment.
    cost_model:
        Hardware cost constants used when reporting simulated latency.
    seed:
        Seed for the home-unit selection and any other randomised choice.
    """

    def __init__(
        self,
        num_units: int,
        schema: AttributeSchema = DEFAULT_SCHEMA,
        *,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        seed: Optional[int] = None,
        bloom_bits: int = 1024,
        bloom_hashes: int = 7,
    ) -> None:
        if num_units < 1:
            raise ValueError(f"num_units must be >= 1, got {num_units}")
        self.schema = schema
        self.cost_model = cost_model
        self.metrics = Metrics()
        self.network = Network(self.metrics)
        self.rng = np.random.default_rng(seed)
        self.servers: Dict[int, StorageServer] = {
            unit_id: StorageServer(
                unit_id, schema, bloom_bits=bloom_bits, bloom_hashes=bloom_hashes
            )
            for unit_id in range(num_units)
        }

    # ------------------------------------------------------------------ access
    @property
    def num_units(self) -> int:
        return len(self.servers)

    def server(self, unit_id: int) -> StorageServer:
        return self.servers[unit_id]

    def __iter__(self) -> Iterator[StorageServer]:
        return iter(self.servers.values())

    def unit_ids(self) -> List[int]:
        return sorted(self.servers.keys())

    def random_home_unit(self) -> int:
        """Pick the storage unit a user request is initially sent to."""
        ids = self.unit_ids()
        return int(ids[self.rng.integers(len(ids))])

    # ------------------------------------------------------------------ configuration
    def install_normalization(self, lower: np.ndarray, upper: np.ndarray) -> None:
        """Install deployment-wide normalisation bounds on every server."""
        for server in self.servers.values():
            server.set_normalization(lower, upper)

    # ------------------------------------------------------------------ accounting helpers
    def total_files(self) -> int:
        return sum(len(s) for s in self.servers.values())

    def space_bytes_per_unit(self) -> Dict[int, int]:
        """Bytes of metadata + local index state per server (Figure 7 input)."""
        return {uid: s.space_bytes(self.cost_model) for uid, s in self.servers.items()}

    def snapshot_metrics(self) -> Metrics:
        """Copy of the accumulated metrics (e.g. before running a query)."""
        return self.metrics.copy()

    def reset_metrics(self) -> None:
        self.metrics.reset()

    def latency(self) -> float:
        """Simulated latency of everything recorded so far, in seconds."""
        return self.metrics.latency(self.cost_model)
