"""Event counters shared by SmartStore, the baselines and the query engines.

A :class:`Metrics` instance counts *what happened* (messages sent, servers
visited, index nodes probed, records scanned); the
:class:`~repro.cluster.costmodel.CostModel` converts the counts into
simulated seconds.  Keeping the two separate lets one run of a workload be
re-costed under different hardware assumptions without re-executing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Set

from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL

__all__ = ["Metrics"]


@dataclass
class Metrics:
    """Mutable event counters for one query or one whole workload.

    Attributes
    ----------
    messages:
        Total inter-server messages (each one is a network hop).
    units_visited:
        Identifiers of the distinct storage units that did local work.
    memory_index_accesses / disk_index_accesses:
        Index-node probes charged at memory / disk speed.
    memory_records_scanned / disk_records_scanned:
        Metadata records inspected at memory / disk speed.
    bloom_probes:
        Bloom-filter membership checks (charged as memory index accesses,
        tracked separately because Figure 9 reports on them).
    """

    messages: int = 0
    units_visited: Set[int] = field(default_factory=set)
    memory_index_accesses: int = 0
    disk_index_accesses: int = 0
    memory_records_scanned: int = 0
    disk_records_scanned: int = 0
    bloom_probes: int = 0

    # ------------------------------------------------------------------ recording
    def record_message(self, count: int = 1) -> None:
        """Record ``count`` point-to-point messages."""
        if count < 0:
            raise ValueError("message count must be non-negative")
        self.messages += count

    def record_unit_visit(self, unit_id: int) -> None:
        """Record that storage unit ``unit_id`` performed local work."""
        self.units_visited.add(unit_id)

    def record_index_access(self, count: int = 1, *, on_disk: bool = False) -> None:
        """Record index-node probes (memory by default)."""
        if on_disk:
            self.disk_index_accesses += count
        else:
            self.memory_index_accesses += count

    def record_scan(self, count: int, *, on_disk: bool = False) -> None:
        """Record ``count`` metadata records inspected."""
        if on_disk:
            self.disk_records_scanned += count
        else:
            self.memory_records_scanned += count

    def record_bloom_probe(self, count: int = 1) -> None:
        """Record Bloom-filter membership checks."""
        self.bloom_probes += count
        self.memory_index_accesses += count

    # ------------------------------------------------------------------ aggregation
    def merge(self, other: "Metrics") -> None:
        """Accumulate another metrics object into this one (in place)."""
        self.messages += other.messages
        self.units_visited |= other.units_visited
        self.memory_index_accesses += other.memory_index_accesses
        self.disk_index_accesses += other.disk_index_accesses
        self.memory_records_scanned += other.memory_records_scanned
        self.disk_records_scanned += other.disk_records_scanned
        self.bloom_probes += other.bloom_probes

    def copy(self) -> "Metrics":
        clone = Metrics()
        clone.merge(self)
        return clone

    def reset(self) -> None:
        """Zero every counter."""
        self.messages = 0
        self.units_visited = set()
        self.memory_index_accesses = 0
        self.disk_index_accesses = 0
        self.memory_records_scanned = 0
        self.disk_records_scanned = 0
        self.bloom_probes = 0

    # ------------------------------------------------------------------ derived values
    @property
    def hops(self) -> int:
        """Routing distance: messages needed beyond the home unit.

        Figure 8 reports the distribution of this value; a query answered
        entirely by the home unit has 0 hops.
        """
        return self.messages

    def latency(self, cost_model: CostModel = DEFAULT_COST_MODEL) -> float:
        """Simulated latency in seconds under ``cost_model``."""
        return (
            self.messages * cost_model.network_hop_latency
            + self.memory_index_accesses * cost_model.memory_index_access
            + self.disk_index_accesses * cost_model.disk_index_access
            + self.memory_records_scanned * cost_model.memory_record_scan
            + self.disk_records_scanned * cost_model.disk_record_scan
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict snapshot (for reporting and tests)."""
        return {
            "messages": self.messages,
            "units_visited": len(self.units_visited),
            "memory_index_accesses": self.memory_index_accesses,
            "disk_index_accesses": self.disk_index_accesses,
            "memory_records_scanned": self.memory_records_scanned,
            "disk_records_scanned": self.disk_records_scanned,
            "bloom_probes": self.bloom_probes,
        }

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"Metrics({parts})"
