"""A simulated metadata server hosting one storage unit.

Each storage unit (a leaf of the semantic R-tree) lives on one metadata
server.  The server keeps its local metadata in three dense numpy layouts:

* the **raw** attribute matrix (natural units, what gets returned to users);
* the **index-space** matrix — wide-range attributes (sizes, byte volumes)
  are ``log1p``-transformed so that MBRs, range pruning and distances are
  not dominated by a handful of huge values; min-max normalisation,
  grouping and MBR geometry all operate in this space (the transform is
  monotone per dimension, so range predicates translate exactly);
* the **normalised** index-space matrix (deployment-wide min-max bounds),
  used for top-k distance computation.

Every scan reports the number of records inspected to the shared
:class:`~repro.cluster.metrics.Metrics` object so the cost model can charge
it; SmartStore's units are memory-resident (``on_disk=False``) while the
baselines charge their scans to disk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bloom.bloom import BloomFilter
from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.metrics import Metrics
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.rtree.mbr import MBR

__all__ = ["StorageServer"]


class StorageServer:
    """One simulated metadata server / storage unit.

    Parameters
    ----------
    unit_id:
        Identifier of the storage unit this server hosts.
    schema:
        Attribute schema shared by the whole deployment (its ``log_scale``
        flags define the index-space transform).
    bloom_bits, bloom_hashes:
        Bloom-filter parameters (1024 bits / 7 hashes in the prototype).
    """

    def __init__(
        self,
        unit_id: int,
        schema: AttributeSchema = DEFAULT_SCHEMA,
        *,
        bloom_bits: int = 1024,
        bloom_hashes: int = 7,
    ) -> None:
        self.unit_id = unit_id
        self.schema = schema
        self.files: List[FileMetadata] = []
        self.bloom = BloomFilter(bloom_bits, bloom_hashes)
        self._log_mask = np.array(schema.log_scale_mask(), dtype=bool)
        self._matrix: Optional[np.ndarray] = None        # raw attribute rows
        self._index_matrix: Optional[np.ndarray] = None  # log-transformed rows
        self._norm_matrix: Optional[np.ndarray] = None   # normalised index-space rows
        self._file_ids: Optional[np.ndarray] = None      # row-aligned file ids
        self._norm_lower: Optional[np.ndarray] = None
        self._norm_upper: Optional[np.ndarray] = None
        self._dirty = True
        self._by_filename: Dict[str, List[FileMetadata]] = {}

    # ------------------------------------------------------------------ content management
    def __len__(self) -> int:
        return len(self.files)

    def add_file(self, file: FileMetadata) -> None:
        """Add one metadata record to this unit."""
        self.files.append(file)
        self.bloom.add(file.filename)
        self._by_filename.setdefault(file.filename, []).append(file)
        self._dirty = True

    def add_files(self, files: Sequence[FileMetadata]) -> None:
        """Add many metadata records."""
        for f in files:
            self.add_file(f)

    def remove_file(self, file_id: int) -> Optional[FileMetadata]:
        """Remove a record by file id.

        The Bloom filter is *not* rebuilt (plain Bloom filters cannot
        delete); stale positives are caught when the target metadata is
        accessed, exactly as §5.4.1 describes.
        """
        for i, f in enumerate(self.files):
            if f.file_id == file_id:
                removed = self.files.pop(i)
                bucket = self._by_filename.get(removed.filename, [])
                self._by_filename[removed.filename] = [x for x in bucket if x.file_id != file_id]
                self._dirty = True
                return removed
        return None

    def set_normalization(self, lower: np.ndarray, upper: np.ndarray) -> None:
        """Install the deployment-wide index-space normalisation bounds.

        All servers must share the same bounds so that normalised distances
        are comparable across units.
        """
        self._norm_lower = np.asarray(lower, dtype=np.float64)
        self._norm_upper = np.asarray(upper, dtype=np.float64)
        self._dirty = True

    def _to_index_space(self, matrix: np.ndarray) -> np.ndarray:
        out = matrix.copy()
        if self._log_mask.any():
            out[:, self._log_mask] = np.log1p(np.maximum(out[:, self._log_mask], 0.0))
        return out

    def _rebuild(self) -> None:
        if not self._dirty:
            return
        if self.files:
            self._matrix = np.vstack([f.vector(self.schema) for f in self.files])
            self._index_matrix = self._to_index_space(self._matrix)
            self._file_ids = np.asarray([f.file_id for f in self.files], dtype=np.int64)
            if self._norm_lower is not None and self._norm_upper is not None:
                span = self._norm_upper - self._norm_lower
                safe = np.where(span > 0, span, 1.0)
                norm = (self._index_matrix - self._norm_lower) / safe
                np.clip(norm, 0.0, 1.0, out=norm)
                self._norm_matrix = norm
            else:
                self._norm_matrix = None
        else:
            empty = np.empty((0, self.schema.dimension))
            self._matrix = empty
            self._index_matrix = empty.copy()
            self._norm_matrix = empty.copy()
            self._file_ids = np.empty(0, dtype=np.int64)
        self._dirty = False

    # ------------------------------------------------------------------ summaries
    def matrix(self) -> np.ndarray:
        """Raw ``(n_local, D)`` attribute matrix of the unit's files."""
        self._rebuild()
        return self._matrix

    def index_matrix(self) -> np.ndarray:
        """Index-space (log-transformed) attribute matrix."""
        self._rebuild()
        return self._index_matrix

    def normalized_matrix(self) -> np.ndarray:
        """Normalised index-space matrix (requires :meth:`set_normalization`)."""
        self._rebuild()
        if self._norm_matrix is None:
            raise RuntimeError("normalisation bounds have not been installed on this server")
        return self._norm_matrix

    def mbr(self) -> Optional[MBR]:
        """MBR of the unit's files in index space (None when empty)."""
        self._rebuild()
        if len(self.files) == 0:
            return None
        return MBR.from_points(self._index_matrix)

    def centroid(self) -> Optional[np.ndarray]:
        """Centroid of the unit's files in index space."""
        self._rebuild()
        if len(self.files) == 0:
            return None
        return self._index_matrix.mean(axis=0)

    def filenames(self) -> List[str]:
        return [f.filename for f in self.files]

    # ------------------------------------------------------------------ local query execution
    def scan_range(
        self,
        attr_indices: Sequence[int],
        lower: Sequence[float],
        upper: Sequence[float],
        metrics: Optional[Metrics] = None,
        *,
        on_disk: bool = False,
    ) -> List[FileMetadata]:
        """Vectorised range filter over the unit's local records.

        ``lower`` and ``upper`` must already be expressed in index space
        (the caller applies the monotone log transform to the user's raw
        bounds); ``attr_indices`` selects which schema attributes are
        constrained — unconstrained attributes match everything.
        """
        self._rebuild()
        metrics = metrics if metrics is not None else Metrics()
        n = len(self.files)
        metrics.record_unit_visit(self.unit_id)
        metrics.record_scan(n, on_disk=on_disk)
        if n == 0:
            return []
        cols = self._index_matrix[:, list(attr_indices)]
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        mask = np.all((cols >= lower) & (cols <= upper), axis=1)
        return [self.files[i] for i in np.nonzero(mask)[0]]

    def scan_knn(
        self,
        query_norm: np.ndarray,
        k: int,
        metrics: Optional[Metrics] = None,
        *,
        attr_indices: Optional[Sequence[int]] = None,
        on_disk: bool = False,
    ) -> List[Tuple[float, FileMetadata]]:
        """Local top-k candidates by Euclidean distance in normalised index space.

        ``query_norm`` must already be normalised with the deployment-wide
        bounds; when ``attr_indices`` is given the distance only considers
        those attributes (queries may constrain a subset of dimensions).

        Candidates are ordered by ``(distance, file_id)`` and the cut at
        ``k`` keeps every record tying the k-th smallest distance in
        contention before that ordering truncates — so the returned set is
        a pure function of the unit's *contents*, never of record
        insertion order.  Placement-independent tie handling here is what
        lets two deployments with different physical layouts (or a sharded
        deployment and its unsharded baseline) return byte-identical top-k
        results.
        """
        self._rebuild()
        metrics = metrics if metrics is not None else Metrics()
        n = len(self.files)
        metrics.record_unit_visit(self.unit_id)
        metrics.record_scan(n, on_disk=on_disk)
        if n == 0:
            return []
        if self._norm_matrix is None:
            raise RuntimeError("normalisation bounds have not been installed on this server")
        query_norm = np.asarray(query_norm, dtype=np.float64)
        if attr_indices is not None:
            data = self._norm_matrix[:, list(attr_indices)]
        else:
            data = self._norm_matrix
        deltas = data - query_norm[None, :]
        dists = np.sqrt(np.sum(deltas * deltas, axis=1))
        k = min(k, n)
        part = np.argpartition(dists, k - 1)[:k]
        kth = dists[part].max()
        # Tie-stable cut: identical attribute values produce bit-identical
        # distances, so `<= kth` re-admits every record tying the k-th best
        # before the canonical (distance, file_id) order truncates.
        eligible = np.nonzero(dists <= kth)[0]
        order = np.lexsort((self._file_ids[eligible], dists[eligible]))
        top = eligible[order[:k]]
        return [(float(dists[i]), self.files[i]) for i in top]

    def lookup_filename(
        self,
        filename: str,
        metrics: Optional[Metrics] = None,
        *,
        on_disk: bool = False,
    ) -> List[FileMetadata]:
        """Exact filename lookup against the local records.

        The Bloom-filter check that routed the query here is charged by the
        caller; this method charges the local verification access.
        """
        metrics = metrics if metrics is not None else Metrics()
        metrics.record_unit_visit(self.unit_id)
        matches = self._by_filename.get(filename, [])
        metrics.record_scan(max(1, len(matches)), on_disk=on_disk)
        return list(matches)

    # ------------------------------------------------------------------ space accounting
    def space_bytes(self, cost_model: CostModel = DEFAULT_COST_MODEL) -> int:
        """Bytes of metadata and local index state hosted by this server."""
        return len(self.files) * cost_model.metadata_record_bytes + self.bloom.size_bytes()

    def __repr__(self) -> str:
        return f"StorageServer(unit_id={self.unit_id}, files={len(self.files)})"
