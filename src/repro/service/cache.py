"""Result caching for the query service.

Two cooperating structures:

* a **positive LRU cache** keyed by the (hashable, frozen) query objects of
  :mod:`repro.workloads.types`, holding the full :class:`QueryResult` of a
  previous execution;
* a **negative cache** for filename point-query *misses*: a Bloom filter
  (reusing :mod:`repro.bloom`) fronts an exact set of missed filenames.  The
  filter answers "was this filename ever recorded as a miss?" in O(k) bit
  probes and, because Bloom filters have no false negatives, a filter miss
  skips the set lookup entirely.  The exact set is what makes the answer
  *safe*: a Bloom false positive alone never turns into a wrong "not found"
  answer.

Both structures are versioning-aware: the cache subscribes to the
deployment's :class:`~repro.core.versioning.VersioningManager`, so any
recorded metadata change (insert/delete/modify) or reconfiguration flushes
every cached entry.  Flushing (rather than surgical invalidation) is the
only always-correct policy — an insertion can change the answer of any
range, top-k or previously-missing point query.

Cache hits are re-costed: the returned :class:`QueryResult` carries the
original result payload (files, distances, found) but fresh
:class:`~repro.cluster.metrics.Metrics` describing the *cost of serving
from the cache* (one in-memory index probe; plus the Bloom probe for
negative hits), so service telemetry reflects what the cluster actually did.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Set

from repro.bloom.bloom import BloomFilter
from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.metrics import Metrics
from repro.core.queries import QueryResult
from repro.core.versioning import VersioningManager
from repro.workloads.types import PointQuery, Query

__all__ = ["CacheHit", "CacheStats", "ResultCache", "result_fingerprint"]


def result_fingerprint(result: QueryResult) -> str:
    """Stable digest of a query result's *payload*.

    Covers the matched files (path, id and attribute values), the found
    flag and the top-k distances — everything a client observes — while
    excluding the cost-accounting fields (metrics, latency, hops), which
    legitimately differ between a cache hit and an engine execution.  Used
    by the equivalence tests and the ``serve-bench`` verification step.
    """
    h = hashlib.sha256()
    # Every field is terminated by a separator byte that cannot occur in
    # the field itself, so adjacent fields can never be re-segmented into
    # a colliding concatenation (path="a",id=12 vs path="a1",id=2).
    h.update(b"found=1\x1f" if result.found else b"found=0\x1f")
    for f in result.files:
        h.update(f.path.encode("utf-8") + b"\x1f")
        h.update(str(f.file_id).encode("ascii") + b"\x1f")
        for name in sorted(f.attributes):
            h.update(f"{name}={f.attributes[name]!r}\x1f".encode("utf-8"))
        h.update(b"\x1e")  # record separator between files
    for d in result.distances:
        h.update(f"{d:.12g}\x1f".encode("ascii"))
    return h.hexdigest()


@dataclass(frozen=True)
class CacheHit:
    """A successful lookup: the serving result and which side answered.

    ``source`` is ``"cache"`` (positive LRU) or ``"negative"`` (Bloom-backed
    miss cache) — telemetry keeps the two apart.
    """

    result: QueryResult
    source: str


@dataclass
class CacheStats:
    """Hit/miss accounting of the result cache."""

    hits: int = 0
    misses: int = 0
    negative_hits: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    stale_drops: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.negative_hits + self.misses

    @property
    def hit_rate(self) -> float:
        served = self.hits + self.negative_hits
        return served / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "negative_hits": self.negative_hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "stale_drops": self.stale_drops,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """Versioning-aware LRU + negative result cache.

    Parameters
    ----------
    capacity:
        Maximum number of positive entries (least recently used evicted).
    negative_capacity:
        Maximum number of filenames remembered as misses; reaching it
        resets the negative side (Bloom filters cannot delete).
    negative_bits / negative_hashes:
        Bloom-filter geometry of the negative cache front.
    versioning:
        When given, the cache subscribes to it and flushes on every
        metadata mutation and reconfiguration.
    cost_model:
        Used to price cache-hit serving (memory probe / Bloom probe).
    """

    def __init__(
        self,
        capacity: int = 2048,
        *,
        negative_capacity: int = 8192,
        negative_bits: int = 8192,
        negative_hashes: int = 5,
        versioning: Optional[VersioningManager] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if negative_capacity < 1:
            raise ValueError(f"negative_capacity must be >= 1, got {negative_capacity}")
        self.capacity = capacity
        self.negative_capacity = negative_capacity
        self.cost_model = cost_model
        self._lru: "OrderedDict[Query, QueryResult]" = OrderedDict()
        self._neg_bloom = BloomFilter(negative_bits, negative_hashes)
        self._neg_filenames: Set[str] = set()
        self._lock = threading.Lock()
        self.stats = CacheStats()
        self._versioning = versioning
        if versioning is not None:
            versioning.subscribe(self.invalidate)

    # ------------------------------------------------------------------ serving
    def _hit_result(self, cached: QueryResult, *, bloom_probe: bool = False) -> QueryResult:
        """A serving copy of ``cached``: same payload, cache-hit cost."""
        metrics = Metrics()
        metrics.record_index_access()
        if bloom_probe:
            metrics.record_bloom_probe()
        return QueryResult(
            files=list(cached.files),
            metrics=metrics,
            latency=metrics.latency(self.cost_model),
            groups_visited=0,
            hops=0,
            found=cached.found,
            distances=list(cached.distances),
        )

    def _negative_result(self) -> QueryResult:
        metrics = Metrics()
        metrics.record_bloom_probe()
        return QueryResult(
            files=[],
            metrics=metrics,
            latency=metrics.latency(self.cost_model),
            groups_visited=0,
            hops=0,
            found=False,
            distances=[],
        )

    def lookup(self, query: Query) -> Optional[CacheHit]:
        """The cached result for ``query``, or ``None`` on a cache miss."""
        with self._lock:
            cached = self._lru.get(query)
            if cached is not None:
                self._lru.move_to_end(query)
                self.stats.hits += 1
                return CacheHit(self._hit_result(cached), "cache")
            if isinstance(query, PointQuery):
                # Bloom front: no false negatives, so a filter miss proves
                # the filename was never recorded; the exact set guards
                # against the filter's false positives.
                if (
                    self._neg_bloom.contains(query.filename)
                    and query.filename in self._neg_filenames
                ):
                    self.stats.negative_hits += 1
                    return CacheHit(self._negative_result(), "negative")
            self.stats.misses += 1
            return None

    # ------------------------------------------------------------------ population
    def store(
        self, query: Query, result: QueryResult, *, epoch: Optional[int] = None
    ) -> None:
        """Remember an engine execution's outcome.

        ``epoch`` is the versioning change clock observed *before* the
        execution started.  If the clock has advanced since, the result was
        computed against a state that has already been mutated (and the
        mutation's invalidation flush may have run before this store) — the
        stale result is dropped instead of poisoning the flushed cache.
        """
        with self._lock:
            if (
                epoch is not None
                and self._versioning is not None
                and self._versioning.change_clock != epoch
            ):
                self.stats.stale_drops += 1
                return
            if isinstance(query, PointQuery) and not result.found:
                if len(self._neg_filenames) >= self.negative_capacity:
                    self._neg_bloom.clear()
                    self._neg_filenames.clear()
                self._neg_bloom.add(query.filename)
                self._neg_filenames.add(query.filename)
                self.stats.insertions += 1
                return
            self._lru[query] = result
            self._lru.move_to_end(query)
            self.stats.insertions += 1
            while len(self._lru) > self.capacity:
                self._lru.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self) -> None:
        """Flush everything (called on every versioning mutation).

        Only flushes that actually clear entries are counted: the
        versioning manager notifies on every recorded change, and a burst
        of mutations against an already-empty cache is a no-op that must
        not inflate the telemetry's flush count.
        """
        with self._lock:
            if self._lru or self._neg_filenames:
                self._lru.clear()
                self._neg_bloom.clear()
                self._neg_filenames.clear()
                self.stats.invalidations += 1

    def detach(self) -> None:
        """Unsubscribe from the versioning manager (service shutdown)."""
        if self._versioning is not None:
            self._versioning.unsubscribe(self.invalidate)

    # ------------------------------------------------------------------ introspection
    def __len__(self) -> int:
        return len(self._lru)

    @property
    def negative_size(self) -> int:
        return len(self._neg_filenames)

    def __repr__(self) -> str:
        return (
            f"ResultCache(entries={len(self._lru)}/{self.capacity}, "
            f"negative={len(self._neg_filenames)}/{self.negative_capacity}, "
            f"hit_rate={self.stats.hit_rate:.3f})"
        )
