"""The query-service subsystem: serving semantics over a built SmartStore.

``repro.service`` turns the library facade into a service:

``repro.service.service``
    :class:`QueryService` — concurrent request execution with deterministic
    per-request seeds/home units, plus :class:`ServiceConfig`.
``repro.service.cache``
    :class:`ResultCache` — versioning-aware LRU for positive results and a
    Bloom-backed negative cache for point-query misses.
``repro.service.batching``
    :class:`RequestBatcher` (windowing + coalescing of identical queries)
    and :class:`AdmissionController` (bounded in-flight window).
``repro.service.telemetry``
    :class:`ServiceTelemetry` — per-query-type throughput and p50/p95/p99
    simulated-latency aggregation on top of the cluster metrics.
``repro.service.loadgen``
    :class:`LoadGenerator` — open- and closed-loop clients driving the
    service from synthetic workloads or trace-replay access streams.
"""

from repro.service.batching import (
    AdmissionController,
    RequestBatcher,
    ServiceOverloadedError,
    ServiceRequest,
)
from repro.service.cache import CacheHit, CacheStats, ResultCache, result_fingerprint
from repro.service.loadgen import (
    LoadGenerator,
    LoadReport,
    repeated_stream,
    replay_point_stream,
)
from repro.service.service import QueryService, ServiceConfig
from repro.service.telemetry import (
    MUTATION_KINDS,
    QUERY_KINDS,
    QueryClassStats,
    ServiceTelemetry,
    kind_of,
)

__all__ = [
    "AdmissionController",
    "CacheHit",
    "CacheStats",
    "MUTATION_KINDS",
    "QUERY_KINDS",
    "LoadGenerator",
    "LoadReport",
    "QueryClassStats",
    "QueryService",
    "RequestBatcher",
    "ResultCache",
    "ServiceConfig",
    "ServiceOverloadedError",
    "ServiceRequest",
    "ServiceTelemetry",
    "kind_of",
    "repeated_stream",
    "replay_point_stream",
    "result_fingerprint",
]
