"""Service-level telemetry: throughput and latency percentiles per query type.

The cluster-level :class:`~repro.cluster.metrics.Metrics` counts *events*
(messages, probes, scans) for one query or one whole workload; the service
telemetry aggregates **per-query-type distributions** on top of it:

* request counts, split into engine executions, positive/negative cache
  hits and coalesced rides;
* simulated-latency percentiles (p50/p95/p99) and means;
* a merged :class:`Metrics` per query type (so the event counters of the
  whole service run stay available);
* wall-clock throughput over the measurement window.

Simulated latency distributions are deterministic for a given workload and
service seed (execution order does not change any request's simulated
cost); the wall-clock figures are whatever the host delivered.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.metrics import Metrics
from repro.obs import get_registry
from repro.workloads.types import PointQuery, Query, RangeQuery, TopKQuery

__all__ = [
    "QUERY_KINDS",
    "MUTATION_KINDS",
    "NetworkStats",
    "QueryClassStats",
    "ServiceTelemetry",
    "kind_of",
]

#: Telemetry classes, in reporting order.
QUERY_KINDS = ("point", "range", "topk")

#: Mutation classes (the ingest path through the service).
MUTATION_KINDS = ("insert", "delete", "modify")

#: Percentiles reported for every query class.
PERCENTILES = (50.0, 95.0, 99.0)


def kind_of(query: Query) -> str:
    """Telemetry class of a query object."""
    if isinstance(query, PointQuery):
        return "point"
    if isinstance(query, RangeQuery):
        return "range"
    if isinstance(query, TopKQuery):
        return "topk"
    raise TypeError(f"unsupported query type {type(query)!r}")


@dataclass
class QueryClassStats:
    """Aggregated statistics of one query type."""

    kind: str
    count: int = 0
    engine_executions: int = 0
    cache_hits: int = 0
    negative_hits: int = 0
    coalesced: int = 0
    latencies: List[float] = field(default_factory=list)
    metrics: Metrics = field(default_factory=Metrics)

    # ------------------------------------------------------------------ recording
    def observe(
        self,
        latency: float,
        metrics: Optional[Metrics] = None,
        *,
        source: str = "engine",
    ) -> None:
        """Record one served request.

        ``source`` is ``"engine"``, ``"cache"``, ``"negative"`` or
        ``"coalesced"``.
        """
        self.count += 1
        self.latencies.append(latency)
        if metrics is not None:
            self.metrics.merge(metrics)
        if source == "engine":
            self.engine_executions += 1
        elif source == "cache":
            self.cache_hits += 1
        elif source == "negative":
            self.negative_hits += 1
        elif source == "coalesced":
            self.coalesced += 1
        else:
            raise ValueError(f"unknown request source {source!r}")

    # ------------------------------------------------------------------ summaries
    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    @property
    def total_latency(self) -> float:
        return float(np.sum(self.latencies)) if self.latencies else 0.0

    def percentiles(self) -> Dict[str, float]:
        """Simulated-latency percentiles ``{"p50": ..., "p95": ..., "p99": ...}``."""
        if not self.latencies:
            return {f"p{int(p)}": 0.0 for p in PERCENTILES}
        values = np.percentile(np.asarray(self.latencies), PERCENTILES)
        return {f"p{int(p)}": float(v) for p, v in zip(PERCENTILES, values)}

    @property
    def cache_hit_rate(self) -> float:
        served = self.cache_hits + self.negative_hits
        return served / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "kind": self.kind,
            "count": self.count,
            "engine_executions": self.engine_executions,
            "cache_hits": self.cache_hits,
            "negative_hits": self.negative_hits,
            "coalesced": self.coalesced,
            "cache_hit_rate": self.cache_hit_rate,
            "mean_latency_s": self.mean_latency,
            "total_latency_s": self.total_latency,
        }
        d.update(self.percentiles())
        return d


@dataclass
class NetworkStats:
    """Front-door transport counters (zero unless the deployment serves
    remote clients — see :class:`repro.server.server.StoreServer`).

    ``worker_processes`` / ``worker_calls_failed`` mirror the
    process-per-shard execution mode: how many shard worker processes the
    deployment runs, and how many scatter calls to them failed (each such
    failure surfaced as an incomplete per-shard result, never a hang).
    """

    connections_accepted: int = 0
    connections_rejected: int = 0
    connections_active: int = 0
    requests_served: int = 0
    requests_rejected: int = 0
    protocol_errors: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    worker_processes: int = 0
    worker_calls_failed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "connections_accepted": self.connections_accepted,
            "connections_rejected": self.connections_rejected,
            "connections_active": self.connections_active,
            "requests_served": self.requests_served,
            "requests_rejected": self.requests_rejected,
            "protocol_errors": self.protocol_errors,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "worker_processes": self.worker_processes,
            "worker_calls_failed": self.worker_calls_failed,
        }


class ServiceTelemetry:
    """Thread-safe aggregation of every request the service serves."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._classes: Dict[str, QueryClassStats] = {
            kind: QueryClassStats(kind) for kind in (*QUERY_KINDS, *MUTATION_KINDS)
        }
        self._wall_started: Optional[float] = None
        self._wall_elapsed = 0.0
        self.rejected = 0
        # Requests whose cooperative deadline expired before the engine
        # could finish (served partial or failed, per the caller's
        # policy) — the expiry is visible here either way.
        self.deadline_expired = 0
        # Replication events observed through the store (see
        # ShardRouter.drain_replication_events): primary promotions, reads
        # served while part of a replica group was unhealthy, and internal
        # read retries that kept those requests from failing.
        self.failovers = 0
        self.degraded_reads = 0
        self.replica_retries = 0
        # Transport counters, populated only when a network front door
        # (or a process-per-shard router) sits over this service.
        self.network = NetworkStats()
        # Every number recorded here is mirrored into the process-wide
        # metrics registry (repro.obs), so one Prometheus export carries
        # the whole deployment's telemetry alongside worker-side series.
        self._registry = get_registry()

    # ------------------------------------------------------------------ wall clock
    def start_window(self) -> None:
        """Open (or re-open) the wall-clock measurement window."""
        with self._lock:
            if self._wall_started is None:
                self._wall_started = time.perf_counter()

    def stop_window(self) -> None:
        """Close the window, accumulating elapsed wall time."""
        with self._lock:
            if self._wall_started is not None:
                self._wall_elapsed += time.perf_counter() - self._wall_started
                self._wall_started = None

    @property
    def wall_seconds(self) -> float:
        with self._lock:
            extra = (
                time.perf_counter() - self._wall_started
                if self._wall_started is not None
                else 0.0
            )
            return self._wall_elapsed + extra

    # ------------------------------------------------------------------ recording
    def observe(
        self,
        query: Query,
        latency: float,
        metrics: Optional[Metrics] = None,
        *,
        source: str = "engine",
    ) -> None:
        kind = kind_of(query)
        with self._lock:
            self._classes[kind].observe(latency, metrics, source=source)
        self._registry.counter(
            "repro_requests_total",
            "Requests served, by query kind and serving source",
            kind=kind,
            source=source,
        ).inc()
        self._registry.histogram(
            "repro_request_latency_seconds",
            "Simulated request latency, by query kind",
            kind=kind,
        ).observe(latency)

    def observe_mutation(
        self,
        kind: str,
        latency: float,
        metrics: Optional[Metrics] = None,
    ) -> None:
        """Record one mutation served by the ingest path.

        Mutations always execute on the engine side (there is nothing to
        cache or coalesce), so they land in the ``engine`` source bucket of
        their own telemetry class.
        """
        if kind not in MUTATION_KINDS:
            raise ValueError(f"unknown mutation kind {kind!r}")
        with self._lock:
            self._classes[kind].observe(latency, metrics, source="engine")
        self._registry.counter(
            "repro_mutations_total",
            "Mutations applied through the ingest path, by kind",
            kind=kind,
        ).inc()
        self._registry.histogram(
            "repro_mutation_latency_seconds",
            "Simulated mutation latency, by kind",
            kind=kind,
        ).observe(latency)

    def record_rejection(self) -> None:
        with self._lock:
            self.rejected += 1
        self._registry.counter(
            "repro_requests_rejected_total",
            "Requests rejected at the admission window",
        ).inc()

    def record_deadline_expiry(self) -> None:
        """Count one request whose deadline ran out mid-execution."""
        with self._lock:
            self.deadline_expired += 1
        self._registry.counter(
            "repro_deadline_expired_total",
            "Requests whose cooperative deadline expired",
        ).inc()

    def record_connection(self, *, accepted: bool) -> None:
        """Count one inbound connection (accepted or turned away)."""
        with self._lock:
            if accepted:
                self.network.connections_accepted += 1
                self.network.connections_active += 1
            else:
                self.network.connections_rejected += 1
            active = self.network.connections_active
        self._registry.counter(
            "repro_net_connections_total",
            "Inbound connections, by admission outcome",
            outcome="accepted" if accepted else "rejected",
        ).inc()
        self._registry.gauge(
            "repro_net_connections_active", "Currently open client connections"
        ).set(active)

    def record_disconnect(self) -> None:
        with self._lock:
            self.network.connections_active = max(
                0, self.network.connections_active - 1
            )
            active = self.network.connections_active
        self._registry.gauge(
            "repro_net_connections_active", "Currently open client connections"
        ).set(active)

    def record_net_request(
        self, *, bytes_in: int = 0, bytes_out: int = 0, rejected: bool = False
    ) -> None:
        """Count one framed request handled by the front door."""
        with self._lock:
            if rejected:
                self.network.requests_rejected += 1
            else:
                self.network.requests_served += 1
            self.network.bytes_in += bytes_in
            self.network.bytes_out += bytes_out
        self._registry.counter(
            "repro_net_requests_total",
            "Framed requests handled by the front door, by outcome",
            outcome="rejected" if rejected else "served",
        ).inc()
        if bytes_in:
            self._registry.counter(
                "repro_net_bytes_total",
                "Wire payload bytes, by direction",
                direction="in",
            ).inc(bytes_in)
        if bytes_out:
            self._registry.counter(
                "repro_net_bytes_total",
                "Wire payload bytes, by direction",
                direction="out",
            ).inc(bytes_out)

    def record_protocol_error(self) -> None:
        with self._lock:
            self.network.protocol_errors += 1
        self._registry.counter(
            "repro_net_protocol_errors_total",
            "Malformed frames received by the front door",
        ).inc()

    def record_worker_stats(self, *, processes: int, calls_failed: int) -> None:
        """Mirror the process-per-shard router's health into telemetry."""
        with self._lock:
            self.network.worker_processes = processes
            self.network.worker_calls_failed = calls_failed
        self._registry.gauge(
            "repro_worker_processes", "Live shard worker processes"
        ).set(processes)
        self._registry.gauge(
            "repro_worker_calls_failed",
            "Scatter calls that failed against a worker process",
        ).set(calls_failed)

    def record_replication_events(self, events: Dict[str, int]) -> None:
        """Fold replication-event deltas into the service-level counters."""
        failovers = int(events.get("failovers", 0))
        degraded = int(events.get("degraded_reads", 0))
        retries = int(events.get("replica_retries", 0))
        with self._lock:
            self.failovers += failovers
            self.degraded_reads += degraded
            self.replica_retries += retries
        if failovers:
            self._registry.counter(
                "repro_replication_failovers_total", "Primary promotions"
            ).inc(failovers)
        if degraded:
            self._registry.counter(
                "repro_replication_degraded_reads_total",
                "Reads served while a replica group was unhealthy",
            ).inc(degraded)
        if retries:
            self._registry.counter(
                "repro_replication_read_retries_total",
                "Internal replica read retries that kept requests alive",
            ).inc(retries)

    # ------------------------------------------------------------------ reading
    def query_class(self, kind: str) -> QueryClassStats:
        return self._classes[kind]

    @property
    def total_requests(self) -> int:
        with self._lock:
            return sum(c.count for c in self._classes.values())

    @property
    def throughput_qps(self) -> float:
        """Requests served per wall-clock second over the open windows."""
        wall = self.wall_seconds
        return self.total_requests / wall if wall > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "total_requests": sum(c.count for c in self._classes.values()),
                "wall_seconds": self._wall_elapsed,
                "rejected": self.rejected,
                "deadline_expired": self.deadline_expired,
                "failovers": self.failovers,
                "degraded_reads": self.degraded_reads,
                "replica_retries": self.replica_retries,
                "network": self.network.as_dict(),
                "classes": {k: c.as_dict() for k, c in self._classes.items()},
            }

    def report_rows(self) -> List[List[object]]:
        """Rows for :func:`repro.eval.reporting.format_table`."""
        rows: List[List[object]] = []
        with self._lock:
            for kind in (*QUERY_KINDS, *MUTATION_KINDS):
                c = self._classes[kind]
                if c.count == 0:
                    continue
                p = c.percentiles()
                rows.append(
                    [
                        kind,
                        c.count,
                        c.engine_executions,
                        c.cache_hits + c.negative_hits,
                        c.coalesced,
                        f"{c.mean_latency * 1e3:.3f}",
                        f"{p['p50'] * 1e3:.3f}",
                        f"{p['p95'] * 1e3:.3f}",
                        f"{p['p99'] * 1e3:.3f}",
                    ]
                )
        return rows

    def __repr__(self) -> str:
        return (
            f"ServiceTelemetry(requests={self.total_requests}, "
            f"wall={self.wall_seconds:.3f}s, qps={self.throughput_qps:.1f})"
        )
