"""The concurrent query service layered over a built SmartStore.

A :class:`QueryService` turns the library facade into serving
infrastructure:

* requests are **admitted** (bounded in-flight window, blocking or
  rejecting), **batched** (window of submissions) and **coalesced**
  (identical queries execute once per batch);
* unique queries execute **concurrently** on a thread pool against the
  deployment's :class:`~repro.core.queries.QueryEngine`;
* every request carries a **deterministic seed and home unit** derived from
  its admission order, so results *and* simulated-cost accounting are
  reproducible regardless of thread scheduling;
* results are served from a versioning-aware :class:`ResultCache` when
  possible, and every request is recorded by :class:`ServiceTelemetry`.

Typical use::

    from repro import SmartStore, SmartStoreConfig
    from repro.service import QueryService, ServiceConfig

    store = SmartStore.build(files, SmartStoreConfig(num_units=20))
    with QueryService(store, ServiceConfig(max_workers=4)) as service:
        results = service.execute_many(queries)
        print(service.telemetry.report_rows())

Correctness contract: with caching and batching enabled the service returns
results whose payload (files, distances, found) is byte-identical to direct
``store.execute`` calls over the same workload — verified by
``tests/test_service_cache.py`` and re-checked by ``serve-bench``.

The service also runs unchanged over a sharded deployment: a
:class:`~repro.shard.router.ShardRouter` duck-types the store surface the
service consumes — ``engine`` (scatter-gather dispatch), ``cluster``
(home-unit domain + aggregate metrics), ``versioning`` (a composite whose
``change_clock`` is the tuple of per-shard clocks, so cache epochs track
every shard) and ``default_pipeline`` (mutations routed to the per-shard
WAL/overlay/compactor pipelines).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.metrics import Metrics
from repro.concurrency import ReadWriteLock
from repro.core.queries import QueryResult
from repro.core.smartstore import SmartStore
from repro.ingest.pipeline import IngestPipeline, MutationReceipt
from repro.metadata.file_metadata import FileMetadata
from repro.obs import TraceContext, get_tracer
from repro.service.batching import (
    AdmissionController,
    RequestBatcher,
    ServiceOverloadedError,
    ServiceRequest,
)
from repro.service.cache import ResultCache
from repro.service.telemetry import ServiceTelemetry
from repro.workloads.types import PointQuery, Query, RangeQuery, TopKQuery

__all__ = ["ServiceConfig", "QueryService"]


def _trace_context(options) -> Optional[TraceContext]:
    """The trace context a request's options carry (None when untraced)."""
    trace_id = getattr(options, "trace_id", None) if options is not None else None
    if trace_id is None:
        return None
    return TraceContext(trace_id, getattr(options, "trace_parent", None) or "")


# Engine query execution (thread pool, closed-loop callers) takes the read
# side; mutation application and compaction (dispatcher thread) take the
# write side, so structural updates to the servers, the semantic R-tree and
# the population map never interleave with a scan.  The primitive moved to
# repro.concurrency (the shard layer reuses it for topology changes); the
# private alias keeps this module's call sites and history readable.
_ReadWriteLock = ReadWriteLock


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of a query service.

    ``max_in_flight`` bounds admitted-but-uncompleted requests (the
    admission window) and must be at least ``batch_window`` — otherwise a
    batch could never fill while every buffered request holds a slot.
    """

    max_workers: int = 4
    batch_window: int = 32
    max_in_flight: int = 256
    cache_enabled: bool = True
    batching_enabled: bool = True
    cache_capacity: int = 2048
    negative_capacity: int = 8192
    negative_bloom_bits: int = 8192
    negative_bloom_hashes: int = 5
    block_on_overload: bool = True
    #: Run the ingest pipeline's policy-driven compaction on the dispatcher
    #: thread after each mutation (a cheap no-op while nothing is due).
    auto_compact: bool = True
    seed: int = 7

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.batch_window < 1:
            raise ValueError("batch_window must be >= 1")
        if self.max_in_flight < self.batch_window:
            raise ValueError(
                "max_in_flight must be >= batch_window "
                f"({self.max_in_flight} < {self.batch_window})"
            )


class QueryService:
    """Concurrent, cached, batched query execution over one deployment.

    ``store`` is a :class:`~repro.core.smartstore.SmartStore` or a
    :class:`~repro.shard.router.ShardRouter` (see the module docstring for
    the surface the service consumes).
    """

    def __init__(
        self,
        store: SmartStore,
        config: Optional[ServiceConfig] = None,
        *,
        pipeline: Optional[IngestPipeline] = None,
    ) -> None:
        self.store = store
        self.config = config if config is not None else ServiceConfig()
        # The durable write path.  A caller-supplied pipeline brings its own
        # WAL/compaction policy; otherwise a volatile one (overlay staging,
        # no log) is created lazily on the first mutation.
        self.pipeline = pipeline
        self.telemetry = ServiceTelemetry()
        self.admission = AdmissionController(
            self.config.max_in_flight, block=self.config.block_on_overload
        )
        self.batcher = RequestBatcher(self.config.batch_window)
        self.cache: Optional[ResultCache] = None
        if self.config.cache_enabled:
            self.cache = ResultCache(
                self.config.cache_capacity,
                negative_capacity=self.config.negative_capacity,
                negative_bits=self.config.negative_bloom_bits,
                negative_hashes=self.config.negative_bloom_hashes,
                versioning=store.versioning,
                cost_model=store.config.cost_model,
            )
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_workers, thread_name_prefix="repro-qs"
        )
        # Full batches are handed to a single dispatcher thread so that
        # submit() never blocks on batch execution (an open-loop submitter
        # must keep its arrival schedule); one thread keeps batch order —
        # and therefore cache warm-up order — deterministic.
        self._dispatcher = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-qs-batch"
        )
        self._dispatch_lock = threading.Lock()
        self._dispatch_futures: List[Future] = []
        self._unit_ids = np.asarray(store.cluster.unit_ids(), dtype=np.int64)
        # Replication-aware stores (ShardRouter, ReplicaGroup) accept a
        # consistency preference on their read path; a bare SmartStore is
        # trivially at primary consistency and must not see the kwarg.
        self._replication_aware = hasattr(store, "drain_replication_events")
        self._id_lock = threading.Lock()
        self._next_request_id = 0
        self._metrics_lock = threading.Lock()
        # Readers: engine query execution; writer: mutation + compaction.
        self._state_lock = _ReadWriteLock()
        self._pipeline_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Drain outstanding work and shut the thread pools down."""
        if self._closed:
            return
        self.drain()
        self._closed = True
        if self.cache is not None:
            self.cache.detach()
        self._dispatcher.shutdown(wait=True)
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ request plumbing
    def _new_request(self, query: Query, options=None, deadline=None) -> ServiceRequest:
        with self._id_lock:
            request_id = self._next_request_id
            self._next_request_id += 1
        # The per-request seed and the home unit drawn from it are pure
        # functions of (service seed, admission order): thread scheduling
        # cannot change any request's accounting.  The seed is recorded on
        # the request so the draw is replayable when debugging.
        rng = np.random.default_rng([self.config.seed, request_id])
        seed = int(rng.integers(1 << 62))
        home = int(self._unit_ids[rng.integers(len(self._unit_ids))])
        return ServiceRequest(
            request_id=request_id,
            query=query,
            seed=seed,
            home_unit=home,
            options=options,
            deadline=deadline,
        )

    @staticmethod
    def _constrained(options) -> bool:
        return options is not None and getattr(options, "constrained", False)

    def _engine_kwargs(self, request: ServiceRequest) -> dict:
        """Per-request keyword arguments forwarded to the engine."""
        kwargs: dict = {"home_unit": request.home_unit}
        if request.deadline is not None:
            kwargs["deadline"] = request.deadline
        options = request.options
        if (
            options is not None
            and self._replication_aware
            and getattr(options, "consistency", "primary") != "primary"
        ):
            kwargs["consistency"] = options.consistency
            kwargs["max_staleness"] = options.max_staleness
        return kwargs

    def _expired_result(self) -> QueryResult:
        """Empty partial result for a deadline that expired before any
        engine work could start (admission wait ate the whole budget)."""
        return QueryResult(
            files=[],
            metrics=Metrics(),
            latency=0.0,
            groups_visited=0,
            hops=0,
            found=False,
            distances=[],
            complete=False,
        )

    def _execute_on_engine(self, request: ServiceRequest) -> QueryResult:
        engine = self.store.engine
        query = request.query
        # The span sets this pool thread's trace context, so the router /
        # replica / WAL spans below parent under it automatically.
        with get_tracer().span(
            "service.engine",
            _trace_context(request.options),
            request_id=request.request_id,
            query=type(query).__name__,
        ) as engine_span:
            if request.deadline is not None and request.deadline.expired():
                self.telemetry.record_deadline_expiry()
                engine_span.tag(deadline_expired=True)
                return self._expired_result()
            kwargs = self._engine_kwargs(request)
            # Read side of the state lock: mutations/compaction (write side)
            # restructure the very servers and tree nodes a scan walks.
            self._state_lock.acquire_read()
            try:
                if isinstance(query, PointQuery):
                    result = engine.point_query(query, **kwargs)
                elif isinstance(query, RangeQuery):
                    result = engine.range_query(query, **kwargs)
                elif isinstance(query, TopKQuery):
                    result = engine.topk_query(query, **kwargs)
                else:
                    raise TypeError(f"unsupported query type {type(query)!r}")
            finally:
                self._state_lock.release_read()
            if request.deadline is not None and not result.complete:
                self.telemetry.record_deadline_expiry()
                engine_span.tag(deadline_expired=True)
            engine_span.tag(complete=result.complete)
        # The facade merges per-query counters into the cluster-wide
        # accounting; the service does the same, serialised.
        with self._metrics_lock:
            self.store.cluster.metrics.merge(result.metrics)
        # A replicated store (ShardRouter over replica groups, or a bare
        # ReplicaGroup) surfaces failover/degraded-read events; fold any
        # new ones into the service telemetry.
        drain = getattr(self.store, "drain_replication_events", None)
        if drain is not None:
            events = drain()
            if events:
                self.telemetry.record_replication_events(events)
        return result

    # ------------------------------------------------------------------ batch execution
    def _dispatch_batch(self, requests: List[ServiceRequest]) -> None:
        """Queue a batch for asynchronous processing on the dispatcher."""
        if not requests:
            return
        future = self._dispatcher.submit(self._process_batch, requests)
        with self._dispatch_lock:
            self._dispatch_futures = [
                f for f in self._dispatch_futures if not f.done()
            ]
            self._dispatch_futures.append(future)

    def _process_batch(self, requests: List[ServiceRequest]) -> None:
        if not requests:
            return
        try:
            # Snapshot the versioning clock before any engine work: a
            # metadata mutation racing with this batch flushes the cache,
            # and results computed against the pre-mutation state must not
            # be stored back after that flush (store() drops them).
            epoch = self.store.versioning.change_clock
            groups = self.batcher.coalesce(requests)

            pending: List[tuple] = []  # (future, leader, followers)
            for query, members in groups:
                leader, followers = members[0], members[1:]
                # Constrained requests (deadline / relaxed consistency) are
                # not interchangeable with plain ones: they neither read
                # nor warm the cache.
                constrained = self._constrained(leader.options)
                hit = None
                if self.cache is not None and not constrained:
                    with get_tracer().span(
                        "service.cache_lookup", _trace_context(leader.options)
                    ) as lookup_span:
                        hit = self.cache.lookup(query)
                        lookup_span.tag(
                            hit=hit is not None,
                            source=hit.source if hit is not None else "miss",
                        )
                if hit is not None:
                    self._resolve_group(
                        leader, followers, hit.result, leader_source=hit.source
                    )
                    continue
                future = self._pool.submit(self._execute_on_engine, leader)
                pending.append((future, leader, followers))

            for future, leader, followers in pending:
                try:
                    result = future.result()
                except BaseException as exc:  # propagate to every waiter
                    for request in [leader, *followers]:
                        request.fail(exc)
                        self.admission.release()
                    continue
                if self.cache is not None and not self._constrained(leader.options):
                    self.cache.store(leader.query, result, epoch=epoch)
                self._resolve_group(leader, followers, result, leader_source="engine")
        except BaseException as exc:  # pragma: no cover - defensive
            # Fail-and-release only requests not yet resolved: resolved
            # ones already released their admission slot, and releasing
            # twice would silently raise the effective admission limit.
            for request in requests:
                if not request.future.done():
                    request.fail(exc)
                    self.admission.release()
            raise

    def _resolve_group(
        self,
        leader: ServiceRequest,
        followers: Sequence[ServiceRequest],
        result: QueryResult,
        *,
        leader_source: str,
    ) -> None:
        self.telemetry.observe(
            leader.query, result.latency, result.metrics, source=leader_source
        )
        leader.resolve(result)
        self.admission.release()
        for follower in followers:
            # Zero-work marker span: this request rode the leader's batch.
            with get_tracer().span(
                "service.batch_ride",
                _trace_context(follower.options),
                leader_request_id=leader.request_id,
            ):
                pass
            self.telemetry.observe(
                follower.query, result.latency, source="coalesced"
            )
            follower.resolve(result)
            self.admission.release()

    # ------------------------------------------------------------------ public API
    def submit(self, query: Query, options=None) -> "Future[QueryResult]":
        """Admit one request; returns a future resolving to its result.

        With batching enabled the request may wait in the current window
        until the window fills or :meth:`drain` runs.  When the admission
        limit is reached the call blocks (default) or raises
        :class:`ServiceOverloadedError` (``block_on_overload=False``).

        ``options`` is an optional
        :class:`~repro.api.options.RequestOptions`: its deadline clock
        starts *here* (admission wait counts against the budget) and a
        constraining options object makes the request bypass the batching
        window and the result cache — a deadline partial or a
        relaxed-consistency read must never be served to a plain caller.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        self.telemetry.start_window()
        deadline = options.start() if options is not None else None
        with get_tracer().span("service.admission", _trace_context(options)):
            admitted = self.admission.admit()
        if not admitted:
            self.telemetry.record_rejection()
            raise ServiceOverloadedError(
                f"admission limit of {self.config.max_in_flight} requests reached"
            )
        request = self._new_request(query, options, deadline)
        if self.config.batching_enabled and not self._constrained(options):
            full_batch = self.batcher.add(request)
            if full_batch is not None:
                self._dispatch_batch(full_batch)
        else:
            self._dispatch_batch([request])
        return request.future

    def execute(self, query: Query, options=None) -> QueryResult:
        """Serve one request immediately (bypasses the batching window).

        Closed-loop clients use this: the request still goes through
        admission, the cache and telemetry, but never waits for a window
        to fill.  ``options`` behaves as in :meth:`submit`.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        self.telemetry.start_window()
        deadline = options.start() if options is not None else None
        with get_tracer().span("service.admission", _trace_context(options)):
            admitted = self.admission.admit()
        if not admitted:
            self.telemetry.record_rejection()
            raise ServiceOverloadedError(
                f"admission limit of {self.config.max_in_flight} requests reached"
            )
        request = self._new_request(query, options, deadline)
        self._process_batch([request])
        return request.future.result()

    def execute_many(self, queries: Sequence[Query]) -> List[QueryResult]:
        """Serve a whole workload, preserving input order in the results."""
        futures = [self.submit(query) for query in queries]
        self.drain()
        return [f.result() for f in futures]

    # ------------------------------------------------------------------ mutations
    def _ensure_pipeline(self) -> IngestPipeline:
        # Locked: two threads racing the first mutation must not create two
        # pipelines whose overlays would clobber each other on the store.
        # The store decides what its write path looks like: a SmartStore
        # hands back a volatile IngestPipeline, a ShardRouter hands back
        # itself (mutations are then routed to the per-shard pipelines).
        with self._pipeline_lock:
            if self.pipeline is None:
                self.pipeline = self.store.default_pipeline()
            return self.pipeline

    def _submit_mutation(self, kind: str, file: FileMetadata) -> "Future[MutationReceipt]":
        """Admit one mutation and serialise it through the dispatcher.

        Mutations share the admission window with queries (backpressure
        applies to writers too) and execute on the single dispatcher
        thread, ordered with the *batched* submissions: the partial batch
        buffered before the mutation is flushed first, so those queries
        observe the pre-mutation state, while anything submitted afterwards
        observes the mutation — read-your-writes through the service.
        Closed-loop ``execute`` calls bypass the dispatcher but serialise
        against mutations on the state lock, so each such read observes the
        store atomically before or after a mutation, never mid-application.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        self.telemetry.start_window()
        if not self.admission.admit():
            self.telemetry.record_rejection()
            raise ServiceOverloadedError(
                f"admission limit of {self.config.max_in_flight} requests reached"
            )
        pipeline = self._ensure_pipeline()
        if self.config.batching_enabled:
            self._dispatch_batch(self.batcher.flush())
        future: "Future[MutationReceipt]" = Future()
        task = self._dispatcher.submit(self._apply_mutation, pipeline, kind, file, future)
        with self._dispatch_lock:
            self._dispatch_futures = [f for f in self._dispatch_futures if not f.done()]
            self._dispatch_futures.append(task)
        return future

    def _apply_mutation(
        self,
        pipeline: IngestPipeline,
        kind: str,
        file: FileMetadata,
        future: "Future[MutationReceipt]",
    ) -> None:
        try:
            self._state_lock.acquire_write()
            try:
                receipt: MutationReceipt = getattr(pipeline, kind)(file)
                if self.config.auto_compact:
                    pipeline.compactor.run_once()
            finally:
                self._state_lock.release_write()
            # The mutation bumped the versioning change clock, which flushed
            # the result cache; any in-flight batch that snapshotted an
            # older epoch will see its store() dropped as stale.
            self.telemetry.observe_mutation(kind, receipt.latency)
            future.set_result(receipt)
        except BaseException as exc:
            future.set_exception(exc)
        finally:
            self.admission.release()

    def submit_insert(self, file: FileMetadata) -> "Future[MutationReceipt]":
        """Insert one record; later queries reflect it immediately.

        Durability requires constructing the service with a WAL-backed
        :class:`~repro.ingest.pipeline.IngestPipeline`; the lazily-created
        default pipeline stages in memory only (no log).
        """
        return self._submit_mutation("insert", file)

    def submit_delete(self, file: FileMetadata) -> "Future[MutationReceipt]":
        """Delete one record; later queries mask it immediately.

        Durable only with a caller-supplied WAL-backed pipeline (see
        :meth:`submit_insert`).
        """
        return self._submit_mutation("delete", file)

    def submit_modify(self, file: FileMetadata) -> "Future[MutationReceipt]":
        """Replace one record's attribute values.

        Durable only with a caller-supplied WAL-backed pipeline (see
        :meth:`submit_insert`).
        """
        return self._submit_mutation("modify", file)

    def drain(self) -> None:
        """Flush the partial batching window and wait for in-flight work."""
        self._dispatch_batch(self.batcher.flush())
        while True:
            with self._dispatch_lock:
                if not self._dispatch_futures:
                    break
                future = self._dispatch_futures.pop(0)
            future.result()  # surfaces dispatcher-side failures
        self.admission.drain()
        self.telemetry.stop_window()

    # ------------------------------------------------------------------ introspection
    def stats(self) -> dict:
        """Service-level statistics (telemetry + cache + admission)."""
        d = {
            "telemetry": self.telemetry.as_dict(),
            "admitted": self.admission.admitted,
            "rejected": self.admission.rejected,
            "batches_formed": self.batcher.batches_formed,
            "coalesced_requests": self.batcher.coalesced_requests,
        }
        if self.cache is not None:
            d["cache"] = self.cache.stats.as_dict()
        if self.pipeline is not None:
            d["ingest"] = self.pipeline.stats()
        if hasattr(self.store, "replica_groups"):  # replicated ShardRouter
            replication = self.store.stats().get("replication")
            if replication is not None:
                d["replication"] = replication
        elif hasattr(self.store, "members"):  # bare ReplicaGroup
            d["replication"] = self.store.stats()
        return d

    def __repr__(self) -> str:
        return (
            f"QueryService(store={self.store!r}, workers={self.config.max_workers}, "
            f"batch_window={self.config.batch_window}, "
            f"cache={'on' if self.cache is not None else 'off'}, "
            f"batching={'on' if self.config.batching_enabled else 'off'})"
        )
