"""Request batching and admission control for the query service.

The batcher sits between request submission and the engine:

* **Admission control** caps the number of requests admitted but not yet
  completed.  Submitters either block until a slot frees up (backpressure,
  the default — what a closed-loop client wants) or are rejected
  immediately (``block=False`` — what an overloaded open-loop service
  does).
* **Coalescing** groups the requests of one batch by their query value.
  The frozen query dataclasses of :mod:`repro.workloads.types` are
  hashable, so "same-window range queries" and "same-name point queries"
  are exactly the requests whose query objects compare equal.  Each group
  executes once; every member receives the same result payload.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workloads.types import Query

__all__ = [
    "ServiceOverloadedError",
    "ServiceRequest",
    "AdmissionController",
    "RequestBatcher",
]


class ServiceOverloadedError(RuntimeError):
    """Raised when a non-blocking submission exceeds the admission limit."""


@dataclass
class ServiceRequest:
    """One admitted request travelling through the service.

    ``request_id`` is assigned in admission order; ``seed`` is drawn from
    ``(service seed, request_id)`` and ``home_unit`` from the same stream,
    so cost accounting does not depend on thread scheduling.  The seed is
    kept on the request to make the draw replayable when debugging.

    ``options`` / ``deadline`` carry the unified client API's per-request
    options (:class:`repro.api.options.RequestOptions`) and the started
    deadline clock; both stay ``None`` for legacy submissions.  Requests
    with constraining options are never batched or coalesced with plain
    requests (they dispatch as singleton batches and bypass the cache),
    so the query-value coalescing key stays sufficient.
    """

    request_id: int
    query: Query
    seed: int
    home_unit: int
    future: "Future" = field(default_factory=Future)
    options: Optional[object] = None
    deadline: Optional[object] = None

    def resolve(self, result) -> None:
        if not self.future.done():
            self.future.set_result(result)

    def fail(self, exc: BaseException) -> None:
        if not self.future.done():
            self.future.set_exception(exc)


class AdmissionController:
    """Counting semaphore with optional rejection and drain support."""

    def __init__(self, max_in_flight: int, *, block: bool = True) -> None:
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        self.max_in_flight = max_in_flight
        self.block = block
        self._in_flight = 0
        self._admitted = 0
        self._rejected = 0
        self._cond = threading.Condition()

    # ------------------------------------------------------------------ slots
    def admit(self) -> bool:
        """Take a slot; blocks or returns ``False`` depending on policy."""
        with self._cond:
            if not self.block and self._in_flight >= self.max_in_flight:
                self._rejected += 1
                return False
            while self._in_flight >= self.max_in_flight:
                self._cond.wait()
            self._in_flight += 1
            self._admitted += 1
            return True

    def release(self, count: int = 1) -> None:
        with self._cond:
            self._in_flight = max(0, self._in_flight - count)
            self._cond.notify_all()

    def drain(self) -> None:
        """Block until no admitted request remains in flight."""
        with self._cond:
            while self._in_flight > 0:
                self._cond.wait()

    # ------------------------------------------------------------------ accounting
    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._in_flight

    @property
    def admitted(self) -> int:
        return self._admitted

    @property
    def rejected(self) -> int:
        return self._rejected

    def __repr__(self) -> str:
        return (
            f"AdmissionController(in_flight={self.in_flight}/{self.max_in_flight}, "
            f"admitted={self._admitted}, rejected={self._rejected})"
        )


class RequestBatcher:
    """Accumulates admitted requests into batches of at most ``window``.

    The batcher itself is a passive buffer: the service decides when to
    flush (window full, explicit drain, or immediate execution for
    unbatched submissions).  ``coalesce`` is the pure grouping step and is
    also used directly for pre-formed batches.
    """

    def __init__(self, window: int = 32) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._pending: List[ServiceRequest] = []
        self._lock = threading.Lock()
        self.batches_formed = 0
        self.coalesced_requests = 0

    # ------------------------------------------------------------------ buffering
    def add(self, request: ServiceRequest) -> Optional[List[ServiceRequest]]:
        """Buffer a request; returns a full batch when the window fills."""
        with self._lock:
            self._pending.append(request)
            if len(self._pending) >= self.window:
                batch, self._pending = self._pending, []
                self.batches_formed += 1
                return batch
            return None

    def flush(self) -> List[ServiceRequest]:
        """Take whatever is buffered (possibly an empty list)."""
        with self._lock:
            batch, self._pending = self._pending, []
            if batch:
                self.batches_formed += 1
            return batch

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------ coalescing
    def coalesce(
        self, requests: Sequence[ServiceRequest]
    ) -> List[Tuple[Query, List[ServiceRequest]]]:
        """Group a batch by query value, preserving first-seen order.

        The first request of each group is the *leader* that actually
        executes; the rest ride along.  Coalesced (non-leader) requests are
        counted for telemetry.
        """
        groups: "Dict[Query, List[ServiceRequest]]" = {}
        order: List[Query] = []
        for request in requests:
            bucket = groups.get(request.query)
            if bucket is None:
                groups[request.query] = [request]
                order.append(request.query)
            else:
                bucket.append(request)
        coalesced = sum(len(groups[q]) - 1 for q in order)
        with self._lock:
            self.coalesced_requests += coalesced
        return [(q, groups[q]) for q in order]

    def __repr__(self) -> str:
        return (
            f"RequestBatcher(window={self.window}, pending={self.pending}, "
            f"batches={self.batches_formed}, coalesced={self.coalesced_requests})"
        )
