"""Open- and closed-loop load generation against a :class:`QueryService`.

Two canonical client models from the serving literature:

* **closed loop** — a fixed population of clients, each waiting for its
  previous response (plus an optional think time) before issuing the next
  request.  Offered load adapts to service speed; this is the model that
  exposes latency.
* **open loop** — requests arrive on their own schedule regardless of
  completions (Poisson arrivals at ``rate_qps``, or as fast as the
  submitter can go when no rate is given).  Offered load does *not* adapt,
  which is the model that exposes overload and admission behaviour.

Query streams come from :class:`~repro.workloads.generator.QueryWorkloadGenerator`
(synthetic attribute-space workloads) or from a
:class:`~repro.workloads.replay.TraceReplayer` access stream via
:func:`replay_point_stream` (every resolved access becomes a filename point
query — the metadata-heavy request mix the paper's motivating studies
observe).  All load-generator randomness (stream shuffling, think times,
inter-arrival gaps) is driven by an explicit seed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.queries import QueryResult
from repro.service.batching import ServiceOverloadedError
from repro.service.service import QueryService
from repro.workloads.replay import TraceReplayer
from repro.workloads.types import PointQuery, Query

__all__ = ["LoadReport", "LoadGenerator", "replay_point_stream", "repeated_stream"]


def replay_point_stream(
    replayer: TraceReplayer, *, limit: Optional[int] = None
) -> List[PointQuery]:
    """The replayer's access stream as filename point queries."""
    stream = replayer.access_stream()
    if limit is not None:
        stream = stream[:limit]
    return [PointQuery(f.filename) for f in stream]


def repeated_stream(
    queries: Sequence[Query], repeat: int, *, seed: int = 0
) -> List[Query]:
    """``repeat`` copies of a base workload, shuffled deterministically.

    This is the repeated-query stream the caching ablation uses: every
    query recurs ``repeat`` times, interleaved, the way popular requests
    recur in real query traffic.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    stream: List[Query] = [q for _ in range(repeat) for q in queries]
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(stream))
    return [stream[i] for i in order]


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    mode: str
    requests: int
    completed: int
    rejected: int
    wall_seconds: float
    results: List[Optional[QueryResult]] = field(default_factory=list)

    @property
    def achieved_qps(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def total_simulated_latency(self) -> float:
        return float(
            sum(r.latency for r in self.results if r is not None)
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "wall_seconds": self.wall_seconds,
            "achieved_qps": self.achieved_qps,
            "total_simulated_latency_s": self.total_simulated_latency,
        }


class LoadGenerator:
    """Drives a query service with a workload under a chosen client model."""

    def __init__(self, service: QueryService, *, seed: int = 11) -> None:
        self.service = service
        self.seed = seed

    # ------------------------------------------------------------------ closed loop
    def closed_loop(
        self,
        queries: Sequence[Query],
        *,
        clients: int = 4,
        think_time_s: float = 0.0,
        collect_results: bool = True,
    ) -> LoadReport:
        """``clients`` concurrent clients issue the workload round-robin.

        Client ``c`` serves queries ``c, c + clients, c + 2*clients, ...``
        of the stream in order, waiting for each response (and an optional
        exponential think time) before the next submission.
        """
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        queries = list(queries)
        results: List[Optional[QueryResult]] = [None] * len(queries)
        errors: List[BaseException] = []

        def run_client(client_id: int) -> None:
            rng = np.random.default_rng([self.seed, client_id])
            try:
                for i in range(client_id, len(queries), clients):
                    results[i] = self.service.execute(queries[i])
                    if think_time_s > 0.0:
                        time.sleep(float(rng.exponential(think_time_s)))
            except BaseException as exc:  # surface in the caller's thread
                errors.append(exc)

        started = time.perf_counter()
        threads = [
            threading.Thread(target=run_client, args=(c,), name=f"repro-client-{c}")
            for c in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - started
        if errors:
            raise errors[0]
        completed = sum(1 for r in results if r is not None)
        return LoadReport(
            mode="closed",
            requests=len(queries),
            completed=completed,
            rejected=len(queries) - completed,
            wall_seconds=wall,
            results=results if collect_results else [],
        )

    # ------------------------------------------------------------------ open loop
    def open_loop(
        self,
        queries: Sequence[Query],
        *,
        rate_qps: Optional[float] = None,
        collect_results: bool = True,
    ) -> LoadReport:
        """Submit the stream on a fixed schedule, then drain.

        With ``rate_qps`` the submitter spaces requests by exponential
        inter-arrival gaps (Poisson arrivals); without it, requests are
        submitted back-to-back.  Rejected submissions (admission limit with
        ``block_on_overload=False``) leave a ``None`` in the results.
        """
        if rate_qps is not None and rate_qps <= 0.0:
            raise ValueError(f"rate_qps must be positive, got {rate_qps}")
        queries = list(queries)
        rng = np.random.default_rng([self.seed, 0x0BE2])
        results: List[Optional[QueryResult]] = [None] * len(queries)
        futures: List[Optional[object]] = [None] * len(queries)
        rejected = 0

        started = time.perf_counter()
        next_arrival = started
        for i, query in enumerate(queries):
            if rate_qps is not None:
                next_arrival += float(rng.exponential(1.0 / rate_qps))
                delay = next_arrival - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            try:
                futures[i] = self.service.submit(query)
            except ServiceOverloadedError:
                rejected += 1
        self.service.drain()
        for i, future in enumerate(futures):
            if future is not None:
                results[i] = future.result()
        wall = time.perf_counter() - started

        completed = sum(1 for r in results if r is not None)
        return LoadReport(
            mode="open",
            requests=len(queries),
            completed=completed,
            rejected=rejected,
            wall_seconds=wall,
            results=results if collect_results else [],
        )
