"""A B+-tree keyed by floats (or any totally ordered keys).

Leaves store ``(key, value)`` pairs and are chained left-to-right so range
scans walk the leaf level sequentially, just like a disk-resident database
index.  Internal nodes store separator keys.  Duplicate keys are allowed —
file metadata attributes (sizes, timestamps) collide constantly.

An optional ``access_counter`` callback is invoked once per node visited so
the evaluation harness can charge index-page accesses to the simulated cost
model (a disk-resident B+-tree page access is the dominant cost in the DBMS
baseline, which is what produces the paper's 1000x latency gap).
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterator, List, Optional, Tuple

__all__ = ["BPlusTree"]


class _Node:
    """One B+-tree node; ``is_leaf`` discriminates the two layouts."""

    __slots__ = ("is_leaf", "keys", "values", "children", "next_leaf", "parent")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: List[float] = []
        self.values: List[object] = []      # leaf only
        self.children: List["_Node"] = []   # internal only
        self.next_leaf: Optional["_Node"] = None
        self.parent: Optional["_Node"] = None


class BPlusTree:
    """A B+-tree with duplicate-tolerant insertion, point and range search.

    Parameters
    ----------
    order:
        Maximum number of keys per node (fan-out − 1).  Nodes split once
        they exceed it.
    access_counter:
        Optional zero-argument callable invoked for every node visited.
    """

    def __init__(self, order: int = 64, access_counter: Optional[Callable[[], None]] = None) -> None:
        if order < 3:
            raise ValueError(f"order must be >= 3, got {order}")
        self.order = order
        self.root = _Node(is_leaf=True)
        self._size = 0
        self._access_counter = access_counter

    # ------------------------------------------------------------------ basic facts
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        h = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def node_count(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def _touch(self) -> None:
        if self._access_counter is not None:
            self._access_counter()

    # ------------------------------------------------------------------ search
    def _find_leaf(self, key: float) -> _Node:
        """Descend to the left-most leaf that may contain ``key``.

        ``bisect_left`` (rather than ``bisect_right``) matters for duplicate
        keys: when a run of equal keys straddles a leaf boundary the
        separator equals the key, and searches must start in the left
        sibling and walk the leaf chain forward.
        """
        node = self.root
        self._touch()
        while not node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            node = node.children[idx]
            self._touch()
        return node

    def search(self, key: float) -> List[object]:
        """Every value stored under ``key`` (possibly empty)."""
        leaf = self._find_leaf(key)
        results: List[object] = []
        # Duplicates may spill into following leaves.
        node: Optional[_Node] = leaf
        while node is not None:
            advanced = False
            lo = bisect.bisect_left(node.keys, key)
            for i in range(lo, len(node.keys)):
                if node.keys[i] == key:
                    results.append(node.values[i])
                    advanced = True
                else:
                    return results
            if advanced or lo == len(node.keys):
                node = node.next_leaf
                if node is not None:
                    self._touch()
            else:
                break
        return results

    def range_search(self, low: float, high: float) -> List[Tuple[float, object]]:
        """All ``(key, value)`` pairs with ``low <= key <= high``, in key order."""
        if low > high:
            return []
        leaf = self._find_leaf(low)
        results: List[Tuple[float, object]] = []
        node: Optional[_Node] = leaf
        while node is not None:
            for k, v in zip(node.keys, node.values):
                if k < low:
                    continue
                if k > high:
                    return results
                results.append((k, v))
            node = node.next_leaf
            if node is not None:
                self._touch()
        return results

    def count_in_range(self, low: float, high: float) -> int:
        """Number of keys in ``[low, high]`` (still walks the leaf chain)."""
        return len(self.range_search(low, high))

    def items(self) -> Iterator[Tuple[float, object]]:
        """All pairs in ascending key order."""
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next_leaf

    def min_key(self) -> Optional[float]:
        for k, _ in self.items():
            return k
        return None

    def max_key(self) -> Optional[float]:
        node = self.root
        while not node.is_leaf:
            node = node.children[-1]
        # The right-most leaf can be empty only when the whole tree is empty.
        return node.keys[-1] if node.keys else None

    # ------------------------------------------------------------------ insertion
    def insert(self, key: float, value: object) -> None:
        """Insert ``(key, value)``; duplicate keys are kept."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_right(leaf.keys, key)
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, value)
        self._size += 1
        if len(leaf.keys) > self.order:
            self._split(leaf)

    def bulk_insert(self, pairs) -> None:
        """Insert an iterable of ``(key, value)`` pairs."""
        for key, value in pairs:
            self.insert(key, value)

    def _split(self, node: _Node) -> None:
        mid = len(node.keys) // 2
        sibling = _Node(is_leaf=node.is_leaf)

        if node.is_leaf:
            sibling.keys = node.keys[mid:]
            sibling.values = node.values[mid:]
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            sibling.next_leaf = node.next_leaf
            node.next_leaf = sibling
            separator = sibling.keys[0]
        else:
            separator = node.keys[mid]
            sibling.keys = node.keys[mid + 1:]
            sibling.children = node.children[mid + 1:]
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]
            for child in sibling.children:
                child.parent = sibling

        parent = node.parent
        if parent is None:
            new_root = _Node(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [node, sibling]
            node.parent = new_root
            sibling.parent = new_root
            self.root = new_root
        else:
            sibling.parent = parent
            # Place the new sibling immediately after the node it split from.
            # Positioning by key (bisect) is ambiguous under duplicate keys
            # and would desynchronise the children order from the leaf chain.
            idx = parent.children.index(node)
            parent.keys.insert(idx, separator)
            parent.children.insert(idx + 1, sibling)
            if len(parent.keys) > self.order:
                self._split(parent)

    # ------------------------------------------------------------------ deletion
    def delete(self, key: float, value: object) -> bool:
        """Delete one ``(key, value)`` pair; returns True if found.

        Underflow rebalancing is intentionally omitted: the DBMS baseline
        only ever bulk-loads and queries, and a slightly sparse leaf does
        not change the access-count asymptotics the evaluation measures.
        """
        leaf = self._find_leaf(key)
        node: Optional[_Node] = leaf
        while node is not None:
            for i, (k, v) in enumerate(zip(node.keys, node.values)):
                if k > key:
                    return False
                if k == key and v == value:
                    del node.keys[i]
                    del node.values[i]
                    self._size -= 1
                    return True
            node = node.next_leaf
        return False
