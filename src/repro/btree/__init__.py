"""B+-tree substrate for the DBMS baseline.

The paper's first comparison system ("DBMS") indexes every metadata
attribute with its own B+-tree and answers multi-attribute queries by
scanning each per-attribute index and intersecting the results — exactly the
access pattern this subpackage reproduces from scratch.
"""

from repro.btree.bplustree import BPlusTree

__all__ = ["BPlusTree"]
