"""Machine-readable benchmark artefacts: ``BENCH_<name>.json``.

Every bench entry point (the CLI's ``serve-bench`` / ``ingest-bench`` /
``shard-bench`` / ``replica-bench`` / ``client-bench`` / ``net-bench``
and the pytest benchmarks that adopt it) writes one JSON document at the
repository root alongside its human-readable table, so CI and regression
tooling can diff runs without parsing text:

.. code-block:: json

    {
      "format": "repro.bench-result",
      "bench": "net",
      "version": "1.6.0",
      "timestamp": "2026-08-08T12:00:00+00:00",
      "config": {"shards": 4, "...": "..."},
      "metrics": {"speedup": 3.1, "...": "..."},
      "gates": {"scaling >= 2.5x": true}
    }

``config`` is what the run was asked to do, ``metrics`` what it
measured, ``gates`` the pass/fail booleans its exit code asserts.
Values are coerced to plain JSON types best-effort (numpy scalars
unwrap, sets sort, everything else falls back to ``repr``).
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["BENCH_DIR_ENV", "bench_json_path", "write_bench_json"]

BENCH_FORMAT = "repro.bench-result"

#: Environment override for where bench artefacts land when no explicit
#: directory is given.  The test suite sets this to a temporary directory
#: (see ``tests/conftest.py``) so that exercising the bench CLIs can never
#: clobber the checked-in official results at the repository root and in
#: ``benchmarks/results/`` — only deliberate runs (CLI from the checkout,
#: CI bench jobs) write the tracked artefacts.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

#: Secondary artefact location: every bench JSON is mirrored here so a
#: run's results accumulate in one directory (the repo-root copies stay
#: for tooling that diffs the latest run in place).
RESULTS_DIR = "benchmarks/results"


def _git_rev() -> Optional[str]:
    """The working tree's short commit hash, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def _jsonable(value: Any) -> Any:
    """Best-effort coercion to plain JSON-safe types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if hasattr(value, "as_dict"):
        return _jsonable(value.as_dict())
    return repr(value)


def bench_json_path(
    name: str, directory: Optional[Union[str, Path]] = None
) -> Path:
    """Where ``write_bench_json`` puts the artefact.

    Resolution order: the explicit ``directory`` argument, then the
    ``REPRO_BENCH_DIR`` environment variable, then the current working
    directory (the repo root for CLI and CI runs).
    """
    if directory is None:
        directory = os.environ.get(BENCH_DIR_ENV) or None
    base = Path(directory) if directory is not None else Path.cwd()
    return base / f"BENCH_{name}.json"


def write_bench_json(
    name: str,
    metrics: Dict[str, Any],
    config: Optional[Dict[str, Any]] = None,
    *,
    gates: Optional[Dict[str, bool]] = None,
    directory: Optional[Union[str, Path]] = None,
) -> Path:
    """Write one ``BENCH_<name>.json`` document; returns its primary path.

    ``name`` is the bench's short name (``"serve"``, ``"net"``, ...);
    the artefact lands in ``directory`` (default: ``$REPRO_BENCH_DIR``
    when set, else the current working directory, i.e. the repo root for
    CLI and CI runs) **and** is mirrored into ``benchmarks/results/``
    relative to the primary location, so per-run results accumulate in
    one place.  Each document
    stamps the run's UTC timestamp and (when inside a checkout) the git
    revision it measured.
    """
    from repro import __version__

    path = bench_json_path(name, directory)
    document = {
        "format": BENCH_FORMAT,
        "bench": name,
        "version": __version__,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": _git_rev(),
        "config": _jsonable(config or {}),
        "metrics": _jsonable(metrics),
        "gates": {str(k): bool(v) for k, v in (gates or {}).items()},
    }
    targets: List[Path] = [path]
    mirror = path.parent / RESULTS_DIR / path.name
    if mirror.resolve() != path.resolve():
        targets.append(mirror)
    for target in targets:
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return path
