"""Experiment harness: system builders, workload runners and the staleness
(versioning) experiment.

The benchmarks in ``benchmarks/`` are thin wrappers around this module: they
choose a trace, a workload and a system configuration, call the runners here
and print the resulting rows in the shape of the paper's tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.baselines.dbms import DBMSBaseline
from repro.baselines.rtree_db import RTreeBaseline
from repro.core.queries import QueryResult
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.eval.recall import ground_truth_range, ground_truth_topk, recall
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery, Query, RangeQuery, TopKQuery

__all__ = [
    "SystemUnderTest",
    "WorkloadResult",
    "build_smartstore",
    "build_baselines",
    "run_query_workload",
    "hop_distribution",
    "point_query_hit_rate",
    "StalenessExperiment",
]

#: Anything exposing ``execute(query) -> QueryResult``.
SystemUnderTest = Union[SmartStore, DBMSBaseline, RTreeBaseline]


@dataclass
class WorkloadResult:
    """Aggregate statistics of running one workload against one system."""

    latencies: List[float] = field(default_factory=list)
    messages: List[int] = field(default_factory=list)
    hops: List[int] = field(default_factory=list)
    recalls: List[float] = field(default_factory=list)
    found: List[bool] = field(default_factory=list)

    def record(self, result: QueryResult, query_recall: Optional[float] = None) -> None:
        self.latencies.append(result.latency)
        self.messages.append(result.metrics.messages)
        self.hops.append(result.hops)
        self.found.append(result.found)
        if query_recall is not None:
            self.recalls.append(query_recall)

    # ------------------------------------------------------------------ summaries
    @property
    def num_queries(self) -> int:
        return len(self.latencies)

    @property
    def total_latency(self) -> float:
        return float(np.sum(self.latencies)) if self.latencies else 0.0

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    @property
    def total_messages(self) -> int:
        return int(np.sum(self.messages)) if self.messages else 0

    @property
    def mean_messages(self) -> float:
        return float(np.mean(self.messages)) if self.messages else 0.0

    @property
    def mean_recall(self) -> float:
        return float(np.mean(self.recalls)) if self.recalls else 1.0

    @property
    def hit_rate(self) -> float:
        return float(np.mean(self.found)) if self.found else 0.0

    def hop_histogram(self) -> Dict[int, float]:
        """Fraction of queries per hop count (Figure 8)."""
        if not self.hops:
            return {}
        values, counts = np.unique(np.asarray(self.hops), return_counts=True)
        total = counts.sum()
        return {int(v): float(c) / total for v, c in zip(values, counts)}

    def as_dict(self) -> Dict[str, float]:
        return {
            "queries": self.num_queries,
            "total_latency_s": self.total_latency,
            "mean_latency_s": self.mean_latency,
            "total_messages": self.total_messages,
            "mean_recall": self.mean_recall,
            "hit_rate": self.hit_rate,
        }


# ---------------------------------------------------------------------------- builders
def build_smartstore(
    files: Sequence[FileMetadata],
    config: Optional[SmartStoreConfig] = None,
    schema: AttributeSchema = DEFAULT_SCHEMA,
) -> SmartStore:
    """Build a SmartStore deployment with the evaluation defaults."""
    return SmartStore.build(files, config or SmartStoreConfig(), schema)


def build_baselines(
    files: Sequence[FileMetadata],
    schema: AttributeSchema = DEFAULT_SCHEMA,
) -> Tuple[RTreeBaseline, DBMSBaseline]:
    """Build the two comparison systems over the same file population."""
    return RTreeBaseline(files, schema), DBMSBaseline(files, schema)


# ---------------------------------------------------------------------------- runners
def run_query_workload(
    system: SystemUnderTest,
    queries: Sequence[Query],
    *,
    ground_truth_files: Optional[Sequence[FileMetadata]] = None,
    schema: AttributeSchema = DEFAULT_SCHEMA,
) -> WorkloadResult:
    """Execute a workload and aggregate latency / message / recall statistics.

    When ``ground_truth_files`` is given, recall is computed for every
    complex query against a brute-force evaluation over that population.
    """
    outcome = WorkloadResult()
    for query in queries:
        result = system.execute(query)
        query_recall: Optional[float] = None
        if ground_truth_files is not None:
            if isinstance(query, RangeQuery):
                ideal = ground_truth_range(ground_truth_files, query)
                query_recall = recall(result.files, ideal)
            elif isinstance(query, TopKQuery):
                ideal = ground_truth_topk(ground_truth_files, query, schema)
                query_recall = recall(result.files, ideal)
        outcome.record(result, query_recall)
    return outcome


def hop_distribution(
    store: SmartStore,
    queries: Sequence[Query],
) -> Dict[int, float]:
    """Routing-distance distribution of a workload (Figure 8)."""
    result = run_query_workload(store, queries)
    return result.hop_histogram()


def point_query_hit_rate(
    store: SmartStore,
    queries: Sequence[PointQuery],
) -> float:
    """Fraction of filename point queries answered successfully (Figure 9).

    Queries for filenames that genuinely do not exist are excluded from the
    denominator — the figure reports the hit rate for existing files.
    """
    existing = {f.filename for f in store.files}
    hits = 0
    total = 0
    for query in queries:
        result = store.execute(query)
        if query.filename in existing:
            total += 1
            if result.found:
                hits += 1
    return hits / total if total else 1.0


# ---------------------------------------------------------------------------- staleness / versioning
@dataclass
class StalenessExperiment:
    """The Tables 5-6 scenario: queries interleaved with metadata updates.

    A deployment is built over ``1 - update_fraction`` of the trace's files;
    the remaining files arrive as insertions interleaved with the query
    stream.  Queries executed *without* versioning only see the original
    index and therefore miss recently inserted files (recall degrades as
    more updates accumulate); with versioning the version chains are
    consulted and recall stays high at a small extra latency.

    The held-back files are the *most recently created* ones (largest
    ``ctime``), mirroring how updates arrive in a real deployment: new files
    cluster in recent projects.  This is also what produces the paper's
    recall ordering across query distributions — Zipf queries anchor on
    popular, long-established files and rarely need the new arrivals, while
    Uniform queries stray into the recently populated regions more often.

    Parameters
    ----------
    files:
        The complete file population of the trace.
    update_fraction:
        Fraction of files held back as post-build insertions.
    config:
        Base SmartStore configuration; the experiment toggles
        ``versioning_enabled`` on top of it.
    """

    files: Sequence[FileMetadata]
    update_fraction: float = 0.15
    config: SmartStoreConfig = field(default_factory=SmartStoreConfig)
    schema: AttributeSchema = DEFAULT_SCHEMA
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0.0 <= self.update_fraction < 1.0:
            raise ValueError("update_fraction must be in [0, 1)")
        files = list(self.files)
        n_updates = int(len(files) * self.update_fraction)
        if n_updates == 0:
            self.initial_files = files
            self.update_files = []
            return
        order = np.argsort([f.attributes.get("ctime", 0.0) for f in files])
        update_idx = set(order[-n_updates:].tolist())
        self.initial_files = [f for i, f in enumerate(files) if i not in update_idx]
        self.update_files = sorted(
            (f for i, f in enumerate(files) if i in update_idx),
            key=lambda f: f.attributes.get("ctime", 0.0),
        )

    def build(self, *, versioning: bool) -> SmartStore:
        """Build the deployment over the initial file population."""
        config = replace(self.config, versioning_enabled=versioning)
        return SmartStore.build(self.initial_files, config, self.schema)

    def run(
        self,
        store: SmartStore,
        queries: Sequence[Query],
    ) -> WorkloadResult:
        """Interleave the updates with the query stream and measure recall.

        Updates are spread uniformly across the query stream; recall for
        each query is computed against the population visible at that point
        (initial files plus the updates inserted so far).
        """
        outcome = WorkloadResult()
        n_queries = max(len(queries), 1)
        updates = list(self.update_files)
        inserted: List[FileMetadata] = []
        per_query = len(updates) / n_queries

        budget = 0.0
        for query in queries:
            budget += per_query
            while updates and budget >= 1.0:
                file = updates.pop(0)
                store.insert_file(file)
                inserted.append(file)
                budget -= 1.0

            visible = list(self.initial_files) + inserted
            result = store.execute(query)
            query_recall: Optional[float] = None
            if isinstance(query, RangeQuery):
                ideal = ground_truth_range(visible, query)
                query_recall = recall(result.files, ideal)
            elif isinstance(query, TopKQuery):
                ideal = ground_truth_topk(
                    visible,
                    query,
                    self.schema,
                    raw_lower=store.index_lower,
                    raw_upper=store.index_upper,
                )
                query_recall = recall(result.files, ideal)
            outcome.record(result, query_recall)
        return outcome

    def recall_with_and_without_versioning(
        self,
        query_counts: Sequence[int],
        *,
        distribution: str = "zipf",
        query_kind: str = "range",
        k: int = 8,
        selectivity: float = 0.05,
    ) -> Dict[int, Dict[str, float]]:
        """The Tables 5-6 sweep: mean recall vs. number of queries.

        Returns ``{n_queries: {"without": r, "with": r}}``.
        """
        results: Dict[int, Dict[str, float]] = {}
        for n in query_counts:
            row: Dict[str, float] = {}
            for label, versioning in (("without", False), ("with", True)):
                store = self.build(versioning=versioning)
                generator = QueryWorkloadGenerator(self.files, self.schema, seed=self.seed + n)
                if query_kind == "range":
                    queries = generator.range_queries(
                        n, distribution=distribution, selectivity=selectivity
                    )
                else:
                    queries = generator.topk_queries(n, k=k, distribution=distribution)
                outcome = self.run(store, queries)
                row[label] = outcome.mean_recall
            results[n] = row
        return results
