"""Evaluation harness: metrics, experiment runners and reporters.

Everything the ``benchmarks/`` directory needs to regenerate the paper's
tables and figures lives here:

* :mod:`repro.eval.recall` — the "Recall" measure of §5.4 plus brute-force
  ground-truth helpers;
* :mod:`repro.eval.harness` — builders for SmartStore and the two baselines
  over a trace, workload runners that aggregate latency / message / hop
  statistics, and the staleness (versioning) experiment of Tables 5-6;
* :mod:`repro.eval.space` — per-node space overhead comparison (Figure 7);
* :mod:`repro.eval.thresholds` — the optimal-threshold studies (Figure 11);
* :mod:`repro.eval.reporting` — plain-text table formatting shared by the
  benchmarks and EXPERIMENTS.md;
* :mod:`repro.eval.tracking` — machine-readable ``BENCH_<name>.json``
  artefacts every bench entry point writes alongside its tables.
"""

from repro.eval.recall import recall, ground_truth_range, ground_truth_topk
from repro.eval.harness import (
    SystemUnderTest,
    WorkloadResult,
    build_smartstore,
    build_baselines,
    run_query_workload,
    hop_distribution,
    point_query_hit_rate,
    StalenessExperiment,
)
from repro.eval.space import space_comparison
from repro.eval.thresholds import optimal_threshold_vs_scale, optimal_threshold_per_level
from repro.eval.reporting import format_table, format_seconds, format_bytes
from repro.eval.tracking import bench_json_path, write_bench_json

__all__ = [
    "bench_json_path",
    "write_bench_json",
    "recall",
    "ground_truth_range",
    "ground_truth_topk",
    "SystemUnderTest",
    "WorkloadResult",
    "build_smartstore",
    "build_baselines",
    "run_query_workload",
    "hop_distribution",
    "point_query_hit_rate",
    "StalenessExperiment",
    "space_comparison",
    "optimal_threshold_vs_scale",
    "optimal_threshold_per_level",
    "format_table",
    "format_seconds",
    "format_bytes",
]
