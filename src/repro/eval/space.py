"""Per-node space-overhead comparison (Figure 7).

SmartStore distributes its index state (semantic R-tree nodes, Bloom
filters, replicated first-level index vectors, version chains) across every
storage unit; the two baselines concentrate their (much larger) indexes on a
single server.  The figure compares *per-node* index overhead, which is what
determines whether the index fits in memory on each machine.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines.dbms import DBMSBaseline
from repro.baselines.rtree_db import RTreeBaseline
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata

__all__ = ["space_comparison"]


def space_comparison(
    files: Sequence[FileMetadata],
    config: Optional[SmartStoreConfig] = None,
    schema: AttributeSchema = DEFAULT_SCHEMA,
    *,
    store: Optional[SmartStore] = None,
    rtree: Optional[RTreeBaseline] = None,
    dbms: Optional[DBMSBaseline] = None,
) -> Dict[str, Dict[str, float]]:
    """Index space overhead per node for the three systems.

    Pre-built systems can be passed in to avoid rebuilding; otherwise they
    are constructed from ``files``.  Returns, per system, the mean and
    maximum per-node index footprint in bytes plus the total footprint.
    """
    config = config or SmartStoreConfig()
    if store is None:
        store = SmartStore.build(files, config, schema)
    if rtree is None:
        rtree = RTreeBaseline(files, schema, cost_model=config.cost_model)
    if dbms is None:
        dbms = DBMSBaseline(files, schema, cost_model=config.cost_model)

    per_unit = np.array(list(store.index_space_bytes_per_unit().values()), dtype=np.float64)
    smartstore_stats = {
        "per_node_mean": float(per_unit.mean()),
        "per_node_max": float(per_unit.max()),
        "total": float(per_unit.sum()),
        "nodes": float(len(per_unit)),
    }
    rtree_total = float(rtree.index_space_bytes_per_node())
    dbms_total = float(dbms.index_space_bytes_per_node())
    return {
        "smartstore": smartstore_stats,
        "rtree": {
            "per_node_mean": rtree_total,
            "per_node_max": rtree_total,
            "total": rtree_total,
            "nodes": 1.0,
        },
        "dbms": {
            "per_node_mean": dbms_total,
            "per_node_max": dbms_total,
            "total": dbms_total,
            "nodes": 1.0,
        },
    }
