"""Optimal-threshold studies (Figure 11).

The admission threshold ``epsilon`` used by the semantic grouping is a key
design parameter: too high and nothing groups (queries revert to brute
force), too low and everything collapses into one group (no load
distribution).  The paper picks the threshold that minimises the §1.1
within-group distance measure and studies how that optimum moves with the
number of storage units (Figure 11a) and with the level of the semantic
R-tree (Figure 11b).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.grouping import (
    build_group_levels,
    group_by_correlation,
    optimal_threshold,
    partition_files,
)
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata

__all__ = ["optimal_threshold_vs_scale", "optimal_threshold_per_level"]


def _unit_vectors(
    files: Sequence[FileMetadata],
    num_units: int,
    schema: AttributeSchema,
    *,
    rank: int = 5,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Per-unit semantic vectors for a given system scale."""
    partition = partition_files(files, num_units, schema, rank=rank, seed=seed)
    labels = partition.labels
    sem = partition.semantic_vectors
    vectors = []
    for unit in range(partition.n_groups):
        members = sem[labels == unit]
        vectors.append(members.mean(axis=0) if len(members) else sem.mean(axis=0))
    return np.vstack(vectors)


def optimal_threshold_vs_scale(
    files: Sequence[FileMetadata],
    unit_counts: Sequence[int],
    schema: AttributeSchema = DEFAULT_SCHEMA,
    *,
    max_fanout: int = 8,
    rank: int = 5,
    seed: int = 0,
) -> List[Tuple[int, float]]:
    """Figure 11(a): optimal first-level threshold as a function of system scale."""
    rows: List[Tuple[int, float]] = []
    for count in unit_counts:
        vectors = _unit_vectors(files, count, schema, rank=rank, seed=seed)
        threshold, _ = optimal_threshold(vectors, max_fanout=max_fanout)
        rows.append((count, threshold))
    return rows


def optimal_threshold_per_level(
    files: Sequence[FileMetadata],
    num_units: int,
    schema: AttributeSchema = DEFAULT_SCHEMA,
    *,
    max_fanout: int = 8,
    rank: int = 5,
    seed: int = 0,
) -> List[Tuple[int, float]]:
    """Figure 11(b): optimal threshold at each level of the semantic R-tree.

    Level 1 groups the storage units, level 2 groups the level-1 groups,
    and so on; each level's optimum is computed over the centroids produced
    by the previous level's (optimal) grouping.
    """
    vectors = _unit_vectors(files, num_units, schema, rank=rank, seed=seed)
    rows: List[Tuple[int, float]] = []
    level = 1
    current = vectors
    while current.shape[0] > 1:
        threshold, _ = optimal_threshold(current, max_fanout=max_fanout)
        rows.append((level, threshold))
        groups = group_by_correlation(current, threshold, max_group_size=max_fanout)
        if len(groups) in (1, current.shape[0]) and level > 1:
            break
        if len(groups) == current.shape[0]:
            # Nothing merged; force fan-out-sized chunks so the study terminates.
            groups = [
                list(range(i, min(i + max_fanout, current.shape[0])))
                for i in range(0, current.shape[0], max_fanout)
            ]
        current = np.vstack([current[g].mean(axis=0) for g in groups])
        level += 1
        if level > 8:
            break
    return rows
