"""Plain-text table formatting for benchmarks and EXPERIMENTS.md.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting consistent (fixed-width columns, sensible units)
without pulling in any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_seconds", "format_bytes", "format_count"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned, pipe-separated text table."""
    rows = [[_stringify(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if i >= len(widths):
                widths.append(len(cell))
            else:
                widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [c.ljust(widths[i]) for i, c in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def format_seconds(seconds: float) -> str:
    """Human-readable latency (μs / ms / s)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or unit == "TiB":
            return f"{value:.2f} {unit}"
        value /= 1024.0
    return f"{value:.2f} TiB"


def format_count(value: float) -> str:
    """Human-readable large counts (K / M / B)."""
    if value >= 1e9:
        return f"{value / 1e9:.2f}B"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.2f}K"
    return f"{value:.0f}"
