"""The "Recall" measure (§5.4.2) and brute-force ground truth.

Given a query ``q``, ``T(q)`` is the ideal result set (computed here by a
brute-force scan over the complete file population) and ``A(q)`` the set a
system actually reported; recall is ``|T(q) ∩ A(q)| / |T(q)|``.

Top-k ground truth is computed in the same *index space* the SmartStore
engine uses (wide-range attributes log-transformed, then min-max normalised)
so that the ideal set is exactly the one the system approximates.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.workloads.types import RangeQuery, TopKQuery

__all__ = ["recall", "ground_truth_range", "ground_truth_topk"]


def recall(reported: Iterable[FileMetadata], ideal: Iterable[FileMetadata]) -> float:
    """``|T(q) ∩ A(q)| / |T(q)|`` over file identity.

    An empty ideal set yields recall 1.0 (there was nothing to find).
    """
    ideal_ids = {f.file_id for f in ideal}
    if not ideal_ids:
        return 1.0
    reported_ids = {f.file_id for f in reported}
    return len(ideal_ids & reported_ids) / len(ideal_ids)


def ground_truth_range(
    files: Sequence[FileMetadata],
    query: RangeQuery,
) -> List[FileMetadata]:
    """Brute-force evaluation of a range query over the full population."""
    return [
        f
        for f in files
        if f.matches_ranges(query.attributes, query.lower, query.upper)
    ]


def _to_index_space(
    values: np.ndarray, attributes: Sequence[str], schema: AttributeSchema
) -> np.ndarray:
    """Apply the schema's ``log1p`` transform to the selected attributes."""
    out = np.array(values, dtype=np.float64, copy=True)
    for j, name in enumerate(attributes):
        if schema.spec(name).log_scale:
            col = out[..., j]
            out[..., j] = np.log1p(np.maximum(col, 0.0))
    return out


def ground_truth_topk(
    files: Sequence[FileMetadata],
    query: TopKQuery,
    schema: AttributeSchema = DEFAULT_SCHEMA,
    *,
    raw_lower: Optional[np.ndarray] = None,
    raw_upper: Optional[np.ndarray] = None,
) -> List[FileMetadata]:
    """Brute-force top-k over the full population.

    Distances use the engine's index-space geometry: ``log1p`` on the
    wide-range attributes, then min-max normalisation over ``raw_lower`` /
    ``raw_upper`` (interpreted as full-schema *index-space* bounds, e.g. a
    SmartStore deployment's ``index_lower`` / ``index_upper``) or, when
    bounds are omitted, over the population itself.
    """
    if not files:
        return []
    values = np.array(
        [[f.attributes.get(a, 0.0) for a in query.attributes] for f in files],
        dtype=np.float64,
    )
    values = _to_index_space(values, query.attributes, schema)
    query_values = _to_index_space(
        np.asarray(query.values, dtype=np.float64), query.attributes, schema
    )

    if raw_lower is None or raw_upper is None:
        lower = values.min(axis=0)
        upper = values.max(axis=0)
    else:
        idx = [schema.index(a) for a in query.attributes]
        lower = np.asarray(raw_lower, dtype=np.float64)[idx]
        upper = np.asarray(raw_upper, dtype=np.float64)[idx]
    span = np.where(upper - lower > 0, upper - lower, 1.0)
    norm = np.clip((values - lower) / span, 0.0, 1.0)
    target = np.clip((query_values - lower) / span, 0.0, 1.0)
    dists = np.sqrt(np.sum((norm - target[None, :]) ** 2, axis=1))
    k = min(query.k, len(files))
    top = np.argpartition(dists, k - 1)[:k]
    top = top[np.argsort(dists[top])]
    return [files[i] for i in top]
