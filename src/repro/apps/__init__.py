"""Motivating applications built on SmartStore (§1.1).

* :mod:`repro.apps.caching` — semantic-aware caching and prefetching: when a
  file is accessed, a top-k query fetches its most correlated files into the
  cache ahead of time.
* :mod:`repro.apps.dedup` — de-duplication candidate detection: duplicate
  copies exhibit near-identical multi-dimensional attributes and therefore
  land in the same or adjacent semantic groups, so candidate pairs can be
  found without a brute-force scan of the whole system.
* :mod:`repro.apps.audit` — the administrator's "what changed after the
  install?" audit: a multi-dimensional range query over modification time,
  write volume and ownership, broken down by directory and owner.
"""

from repro.apps.audit import AuditReport, ChangeAuditor
from repro.apps.caching import SemanticPrefetchCache, LRUCache, CacheStats
from repro.apps.dedup import DedupDetector, DedupReport

__all__ = [
    "SemanticPrefetchCache",
    "LRUCache",
    "CacheStats",
    "DedupDetector",
    "DedupReport",
    "ChangeAuditor",
    "AuditReport",
]
