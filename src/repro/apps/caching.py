"""Semantic-aware caching and prefetching (§1.1).

Traditional caches exploit temporal/spatial locality of the access history.
SmartStore enables *semantic* prefetching: when a file is accessed, a top-k
query over its metadata attributes identifies the files most correlated with
it, and those are prefetched into the cache before they are requested.  The
paper argues this raises hit rates for working sets that plain locality
cannot capture; the ablation benchmark compares this cache against a plain
LRU of the same capacity on the same trace.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.smartstore import SmartStore
from repro.metadata.file_metadata import FileMetadata
from repro.workloads.types import TopKQuery

__all__ = ["CacheStats", "LRUCache", "SemanticPrefetchCache"]


@dataclass
class CacheStats:
    """Hit/miss accounting of a cache run."""

    hits: int = 0
    misses: int = 0
    prefetches: int = 0
    prefetch_hits: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of prefetched entries that were later hit before eviction."""
        return self.prefetch_hits / self.prefetches if self.prefetches else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "prefetches": self.prefetches,
            "prefetch_accuracy": self.prefetch_accuracy,
        }


class LRUCache:
    """A plain least-recently-used cache of file ids (the non-semantic baseline)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[int, bool]" = OrderedDict()  # id -> was_prefetched
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._entries

    def access(self, file_id: int) -> bool:
        """Record an access; returns True on a cache hit."""
        if file_id in self._entries:
            was_prefetched = self._entries.pop(file_id)
            if was_prefetched:
                self.stats.prefetch_hits += 1
            self._entries[file_id] = False
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._insert(file_id, prefetched=False)
        return False

    def prefetch(self, file_id: int) -> None:
        """Insert a file id speculatively (does not count as an access)."""
        if file_id in self._entries:
            return
        self._insert(file_id, prefetched=True)
        self.stats.prefetches += 1

    def _insert(self, file_id: int, *, prefetched: bool) -> None:
        self._entries[file_id] = prefetched
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def contents(self) -> List[int]:
        return list(self._entries.keys())


class SemanticPrefetchCache:
    """An LRU cache that prefetches the top-k semantically correlated files.

    Parameters
    ----------
    store:
        A built SmartStore deployment (supplies the top-k queries).
    capacity:
        Cache capacity in entries.
    prefetch_k:
        How many correlated files to prefetch on every miss.
    attributes:
        The attribute subset used for the correlation query; defaults to the
        behavioural attributes of the store's schema (access-driven
        correlation is what prefetching exploits).
    """

    def __init__(
        self,
        store: SmartStore,
        capacity: int,
        *,
        prefetch_k: int = 4,
        attributes: Optional[Sequence[str]] = None,
    ) -> None:
        if prefetch_k < 1:
            raise ValueError("prefetch_k must be >= 1")
        self.store = store
        self.cache = LRUCache(capacity)
        self.prefetch_k = prefetch_k
        if attributes is None:
            behavioural = store.schema.behavioural_names()
            attributes = behavioural if behavioural else store.schema.names[:3]
        self.attributes = tuple(attributes)
        self.query_latency = 0.0
        self._by_id: Dict[int, FileMetadata] = {f.file_id: f for f in store.files}

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def access(self, file: FileMetadata) -> bool:
        """Record an access; on a miss, prefetch the file's correlated peers."""
        hit = self.cache.access(file.file_id)
        if not hit:
            self._prefetch_correlated(file)
        return hit

    def access_many(self, files: Sequence[FileMetadata]) -> CacheStats:
        """Replay a sequence of accesses and return the final statistics."""
        for f in files:
            self.access(f)
        return self.stats

    def _prefetch_correlated(self, file: FileMetadata) -> None:
        values = tuple(file.attributes.get(a, 0.0) for a in self.attributes)
        result = self.store.execute(
            TopKQuery(tuple(self.attributes), values, self.prefetch_k + 1)
        )
        self.query_latency += result.latency
        for candidate in result.files:
            if candidate.file_id == file.file_id:
                continue
            self.cache.prefetch(candidate.file_id)
