"""De-duplication candidate detection (§1.1).

Duplicate copies of a file exhibit identical or near-identical
multi-dimensional attributes (size, creation time, I/O volumes), so
SmartStore's semantic grouping places them in the same or adjacent groups
with high probability.  The detector exploits this: instead of comparing
every file against every other file (the brute-force baseline), it only
compares files that share a semantic group, shrinking the comparison space
by orders of magnitude while finding (nearly) the same candidate pairs.

A "candidate pair" is a pair of files whose constrained attributes differ by
less than a tolerance; the optional ``fingerprint`` annotation (carried in
``FileMetadata.extra``) stands in for a content hash and lets callers
measure precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.smartstore import SmartStore
from repro.metadata.attributes import AttributeSchema
from repro.metadata.file_metadata import FileMetadata

__all__ = ["DedupReport", "DedupDetector"]


@dataclass
class DedupReport:
    """Outcome of a candidate-detection run."""

    candidate_pairs: List[Tuple[int, int]]
    comparisons: int
    groups_examined: int
    true_duplicate_pairs: Optional[int] = None

    @property
    def num_candidates(self) -> int:
        return len(self.candidate_pairs)

    @property
    def precision(self) -> Optional[float]:
        """Fraction of candidate pairs sharing a fingerprint (when known)."""
        if self.true_duplicate_pairs is None or not self.candidate_pairs:
            return None
        return min(1.0, self.true_duplicate_pairs / len(self.candidate_pairs))


class DedupDetector:
    """Finds duplicate candidates via semantic groups or brute force."""

    def __init__(
        self,
        *,
        attributes: Sequence[str] = ("size", "ctime"),
        tolerance: float = 1e-3,
    ) -> None:
        if not attributes:
            raise ValueError("at least one attribute is required")
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.attributes = tuple(attributes)
        self.tolerance = tolerance

    # ------------------------------------------------------------------ helpers
    def _matrix(self, files: Sequence[FileMetadata]) -> np.ndarray:
        return np.array(
            [[f.attributes.get(a, 0.0) for a in self.attributes] for f in files],
            dtype=np.float64,
        )

    def _normalise(self, matrix: np.ndarray, lower: np.ndarray, span: np.ndarray) -> np.ndarray:
        return (matrix - lower) / span

    def _pairs_within(
        self, files: Sequence[FileMetadata], norm: np.ndarray
    ) -> Tuple[List[Tuple[int, int]], int]:
        """All pairs whose normalised attribute distance is below tolerance."""
        pairs: List[Tuple[int, int]] = []
        comparisons = 0
        n = len(files)
        for i in range(n):
            # Vectorised comparison of file i against all later files.
            if i + 1 >= n:
                break
            deltas = np.abs(norm[i + 1:] - norm[i])
            close = np.all(deltas <= self.tolerance, axis=1)
            comparisons += n - i - 1
            for offset in np.nonzero(close)[0]:
                j = i + 1 + int(offset)
                pairs.append((files[i].file_id, files[j].file_id))
        return pairs, comparisons

    @staticmethod
    def _count_fingerprint_pairs(files: Sequence[FileMetadata]) -> Optional[int]:
        groups: Dict[object, int] = {}
        seen_any = False
        for f in files:
            fp = f.extra.get("fingerprint")
            if fp is None:
                continue
            seen_any = True
            groups[fp] = groups.get(fp, 0) + 1
        if not seen_any:
            return None
        return sum(c * (c - 1) // 2 for c in groups.values() if c > 1)

    # ------------------------------------------------------------------ detection
    def brute_force(self, files: Sequence[FileMetadata]) -> DedupReport:
        """Compare every pair of files in the system (the baseline)."""
        files = list(files)
        matrix = self._matrix(files)
        lower = matrix.min(axis=0)
        span = np.where(matrix.max(axis=0) - lower > 0, matrix.max(axis=0) - lower, 1.0)
        norm = self._normalise(matrix, lower, span)
        pairs, comparisons = self._pairs_within(files, norm)
        return DedupReport(
            candidate_pairs=pairs,
            comparisons=comparisons,
            groups_examined=1,
            true_duplicate_pairs=self._count_fingerprint_pairs(files),
        )

    def with_smartstore(self, store: SmartStore) -> DedupReport:
        """Compare only files that share a semantic group.

        The comparison count drops from ``O(n^2)`` over the whole system to
        the sum of ``O(n_g^2)`` over per-group populations, while duplicate
        copies — having near-identical attributes — almost always share a
        group and are still found.
        """
        all_files = [f for server in store.cluster for f in server.files]
        matrix = self._matrix(all_files)
        lower = matrix.min(axis=0)
        span = np.where(matrix.max(axis=0) - lower > 0, matrix.max(axis=0) - lower, 1.0)

        pairs: List[Tuple[int, int]] = []
        comparisons = 0
        groups = store.tree.first_level_groups()
        for group in groups:
            group_files: List[FileMetadata] = []
            for unit_id in group.descendant_unit_ids():
                group_files.extend(store.cluster.server(unit_id).files)
            if len(group_files) < 2:
                continue
            norm = self._normalise(self._matrix(group_files), lower, span)
            group_pairs, group_comparisons = self._pairs_within(group_files, norm)
            pairs.extend(group_pairs)
            comparisons += group_comparisons

        # De-duplicate pairs found in overlapping traversals (defensive; groups
        # partition the files so overlaps should not occur).
        unique_pairs = sorted(set(tuple(sorted(p)) for p in pairs))
        return DedupReport(
            candidate_pairs=[tuple(p) for p in unique_pairs],
            comparisons=comparisons,
            groups_examined=len(groups),
            true_duplicate_pairs=self._count_fingerprint_pairs(all_files),
        )

    # ------------------------------------------------------------------ workload helper
    @staticmethod
    def inject_duplicates(
        files: Sequence[FileMetadata],
        fraction: float = 0.05,
        seed: Optional[int] = None,
    ) -> List[FileMetadata]:
        """Return a copy of ``files`` with a fraction of duplicate copies added.

        Each duplicate copies its source's attributes exactly and shares a
        ``fingerprint`` annotation with it, which is what the precision
        figure of :class:`DedupReport` keys on.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        rng = np.random.default_rng(seed)
        files = list(files)
        out = []
        for i, f in enumerate(files):
            annotated = FileMetadata(
                path=f.path,
                attributes=dict(f.attributes),
                extra={**f.extra, "fingerprint": f"fp-{i}"},
            )
            out.append(annotated)
        n_dup = int(len(files) * fraction)
        if n_dup:
            sources = rng.choice(len(files), size=n_dup, replace=False)
            for s in sources:
                src = out[int(s)]
                out.append(
                    FileMetadata(
                        path=src.path + ".copy",
                        attributes=dict(src.attributes),
                        extra={**src.extra},
                    )
                )
        return out
