"""Change auditing: the administrator scenario from the introduction.

§1 motivates complex queries with a system administrator who, after a
software installation or update, wants to find every file that changed —
across both system and user directories — to ward off malicious
modifications.  A directory- or history-based search cannot express this
("which subtree?" is exactly what the admin does not know); a
multi-dimensional range query over modification time, write volume and
ownership can.

:class:`ChangeAuditor` packages that workflow on top of a SmartStore
deployment: define the audit window, run the range query, break the flagged
files down by top-level directory and owner, and (optionally) quantify how
much cheaper the semantic route is than walking a conventional directory
tree over the same population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.smartstore import SmartStore
from repro.eval.recall import ground_truth_range, recall
from repro.metadata.file_metadata import FileMetadata
from repro.namespace.baseline import DirectoryTreeBaseline
from repro.workloads.types import RangeQuery

__all__ = ["AuditReport", "ChangeAuditor", "OPEN_UPPER_BOUND"]

#: Finite stand-in for an unbounded upper range limit.  Query bounds must
#: be finite (NaN/inf are rejected by :class:`RangeQuery`); the float64
#: maximum compares correctly against every attribute value, so "at least
#: X" constraints use it as their open upper end.
OPEN_UPPER_BOUND = float(np.finfo(np.float64).max)


@dataclass
class AuditReport:
    """Outcome of one audit query.

    Attributes
    ----------
    query:
        The range query that was executed.
    flagged:
        Files SmartStore reported as changed inside the audit window.
    latency / messages / groups_visited:
        Cost of the SmartStore query.
    recall:
        Fraction of the true changed set that was flagged (brute-force
        ground truth over the deployment's file population).
    by_directory / by_owner:
        Flagged-file counts per top-level directory and per owner id —
        the "where did the changes land?" view an administrator reads first.
    """

    query: RangeQuery
    flagged: List[FileMetadata]
    latency: float
    messages: int
    groups_visited: int
    recall: float
    by_directory: Dict[str, int] = field(default_factory=dict)
    by_owner: Dict[int, int] = field(default_factory=dict)

    @property
    def num_flagged(self) -> int:
        return len(self.flagged)

    def top_directories(self, n: int = 5) -> List[Tuple[str, int]]:
        """The ``n`` top-level directories with the most flagged files."""
        return sorted(self.by_directory.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def top_owners(self, n: int = 5) -> List[Tuple[int, int]]:
        """The ``n`` owners with the most flagged files."""
        return sorted(self.by_owner.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_flagged": self.num_flagged,
            "latency_s": self.latency,
            "messages": self.messages,
            "groups_visited": self.groups_visited,
            "recall": self.recall,
            "top_directories": self.top_directories(),
            "top_owners": self.top_owners(),
        }


def _top_level(path: str) -> str:
    parts = [p for p in path.split("/") if p]
    return "/" + parts[0] if parts else "/"


class ChangeAuditor:
    """Run "what changed?" audits over a SmartStore deployment.

    Parameters
    ----------
    store:
        The deployment to audit.  Its file population is also the ground
        truth the report's recall is computed against.
    """

    def __init__(self, store: SmartStore) -> None:
        self.store = store
        self.schema = store.schema

    # ------------------------------------------------------------------ query construction
    def window_query(
        self,
        mtime_start: float,
        mtime_end: float,
        *,
        min_write_bytes: Optional[float] = None,
        owner: Optional[int] = None,
    ) -> RangeQuery:
        """Build the audit range query.

        The window always constrains ``mtime``; ``min_write_bytes`` adds a
        "data was actually written" constraint and ``owner`` narrows the
        audit to one account (e.g. root).
        """
        if mtime_end < mtime_start:
            raise ValueError("the audit window must have mtime_end >= mtime_start")
        attributes: List[str] = ["mtime"]
        lower: List[float] = [float(mtime_start)]
        upper: List[float] = [float(mtime_end)]
        if min_write_bytes is not None:
            attributes.append("write_bytes")
            lower.append(float(min_write_bytes))
            upper.append(OPEN_UPPER_BOUND)
        if owner is not None:
            attributes.append("owner")
            lower.append(float(owner))
            upper.append(float(owner))
        return RangeQuery(tuple(attributes), tuple(lower), tuple(upper))

    # ------------------------------------------------------------------ auditing
    def audit(
        self,
        mtime_start: float,
        mtime_end: float,
        *,
        min_write_bytes: Optional[float] = None,
        owner: Optional[int] = None,
    ) -> AuditReport:
        """Find the files changed inside the window and summarise them."""
        query = self.window_query(
            mtime_start, mtime_end, min_write_bytes=min_write_bytes, owner=owner
        )
        result = self.store.execute(query)
        ideal = ground_truth_range(self.store.files, query)

        by_directory: Dict[str, int] = {}
        by_owner: Dict[int, int] = {}
        for f in result.files:
            by_directory[_top_level(f.path)] = by_directory.get(_top_level(f.path), 0) + 1
            owner_id = int(f.get("owner", -1))
            by_owner[owner_id] = by_owner.get(owner_id, 0) + 1

        return AuditReport(
            query=query,
            flagged=list(result.files),
            latency=result.latency,
            messages=result.metrics.messages,
            groups_visited=result.groups_visited,
            recall=recall(result.files, ideal) if ideal else 1.0,
            by_directory=by_directory,
            by_owner=by_owner,
        )

    def audit_since(self, reference_time: float, **kwargs) -> AuditReport:
        """Audit everything modified at or after ``reference_time``.

        The upper bound is the latest modification time present in the
        population (the deployment knows no "now" of its own).
        """
        latest = max((f.get("mtime", 0.0) for f in self.store.files), default=reference_time)
        return self.audit(reference_time, max(reference_time, latest), **kwargs)

    # ------------------------------------------------------------------ comparison
    def compare_with_directory_walk(
        self,
        mtime_start: float,
        mtime_end: float,
        *,
        min_write_bytes: Optional[float] = None,
    ) -> Dict[str, float]:
        """Cost of the same audit on a conventional directory tree.

        Returns a dictionary with both latencies, the speed-up factor and
        the result-set agreement (Jaccard similarity) — the number the
        introduction's scenario is really about: the conventional system
        *can* answer the audit, it just has to walk everything to do it.
        """
        query = self.window_query(mtime_start, mtime_end, min_write_bytes=min_write_bytes)
        smart = self.store.execute(query)
        walker = DirectoryTreeBaseline(self.store.files, self.schema)
        walked = walker.range_query(query)

        smart_ids = {f.file_id for f in smart.files}
        walked_ids = {f.file_id for f in walked.files}
        union = smart_ids | walked_ids
        agreement = len(smart_ids & walked_ids) / len(union) if union else 1.0
        return {
            "smartstore_latency_s": smart.latency,
            "directory_walk_latency_s": walked.latency,
            "speedup": walked.latency / smart.latency if smart.latency > 0 else float("inf"),
            "smartstore_messages": float(smart.metrics.messages),
            "directory_records_scanned": float(walked.metrics.disk_records_scanned),
            "result_agreement": agreement,
        }
